"""Out-of-core persistent store: crash-safe binary containers + memmaps.

Public surface:

* :func:`write_store` / :func:`open_store` / :class:`StoreContainer` —
  the versioned binary container (magic, per-section CRC32, 64-byte
  aligned sections, crash-atomic writes);
* :func:`save_graph` / :func:`load_graph` / :class:`MappedGraph` — a CSR
  graph persisted and reopened as zero-copy read-only memmap views;
* :func:`save_summary_binary` / :func:`load_summary_binary` /
  :class:`MappedSummary` — the columnar summary-graph record, answering
  queries byte-identically to the in-RAM backends without heap copies;
* :class:`DeltaLog` — LSM-style durable append segments + compaction for
  the streaming edge overlay.

See ``docs/architecture.md`` ("Persistent store") for the format layout
and the atomicity/checksum contract.
"""

from repro.store.container import (
    ALIGNMENT,
    MAGIC,
    VERSION,
    StoreContainer,
    open_store,
    write_store,
)
from repro.store.mapped import (
    GRAPH_KIND,
    SUMMARY_KIND,
    MappedGraph,
    MappedSummary,
    load_graph,
    load_summary_binary,
    save_graph,
    save_summary_binary,
)
from repro.store.segments import DeltaLog

__all__ = [
    "ALIGNMENT",
    "MAGIC",
    "VERSION",
    "GRAPH_KIND",
    "SUMMARY_KIND",
    "StoreContainer",
    "open_store",
    "write_store",
    "MappedGraph",
    "MappedSummary",
    "load_graph",
    "load_summary_binary",
    "save_graph",
    "save_summary_binary",
    "DeltaLog",
]
