"""On-disk persistence for the streaming edge overlay, LSM-style.

A :class:`DeltaLog` makes a :class:`~repro.streaming.delta.GraphDelta`
durable without ever rewriting history on the hot path:

* ``base-<generation>.store`` — a graph container (``kind="delta-base"``)
  holding the CSR of the base graph *with the first* ``pending_offset``
  *stream edges folded in*;
* ``seg-<generation>-<index>.store`` — an append segment
  (``kind="delta-segment"``) holding one contiguous slice of the pending
  buffer as ``u``/``v`` columns, stamped with its global ``start`` offset.

Every file is written through :func:`repro.store.container.write_store`,
so each append and each compaction is individually crash-atomic: a crash
at any point leaves only whole, checksummed files, and
:meth:`DeltaLog.recover` reconstructs exactly the stream that was durable.

Compaction (:meth:`DeltaLog.compact`) folds a fully-refreshed prefix of
the pending buffer — in the streaming layer, everything before the
minimum per-machine re-summarization cursor — into a new base generation,
then deletes the segments (and older bases) the new base covers.  It is a
**disk-only** operation: the in-memory delta, its pending buffer, and
every cursor into it are untouched, preserving the monotone-cursor
invariant the streaming layer depends on.  Deletion happens strictly
after the new base is published, so a crash mid-compaction at worst
leaves covered segments behind; recovery skips their folded prefix (and
:meth:`GraphDelta.add_edges` would deduplicate them regardless).
"""

from __future__ import annotations

import os
import re
from typing import List, Tuple  # noqa: F401 - Tuple used in string annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.store.container import open_store, write_store
from repro.store.mapped import _graph_from_sections

if TYPE_CHECKING:  # imported lazily at runtime: streaming itself uses the store
    from repro.streaming.delta import GraphDelta

BASE_KIND = "delta-base"
SEGMENT_KIND = "delta-segment"

_BASE_RE = re.compile(r"^base-(\d{8})\.store$")
_SEG_RE = re.compile(r"^seg-(\d{8})-(\d{8})\.store$")


def _base_name(generation: int) -> str:
    return f"base-{generation:08d}.store"


def _seg_name(generation: int, index: int) -> str:
    return f"seg-{generation:08d}-{index:08d}.store"


class DeltaLog:
    """Durable append log + compaction for one :class:`GraphDelta` stream.

    Construct with :meth:`create` (fresh directory, possibly catching up
    an already-populated delta) or :meth:`recover` (rebuild the delta from
    what is on disk).  One log owns one directory; the *origin* maps the
    delta's local pending indices to the stream's global offsets (local
    ``i`` is global ``origin + i``) and is fixed for the lifetime of the
    in-memory delta — compaction never renumbers anything.
    """

    def __init__(
        self, directory: "str | os.PathLike[str]", *, _origin: int, _generation: int,
        _logged: int, _seg_index: int, _folded: int,
    ):
        self.directory = os.fspath(directory)
        self._origin = _origin
        self._generation = _generation
        self._logged = _logged  # global offset up to which base + segments are durable
        self._seg_index = _seg_index
        self._folded = _folded  # global offset the current base generation absorbs

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: "str | os.PathLike[str]", delta: GraphDelta) -> "DeltaLog":
        """Start a fresh log in *directory* (created if missing, must hold no log).

        Writes generation 0's base from ``delta.base`` and a first segment
        for any edges the delta already buffered.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        for entry in os.listdir(directory):
            if _BASE_RE.match(entry) or _SEG_RE.match(entry):
                raise GraphFormatError(
                    f"{directory}: already contains a delta log ({entry}); "
                    "use DeltaLog.recover"
                )
        base = delta.base
        write_store(
            os.path.join(directory, _base_name(0)),
            {"indptr": base.indptr, "indices": base.indices},
            kind=BASE_KIND,
            meta={"num_nodes": base.num_nodes, "generation": 0, "pending_offset": 0},
        )
        log = cls(directory, _origin=0, _generation=0, _logged=0, _seg_index=0, _folded=0)
        log.append(delta)
        return log

    @classmethod
    def recover(
        cls, directory: "str | os.PathLike[str]", *, verify: bool = True
    ) -> "Tuple[GraphDelta, DeltaLog]":
        """Rebuild ``(delta, log)`` from the files in *directory*.

        The newest base generation is memory-mapped as the delta's base
        graph; every segment is replayed in global-offset order, skipping
        the prefix the base already folded in.  Gaps between segments —
        which atomic per-file writes cannot produce — raise
        :class:`GraphFormatError` rather than silently losing edges.
        """
        directory = os.fspath(directory)
        bases: List[int] = []
        segments: List[Tuple[int, int, str]] = []
        try:
            entries = os.listdir(directory)
        except OSError as exc:
            raise GraphFormatError(f"{directory}: cannot list delta log: {exc}") from None
        for entry in entries:
            match = _BASE_RE.match(entry)
            if match:
                bases.append(int(match.group(1)))
                continue
            match = _SEG_RE.match(entry)
            if match:
                segments.append((int(match.group(1)), int(match.group(2)), entry))
        if not bases:
            raise GraphFormatError(f"{directory}: no base generation found in delta log")
        generation = max(bases)
        base_container = open_store(
            os.path.join(directory, _base_name(generation)), kind=BASE_KIND, verify=verify
        )
        num_nodes = int(base_container.meta.get("num_nodes", -1))
        offset = int(base_container.meta.get("pending_offset", -1))
        if num_nodes < 0 or offset < 0:
            raise GraphFormatError(
                f"{base_container.path}: delta base is missing num_nodes/pending_offset"
            )
        from repro.streaming.delta import GraphDelta

        base_graph = _graph_from_sections(base_container, "indptr", "indices", num_nodes)
        delta = GraphDelta(base_graph)

        replay: List[Tuple[int, int, str]] = []
        for gen, index, entry in sorted(segments):
            container = open_store(os.path.join(directory, entry), kind=SEGMENT_KIND, verify=verify)
            start = int(container.meta.get("start", -1))
            count = int(container.meta.get("count", -1))
            if start < 0 or count < 0 or container["u"].shape != (count,):
                raise GraphFormatError(f"{container.path}: segment start/count metadata invalid")
            replay.append((start, count, entry))
            container.close()
        replay.sort()
        cursor = offset
        max_seg_index = -1
        for start, count, entry in replay:
            if start + count <= cursor:
                continue  # fully folded into the base
            if start > cursor:
                raise GraphFormatError(
                    f"{directory}: delta log gap at global offset {cursor}: "
                    f"next segment {entry} starts at {start}"
                )
            container = open_store(os.path.join(directory, entry), kind=SEGMENT_KIND, verify=False)
            skip = cursor - start
            u = np.asarray(container["u"][skip:], dtype=np.int64)
            v = np.asarray(container["v"][skip:], dtype=np.int64)
            added = delta.add_edges(np.column_stack([u, v]))
            container.close()
            if added != u.shape[0]:
                raise GraphFormatError(
                    f"{directory}: segment {entry} replayed {added} of {u.shape[0]} edges "
                    "(duplicates in the durable stream)"
                )
            cursor = start + count
        for gen, index, _entry in segments:
            if gen == generation:
                max_seg_index = max(max_seg_index, index)
        log = cls(
            directory,
            _origin=offset,
            _generation=generation,
            _logged=cursor,
            _seg_index=max_seg_index + 1,
            _folded=offset,
        )
        return delta, log

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Current base generation on disk."""
        return self._generation

    @property
    def logged_offset(self) -> int:
        """Global stream offset up to which the log is durable."""
        return self._logged

    @property
    def origin(self) -> int:
        """Global stream offset of the in-memory delta's local index 0."""
        return self._origin

    def local_offset(self, global_offset: int) -> int:
        """Translate a global stream offset to this delta's local index."""
        return global_offset - self._origin

    def global_offset(self, local_index: int) -> int:
        """Translate a local pending index to its global stream offset."""
        return self._origin + local_index

    @staticmethod
    def describe(directory: "str | os.PathLike[str]", *, verify: bool = True) -> dict:
        """Inspect a log directory without replaying it into a delta.

        The read-only half of :meth:`recover` — checks the same
        invariants (a base exists, checksums pass when *verify*, the
        durable segments form a gap-free run from the base's folded
        offset) but never materializes edges, so ``repro doctor`` can
        report on logs much larger than RAM.  Returns a dict with
        ``ok``/``error`` plus ``generation``, ``folded_offset``,
        ``logged_offset``, ``num_nodes``, and per-file listings.
        """
        directory = os.fspath(directory)
        report: dict = {
            "directory": directory,
            "ok": False,
            "error": None,
            "generation": None,
            "folded_offset": None,
            "logged_offset": None,
            "num_nodes": None,
            "bases": [],
            "segments": [],
        }
        try:
            entries = sorted(os.listdir(directory))
        except OSError as exc:
            report["error"] = f"cannot list delta log: {exc}"
            return report
        segments: List[Tuple[int, int, str]] = []
        for entry in entries:
            match = _BASE_RE.match(entry)
            if match:
                report["bases"].append(entry)
                continue
            match = _SEG_RE.match(entry)
            if match:
                segments.append((int(match.group(1)), int(match.group(2)), entry))
        if not report["bases"]:
            report["error"] = "no base generation found"
            return report
        try:
            generation = max(
                int(_BASE_RE.match(entry).group(1)) for entry in report["bases"]
            )
            base = open_store(
                os.path.join(directory, _base_name(generation)),
                kind=BASE_KIND,
                verify=verify,
            )
            offset = int(base.meta.get("pending_offset", -1))
            report["generation"] = generation
            report["folded_offset"] = offset
            report["num_nodes"] = int(base.meta.get("num_nodes", -1))
            base.close()
            spans: List[Tuple[int, int, str]] = []
            for _gen, _index, entry in sorted(segments):
                container = open_store(
                    os.path.join(directory, entry), kind=SEGMENT_KIND, verify=verify
                )
                start = int(container.meta.get("start", -1))
                count = int(container.meta.get("count", -1))
                container.close()
                if start < 0 or count < 0:
                    raise GraphFormatError(f"{entry}: segment start/count metadata invalid")
                spans.append((start, count, entry))
                report["segments"].append({"file": entry, "start": start, "count": count})
            spans.sort()
            cursor = offset
            for start, count, entry in spans:
                if start + count <= cursor:
                    continue  # fully folded into the base
                if start > cursor:
                    raise GraphFormatError(
                        f"delta log gap at global offset {cursor}: "
                        f"next segment {entry} starts at {start}"
                    )
                cursor = start + count
            report["logged_offset"] = cursor
            report["ok"] = True
        except GraphFormatError as exc:
            report["error"] = str(exc)
        return report

    def append(self, delta: GraphDelta) -> "str | None":
        """Persist every not-yet-durable pending edge as one new segment.

        Crash-atomic (whole segment or nothing); returns the segment path,
        or ``None`` when the delta holds nothing new.
        """
        end = self._origin + delta.num_pending
        if end <= self._logged:
            return None
        lo = self._logged - self._origin
        edges = delta.pending_edges()[lo:]
        path = os.path.join(self.directory, _seg_name(self._generation, self._seg_index))
        write_store(
            path,
            {
                "u": np.ascontiguousarray(edges[:, 0]),
                "v": np.ascontiguousarray(edges[:, 1]),
            },
            kind=SEGMENT_KIND,
            meta={
                "generation": self._generation,
                "start": self._logged,
                "count": int(edges.shape[0]),
            },
        )
        self._seg_index += 1
        self._logged = end
        return path

    def compact(self, delta: GraphDelta, upto: int) -> "str | None":
        """Fold ``pending[:upto]`` (local index) into a new base generation.

        *upto* is a local pending index — in the streaming layer, the
        minimum re-summarization cursor over all machines, i.e. the prefix
        every machine's summary has already absorbed.  The new base is
        published atomically **before** any covered segment or older base
        is deleted, so a crash anywhere in between loses nothing.  The
        in-memory *delta* is not modified.  Returns the new base path, or
        ``None`` when there is nothing new to fold.
        """
        if not 0 <= upto <= delta.num_pending:
            raise GraphFormatError(
                f"compaction point {upto} outside the pending buffer "
                f"[0, {delta.num_pending}]"
            )
        self.append(delta)  # everything must be durable before it can be folded
        target = self._origin + upto
        if target <= self._folded:
            return None
        base_edges = delta.base.edge_array()
        prefix = delta.pending_edges()[:upto]
        u = np.concatenate([base_edges[:, 0], prefix[:, 0]])
        v = np.concatenate([base_edges[:, 1], prefix[:, 1]])
        merged = Graph._from_canonical_edges(delta.num_nodes, u, v)
        generation = self._generation + 1
        path = os.path.join(self.directory, _base_name(generation))
        write_store(
            path,
            {"indptr": merged.indptr, "indices": merged.indices},
            kind=BASE_KIND,
            meta={
                "num_nodes": merged.num_nodes,
                "generation": generation,
                "pending_offset": target,
            },
        )
        # The new base is durable; now drop what it covers.
        for entry in os.listdir(self.directory):
            match = _BASE_RE.match(entry)
            if match and int(match.group(1)) < generation:
                self._unlink(entry)
                continue
            match = _SEG_RE.match(entry)
            if match:
                seg_path = os.path.join(self.directory, entry)
                try:
                    container = open_store(seg_path, kind=SEGMENT_KIND, verify=False)
                    start = int(container.meta.get("start", 0))
                    count = int(container.meta.get("count", 0))
                    container.close()
                except GraphFormatError:
                    continue  # unreadable segment: keep for post-mortem, recovery ignores it
                if start + count <= target:
                    self._unlink(entry)
        self._generation = generation
        self._seg_index = 0
        self._folded = target
        return path

    def _unlink(self, entry: str) -> None:
        try:
            os.unlink(os.path.join(self.directory, entry))
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaLog(directory={self.directory!r}, generation={self._generation}, "
            f"logged={self._logged})"
        )
