"""The versioned binary container underneath the persistent store.

One container file holds a set of named NumPy arrays (*sections*) plus a
small JSON metadata record.  The layout is designed so a reader can map
the whole file once with :class:`numpy.memmap` and hand out zero-copy
read-only array views, while still detecting every corruption mode before
any array reaches a caller:

.. code-block:: text

    offset 0    fixed 64-byte header:
                  magic "RPROSTR1" | version u32 | section count u32
                  | meta offset u64 | meta length u64
                  | meta CRC32 u32 | header CRC32 u32 | zero padding
    offset 64   sections, each starting at a 64-byte-aligned offset
    meta offset JSON metadata (UTF-8), after the last section:
                  {"kind", "meta", "sections": [
                      {"name", "dtype", "shape", "offset", "nbytes",
                       "crc32"}, ...]}

Integrity contract (pinned by ``tests/store/test_fault_injection.py``):

* the header CRC covers the header, the meta CRC covers the JSON block,
  and every section carries its own CRC32 over the raw array bytes;
* any truncation, bit flip, magic/version mismatch, or out-of-bounds
  section raises :class:`~repro.errors.GraphFormatError` **naming the
  byte offset** of the failure — no code path ever returns silently
  corrupt arrays;
* :func:`write_store` is crash-atomic: it writes to a temporary file in
  the destination directory, fsyncs, and publishes with
  :func:`os.replace`, so a crash mid-write leaves any previous file at
  the destination untouched.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from typing import Dict, Iterator, Mapping, Tuple

import numpy as np

from repro.errors import GraphFormatError

#: File magic: 8 bytes at offset 0 of every store container.
MAGIC = b"RPROSTR1"

#: Container format version understood by this reader/writer.
VERSION = 1

#: Sections begin at multiples of this (cache-line / page friendly).
ALIGNMENT = 64

_HEADER = struct.Struct("<8sIIQQII24x")
assert _HEADER.size == 64


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _pack_header(section_count: int, meta_offset: int, meta_length: int, meta_crc: int) -> bytes:
    """The 64-byte header; its own CRC is computed with the field zeroed."""
    unsigned = _HEADER.pack(MAGIC, VERSION, section_count, meta_offset, meta_length, meta_crc, 0)
    header_crc = zlib.crc32(unsigned)
    return _HEADER.pack(MAGIC, VERSION, section_count, meta_offset, meta_length, meta_crc, header_crc)


def write_store(
    path: "str | os.PathLike[str]",
    arrays: "Mapping[str, np.ndarray]",
    *,
    kind: str,
    meta: "Mapping[str, object] | None" = None,
) -> None:
    """Write *arrays* + *meta* to *path* as one container, crash-atomically.

    The file appears at *path* only once fully written and fsynced
    (temp file + :func:`os.replace`); an exception or crash at any point
    leaves a previous file at *path* intact and no partial file visible.
    """
    sections = []
    prepared: Dict[str, np.ndarray] = {}
    offset = _HEADER.size
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        prepared[name] = array
        offset = _align(offset)
        sections.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": array.nbytes,
                "crc32": 0,  # filled below, once the bytes exist
            }
        )
        offset += array.nbytes
    meta_offset = _align(offset)

    directory = os.path.dirname(os.path.abspath(os.fspath(path))) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(os.fspath(path)) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(b"\0" * _HEADER.size)  # placeholder until CRCs are known
            for spec in sections:
                handle.write(b"\0" * (spec["offset"] - handle.tell()))
                data = prepared[spec["name"]].tobytes()
                spec["crc32"] = zlib.crc32(data)
                handle.write(data)
            handle.write(b"\0" * (meta_offset - handle.tell()))
            meta_blob = json.dumps(
                {"kind": kind, "meta": dict(meta or {}), "sections": sections},
                separators=(",", ":"),
                sort_keys=True,
            ).encode("utf-8")
            handle.write(meta_blob)
            handle.seek(0)
            handle.write(
                _pack_header(len(sections), meta_offset, len(meta_blob), zlib.crc32(meta_blob))
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class StoreContainer:
    """A read-only, memory-mapped view of one container file.

    Behaves as a mapping from section name to a zero-copy read-only
    :class:`numpy.ndarray` view into the file mapping.  The mapping stays
    alive for as long as any handed-out view references it (NumPy keeps
    the base buffer pinned), so :meth:`close` is safe to call early.
    """

    def __init__(self, path: "str | os.PathLike[str]", *, verify: bool = True):
        self.path = os.fspath(path)
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            raise GraphFormatError(f"{self.path}: cannot stat store file: {exc}") from None
        if size < _HEADER.size:
            raise GraphFormatError(
                f"{self.path}: truncated header at offset 0: file is {size} bytes, "
                f"a store container needs at least {_HEADER.size}"
            )
        try:
            self._mmap: "np.memmap | None" = np.memmap(self.path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise GraphFormatError(f"{self.path}: cannot map store file: {exc}") from None
        buf = self._mmap
        magic, version, section_count, meta_offset, meta_length, meta_crc, header_crc = (
            _HEADER.unpack(bytes(buf[: _HEADER.size]))
        )
        if magic != MAGIC:
            raise GraphFormatError(
                f"{self.path}: bad magic {magic!r} at offset 0 (expected {MAGIC!r})"
            )
        if version != VERSION:
            raise GraphFormatError(
                f"{self.path}: unsupported container version {version} at offset 8 "
                f"(this reader understands version {VERSION})"
            )
        expected_crc = zlib.crc32(
            _HEADER.pack(magic, version, section_count, meta_offset, meta_length, meta_crc, 0)
        )
        if header_crc != expected_crc:
            raise GraphFormatError(
                f"{self.path}: header checksum mismatch at offset 36 "
                f"(stored {header_crc:#010x}, computed {expected_crc:#010x})"
            )
        if meta_offset + meta_length > size:
            raise GraphFormatError(
                f"{self.path}: truncated metadata at offset {meta_offset}: "
                f"needs {meta_length} bytes, file ends at {size}"
            )
        meta_blob = bytes(buf[meta_offset : meta_offset + meta_length])
        computed = zlib.crc32(meta_blob)
        if computed != meta_crc:
            raise GraphFormatError(
                f"{self.path}: metadata checksum mismatch at offset {meta_offset} "
                f"(stored {meta_crc:#010x}, computed {computed:#010x})"
            )
        try:
            record = json.loads(meta_blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GraphFormatError(
                f"{self.path}: metadata at offset {meta_offset} is not valid JSON: {exc}"
            ) from None
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("kind"), str)
            or not isinstance(record.get("meta"), dict)
            or not isinstance(record.get("sections"), list)
        ):
            raise GraphFormatError(
                f"{self.path}: metadata at offset {meta_offset} is missing kind/meta/sections"
            )
        if len(record["sections"]) != section_count:
            raise GraphFormatError(
                f"{self.path}: header at offset 12 promises {section_count} sections, "
                f"metadata lists {len(record['sections'])}"
            )
        self.kind: str = record["kind"]
        self.meta: Dict[str, object] = record["meta"]
        self._views: Dict[str, np.ndarray] = {}
        for spec in record["sections"]:
            self._views[spec["name"]] = self._map_section(spec, size, verify)

    def _map_section(self, spec: Dict[str, object], file_size: int, verify: bool) -> np.ndarray:
        name, offset, nbytes = spec["name"], int(spec["offset"]), int(spec["nbytes"])
        try:
            dtype = np.dtype(str(spec["dtype"]))
        except TypeError as exc:
            raise GraphFormatError(
                f"{self.path}: section {name!r} at offset {offset} has bad dtype: {exc}"
            ) from None
        shape = tuple(int(d) for d in spec["shape"])
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
        if expected != nbytes or any(d < 0 for d in shape):
            raise GraphFormatError(
                f"{self.path}: section {name!r} at offset {offset}: shape {shape} x "
                f"{dtype.str} needs {expected} bytes, metadata says {nbytes}"
            )
        if offset < _HEADER.size or offset % ALIGNMENT != 0:
            raise GraphFormatError(
                f"{self.path}: section {name!r} has a misaligned offset {offset} "
                f"(must be a multiple of {ALIGNMENT}, past the header)"
            )
        if offset + nbytes > file_size:
            raise GraphFormatError(
                f"{self.path}: section {name!r} truncated at offset {offset}: "
                f"needs {nbytes} bytes, file ends at {file_size}"
            )
        raw = self._mmap[offset : offset + nbytes]
        if verify:
            computed = zlib.crc32(raw)
            if computed != int(spec["crc32"]):
                raise GraphFormatError(
                    f"{self.path}: checksum mismatch in section {name!r} at offset {offset} "
                    f"(stored {int(spec['crc32']):#010x}, computed {computed:#010x})"
                )
        view = np.ndarray(shape, dtype=dtype, buffer=self._mmap, offset=offset)
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------
    # mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._views[name]
        except KeyError:
            raise GraphFormatError(
                f"{self.path}: store has no section {name!r} (has {sorted(self._views)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __iter__(self) -> Iterator[str]:
        return iter(self._views)

    def keys(self):
        return self._views.keys()

    def items(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(self._views.items())

    def close(self) -> None:
        """Drop this container's own references to the mapping (idempotent).

        Views already handed out keep the underlying mapping alive through
        their ``base`` chain; the pages are returned to the OS once the
        last view is garbage collected.
        """
        self._views = {}
        self._mmap = None

    def __enter__(self) -> "StoreContainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreContainer(path={self.path!r}, kind={self.kind!r}, sections={sorted(self._views)})"


def open_store(
    path: "str | os.PathLike[str]", *, kind: "str | None" = None, verify: bool = True
) -> StoreContainer:
    """Open a container, optionally requiring its *kind* tag.

    With ``verify=True`` (default) every section's CRC32 is checked at
    open — one sequential read of the file — so a corrupted array can
    never reach a caller.  ``verify=False`` skips only the CRC pass
    (structural validation still runs) for callers re-opening a file they
    just wrote and fsynced themselves.
    """
    container = StoreContainer(path, verify=verify)
    if kind is not None and container.kind != kind:
        raise GraphFormatError(
            f"{container.path}: store holds a {container.kind!r} record, expected {kind!r}"
        )
    return container
