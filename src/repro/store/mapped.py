"""Memory-mapped, read-only :class:`Graph` and :class:`SummaryGraph` views.

The container (:mod:`repro.store.container`) gives us named arrays mapped
zero-copy from disk; this module gives those arrays the *semantics* of the
in-RAM structures so every existing consumer — queries, serving, cluster
routing — works on a store file without loading it onto the heap:

* :class:`MappedGraph` is a :class:`~repro.graph.graph.Graph` whose CSR
  arrays are views into the file mapping.  It passes every
  ``isinstance(source, Graph)`` dispatch and answers queries
  byte-identically to the graph it was saved from.
* :class:`MappedSummary` is a read-only :class:`SummaryGraph` backend over
  the columnar sections (``supernode_of``, lexsorted superedge columns,
  plus precomputed member/adjacency permutations).  Its
  ``superedge_arrays()`` returns the mapped columns — the exact bytes the
  in-RAM export produced — so RWR/PHP/HOP answers are byte-identical to
  the original summary on either storage backend.  Mutation raises.

The derived lookup permutations (members grouped by supernode, superedges
re-sorted by their high endpoint) are computed **at save time** and stored
as sections, so opening a summary costs O(validation) and no per-node heap
allocation; per-supernode accessors are binary searches over the mapped
arrays.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Set, Tuple

import numpy as np

from repro._util import log2_capped
from repro.core.summary import SummaryGraph
from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.obs.profile import probe
from repro.store.container import StoreContainer, open_store, write_store

#: Container ``kind`` tags for the two top-level record types.
GRAPH_KIND = "graph"
SUMMARY_KIND = "summary"


class MappedGraph(Graph):
    """A :class:`Graph` whose CSR arrays are zero-copy views of a store file."""

    __slots__ = ("store_path", "_container")

    def __init__(self, container: StoreContainer, num_nodes: int, indptr, indices):
        super().__init__(num_nodes, indptr, indices)
        self.store_path = container.path
        self._container = container


def save_graph(graph: Graph, path: "str | os.PathLike[str]") -> None:
    """Write *graph* to *path* as a crash-atomic ``graph`` container."""
    write_store(
        path,
        {"indptr": graph.indptr, "indices": graph.indices},
        kind=GRAPH_KIND,
        meta={"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
    )


def _graph_from_sections(
    container: StoreContainer, indptr_name: str, indices_name: str, num_nodes: int
) -> MappedGraph:
    try:
        return MappedGraph(container, num_nodes, container[indptr_name], container[indices_name])
    except GraphFormatError as exc:
        raise GraphFormatError(f"{container.path}: invalid CSR sections: {exc}") from None


def load_graph(path: "str | os.PathLike[str]", *, verify: bool = True) -> MappedGraph:
    """Open a graph store as a read-only memory-mapped :class:`Graph`.

    The CSR arrays are views into the file mapping; the OS pages them in
    on demand and may evict them under memory pressure, so a cluster of
    mapped graphs larger than RAM stays serveable.
    """
    with probe("store.load_graph"):
        container = open_store(path, kind=GRAPH_KIND, verify=verify)
        num_nodes = int(container.meta.get("num_nodes", -1))
        if num_nodes < 0:
            raise GraphFormatError(
                f"{container.path}: graph store is missing num_nodes metadata"
            )
        return _graph_from_sections(container, "indptr", "indices", num_nodes)


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
class MappedSummary(SummaryGraph):
    """Read-only summary-graph backend over mapped columnar sections.

    Constructed only by :func:`load_summary_binary`; the public surface
    is the :class:`SummaryGraph` API with every accessor answered from
    the mapped arrays (binary searches over the stored permutations) and
    every mutator raising :class:`~repro.errors.GraphFormatError`.

    ``graph`` is the input graph when one was supplied or embedded in the
    store, else ``None`` — queries never need it (they read ``num_nodes``
    from the summary itself), only :meth:`compression_ratio` does.
    """

    backend = "mapped"

    def __init__(self, *args, **kwargs):
        raise GraphFormatError(
            "MappedSummary is read-only and built by repro.store.load_summary_binary"
        )

    @classmethod
    def _from_container(cls, container: StoreContainer, graph: "Graph | None") -> "MappedSummary":
        self = object.__new__(cls)
        meta = container.meta
        num_nodes = int(meta.get("num_nodes", -1))
        if num_nodes < 0:
            raise GraphFormatError(f"{container.path}: summary store is missing num_nodes metadata")
        if graph is None and bool(meta.get("has_graph")):
            graph = _graph_from_sections(container, "graph_indptr", "graph_indices", num_nodes)
        if graph is not None and graph.num_nodes != num_nodes:
            raise GraphFormatError(
                f"{container.path}: summary is for {num_nodes} nodes, "
                f"graph has {graph.num_nodes}"
            )
        self._container = container
        self.store_path = container.path
        self.graph = graph
        self._n = num_nodes
        self._weighted = bool(meta.get("weighted"))
        self.supernode_of = container["supernode_of"]
        self._se_lo = container["se_lo"]
        self._se_hi = container["se_hi"]
        self._se_w = container["se_weights"] if self._weighted else None
        self._member_order = container["member_order"]
        self._member_keys = container["member_keys"]
        self._se_by_hi = container["se_by_hi"]
        self._se_hi_keys = container["se_hi_keys"]
        self._num_superedges = int(meta.get("num_superedges", self._se_lo.shape[0]))
        self._live: "np.ndarray | None" = None  # lazily derived live-id list
        self._size_bits: "float | None" = None
        self._validate()
        return self

    # ------------------------------------------------------------------
    # structural validation (untrusted input; beyond the CRC layer)
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        path = self.store_path
        n, p = self._n, self._se_lo.shape[0]
        if self.supernode_of.shape != (n,):
            raise GraphFormatError(
                f"{path}: supernode_of has shape {self.supernode_of.shape}, expected ({n},)"
            )
        if n and (self.supernode_of.min() < 0 or self.supernode_of.max() >= n):
            raise GraphFormatError(f"{path}: supernode ids out of range [0, {n})")
        if self._member_order.shape != (n,) or self._member_keys.shape != (n,):
            raise GraphFormatError(f"{path}: member index sections must have length {n}")
        if n:
            if np.any(np.sort(self._member_order) != np.arange(n, dtype=np.int64)):
                raise GraphFormatError(f"{path}: member_order is not a permutation of 0..{n - 1}")
            keys = self.supernode_of[self._member_order]
            if np.any(keys != self._member_keys) or np.any(np.diff(self._member_keys) < 0):
                raise GraphFormatError(f"{path}: member_keys disagree with supernode_of")
        if self._se_hi.shape != (p,) or self._se_by_hi.shape != (p,) or self._se_hi_keys.shape != (p,):
            raise GraphFormatError(f"{path}: superedge sections must share length {p}")
        if self._num_superedges != p:
            raise GraphFormatError(
                f"{path}: metadata says {self._num_superedges} superedges, sections hold {p}"
            )
        if p:
            if self._se_lo.min() < 0 or self._se_hi.max() >= n or np.any(self._se_lo > self._se_hi):
                raise GraphFormatError(f"{path}: superedge endpoints out of range or not canonical")
            live_mask = np.zeros(n, dtype=bool)
            live_mask[self.supernode_of] = True
            if not (live_mask[self._se_lo].all() and live_mask[self._se_hi].all()):
                raise GraphFormatError(f"{path}: superedge endpoints name dead supernodes")
            if np.any(np.sort(self._se_by_hi) != np.arange(p, dtype=np.int64)):
                raise GraphFormatError(f"{path}: se_by_hi is not a permutation of 0..{p - 1}")
            if np.any(self._se_hi[self._se_by_hi] != self._se_hi_keys) or np.any(
                np.diff(self._se_hi_keys) < 0
            ):
                raise GraphFormatError(f"{path}: se_hi_keys disagree with the superedge columns")
            order = np.lexsort((self._se_hi, self._se_lo))
            if np.any(order != np.arange(p, dtype=np.int64)):
                raise GraphFormatError(f"{path}: superedge columns are not lexsorted")
            key = self._se_lo * np.int64(max(n, 1)) + self._se_hi
            if np.any(key[1:] == key[:-1]):
                raise GraphFormatError(f"{path}: duplicate superedges in the store")
        if self._weighted and (self._se_w is None or self._se_w.shape != (p,)):
            raise GraphFormatError(f"{path}: weighted summary store is missing se_weights")

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_supernodes(self) -> int:
        return self._live_ids().shape[0]

    @property
    def is_weighted(self) -> bool:
        return self._weighted

    def _live_ids(self) -> np.ndarray:
        if self._live is None:
            self._live = np.unique(self.supernode_of)
        return self._live

    def supernodes(self) -> List[int]:
        return self._live_ids().tolist()

    def members(self, supernode: int) -> np.ndarray:
        self._require_live(supernode)
        lo = np.searchsorted(self._member_keys, supernode, side="left")
        hi = np.searchsorted(self._member_keys, supernode, side="right")
        return np.asarray(self._member_order[lo:hi], dtype=np.int64)

    def member_list(self, supernode: int) -> List[int]:
        return self.members(supernode).tolist()

    def member_count(self, supernode: int) -> int:
        self._require_live(supernode)
        lo = np.searchsorted(self._member_keys, supernode, side="left")
        hi = np.searchsorted(self._member_keys, supernode, side="right")
        return int(hi - lo)

    def _require_live(self, supernode: int) -> None:
        live = self._live_ids()
        pos = np.searchsorted(live, supernode)
        if not (0 <= supernode < self._n) or pos >= live.shape[0] or live[pos] != supernode:
            raise GraphFormatError(f"supernode {supernode} does not exist")

    def superedge_neighbors(self, supernode: int) -> Set[int]:
        self._require_live(supernode)
        lo = np.searchsorted(self._se_lo, supernode, side="left")
        hi = np.searchsorted(self._se_lo, supernode, side="right")
        out = set(self._se_hi[lo:hi].tolist())
        lo = np.searchsorted(self._se_hi_keys, supernode, side="left")
        hi = np.searchsorted(self._se_hi_keys, supernode, side="right")
        out.update(self._se_lo[self._se_by_hi[lo:hi]].tolist())
        return out

    def _superedge_row(self, a: int, b: int) -> int:
        """Row index of superedge ``{a, b}`` in the lexsorted columns, or -1."""
        if a > b:
            a, b = b, a
        lo = np.searchsorted(self._se_lo, a, side="left")
        hi = np.searchsorted(self._se_lo, a, side="right")
        pos = lo + np.searchsorted(self._se_hi[lo:hi], b)
        if pos < hi and self._se_hi[pos] == b:
            return int(pos)
        return -1

    def has_superedge(self, a: int, b: int) -> bool:
        if not (0 <= a < self._n and 0 <= b < self._n):
            return False
        return self._superedge_row(a, b) >= 0

    def superedges(self) -> Iterator[Tuple[int, int]]:
        for a, b in zip(self._se_lo.tolist(), self._se_hi.tolist()):
            yield a, b

    def superedge_weight(self, a: int, b: int) -> float:
        if not self._weighted:
            raise GraphFormatError("summary graph is unweighted")
        row = self._superedge_row(a, b)
        return float(self._se_w[row]) if row >= 0 else 0.0

    def superedge_arrays(self) -> Tuple[np.ndarray, np.ndarray, "np.ndarray | None"]:
        return self._se_lo, self._se_hi, self._se_w

    def superedge_density(self, a: int, b: int) -> float:
        if not self._weighted:
            return 1.0 if self.has_superedge(a, b) else 0.0
        pairs = self.block_pair_count(a, b)
        if pairs == 0:
            return 0.0
        return min(self.superedge_weight(a, b) / pairs, 1.0)

    # ------------------------------------------------------------------
    # read-only: every mutator refuses
    # ------------------------------------------------------------------
    def _read_only(self, operation: str):
        raise GraphFormatError(
            f"cannot {operation}: mapped summary {self.store_path!r} is read-only "
            "(load with backend='dict' or 'flat' to mutate)"
        )

    def add_superedge(self, a: int, b: int, *, weight: "float | None" = None) -> None:
        self._read_only("add a superedge")

    def remove_superedge(self, a: int, b: int) -> None:
        self._read_only("remove a superedge")

    def merge_supernodes(self, a: int, b: int) -> Tuple[int, Set[int]]:
        self._read_only("merge supernodes")

    # ------------------------------------------------------------------
    # size model
    # ------------------------------------------------------------------
    def size_in_bits(self) -> float:
        if self._size_bits is None:
            s = self.num_supernodes
            if s == 0:
                self._size_bits = 0.0
            else:
                log_s = log2_capped(s)
                membership_bits = self._n * log_s
                if not self._weighted:
                    self._size_bits = 2.0 * self._num_superedges * log_s + membership_bits
                else:
                    w_max = float(self._se_w.max()) if self._se_w.size else 1.0
                    weight_bits = (
                        log2_capped(max(int(np.ceil(w_max)), 1)) if w_max > 1 else 0.0
                    )
                    self._size_bits = (
                        self._num_superedges * (2.0 * log_s + weight_bits) + membership_bits
                    )
        return self._size_bits

    def compression_ratio(self) -> float:
        if self.graph is None:
            raise GraphFormatError(
                "compression_ratio needs the input graph; this store was saved "
                "without one and none was supplied to load_summary_binary"
            )
        return super().compression_ratio()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        self._validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MappedSummary(|V|={self._n}, |S|={self.num_supernodes}, "
            f"|P|={self._num_superedges}, weighted={self._weighted}, "
            f"path={self.store_path!r})"
        )


def save_summary_binary(
    summary: SummaryGraph,
    path: "str | os.PathLike[str]",
    *,
    include_graph: bool = True,
) -> None:
    """Write *summary* to *path* as a crash-atomic binary summary container.

    Stores the backend-agnostic columnar form — the partition array and
    the lexsorted superedge columns — plus the precomputed lookup
    permutations that make the mapped view O(log) per accessor.  With
    *include_graph* (default) the input graph's CSR rides along so the
    file is self-contained; builds that spill many summaries of the same
    graph pass ``include_graph=False`` and save the graph once.

    The columnar form is identical across storage backends (it is the
    same export that pins cross-backend query equivalence), so files
    saved from ``dict``, ``flat``, or mapped summaries of the same
    structure are byte-identical.
    """
    lo, hi, weights = summary.superedge_arrays()
    supernode_of = np.ascontiguousarray(summary.supernode_of, dtype=np.int64)
    member_order = np.argsort(supernode_of, kind="stable").astype(np.int64)
    se_by_hi = np.lexsort((lo, hi)).astype(np.int64) if lo.size else np.empty(0, dtype=np.int64)
    arrays = {
        "supernode_of": supernode_of,
        "member_order": member_order,
        "member_keys": supernode_of[member_order],
        "se_lo": np.ascontiguousarray(lo, dtype=np.int64),
        "se_hi": np.ascontiguousarray(hi, dtype=np.int64),
        "se_by_hi": se_by_hi,
        "se_hi_keys": np.ascontiguousarray(hi, dtype=np.int64)[se_by_hi],
    }
    if summary.is_weighted:
        if weights is None:  # pragma: no cover - defensive; exports always pair them
            weights = np.ones(lo.shape[0], dtype=np.float64)
        arrays["se_weights"] = np.ascontiguousarray(weights, dtype=np.float64)
    graph = getattr(summary, "graph", None)
    has_graph = include_graph and isinstance(graph, Graph)
    if has_graph:
        arrays["graph_indptr"] = graph.indptr
        arrays["graph_indices"] = graph.indices
    write_store(
        path,
        arrays,
        kind=SUMMARY_KIND,
        meta={
            "num_nodes": summary.num_nodes,
            "weighted": summary.is_weighted,
            "num_supernodes": summary.num_supernodes,
            "num_superedges": summary.num_superedges,
            "has_graph": has_graph,
        },
    )


def load_summary_binary(
    path: "str | os.PathLike[str]",
    graph: "Graph | None" = None,
    *,
    backend: str = "mapped",
    verify: bool = True,
) -> SummaryGraph:
    """Read a summary container from *path*.

    ``backend="mapped"`` (default) returns a zero-copy
    :class:`MappedSummary` over the file mapping — no heap copies of the
    arrays, read-only, byte-identical query answers.  ``"dict"`` /
    ``"flat"`` materialize a mutable in-RAM :class:`SummaryGraph` exactly
    as :func:`repro.core.summary_io.load_summary` would from the text
    format; they need the input graph (supplied or embedded in the file).
    """
    with probe("store.load_summary"):
        container = open_store(path, kind=SUMMARY_KIND, verify=verify)
        mapped = MappedSummary._from_container(container, graph)
    if backend == "mapped":
        return mapped
    if backend not in ("dict", "flat"):
        raise GraphFormatError(
            f"unknown summary backend {backend!r}; choose 'mapped', 'dict' or 'flat'"
        )
    base_graph = mapped.graph
    if base_graph is None:
        raise GraphFormatError(
            f"{container.path}: materializing backend={backend!r} needs the input graph; "
            "pass graph= or save with include_graph=True"
        )
    lo, hi, weights = mapped.superedge_arrays()
    if mapped.is_weighted:
        superedges = zip(lo.tolist(), hi.tolist(), weights.tolist())
    else:
        superedges = ((a, b, None) for a, b in zip(lo.tolist(), hi.tolist()))
    try:
        return SummaryGraph.from_parts(
            base_graph,
            mapped.supernode_of,
            superedges,
            weighted=mapped.is_weighted,
            backend=backend,
            validate=True,
        )
    except GraphFormatError as exc:
        raise GraphFormatError(f"{container.path}: {exc}") from None
