"""Shared experiment configuration and the method registry.

The paper compares five summarizers (Sect. V-A):

* **PeGaSus** and **SSumM** take a budget in bits;
* **k-Grass**, **S2L**, and **SAAGs** take a supernode budget (the paper
  sets it as a fraction of ``|V|``) and emit weighted summaries, whose
  achieved bit ratio is computed after the fact for the x-axis.

:func:`build_summary_for_method` hides that asymmetry: every method maps a
requested compression ratio to a summary plus its achieved ratio.  Methods
whose reference implementations time out on larger datasets in the paper
(S2L, k-Grass — Fig. 7's "o.o.t" marks) are skipped above a node budget
here too, by raising :class:`MethodSkipped`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.baselines import (
    kgrass_summarize,
    s2l_summarize,
    saags_summarize,
    ssumm_summarize,
)
from repro.core import PegasusConfig, SummaryGraph, summarize
from repro.graph.graph import Graph
from repro.parallel import ParallelExecutor
from repro.parallel.graphship import GraphShipment, restore_graphs

#: Method names in the paper's plotting order.
METHODS = ("pegasus", "ssumm", "saags", "s2l", "kgrass")

#: Node counts above which the slow baselines are marked o.o.t, mirroring
#: the out-of-time entries of Figs. 7 and 8.
OOT_NODE_LIMITS = {"s2l": 1500, "kgrass": 2500, "saags": 100_000}


class MethodSkipped(RuntimeError):
    """Raised when a baseline would exceed its o.o.t budget (Fig. 7/8)."""


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity for runtime.

    ``REPRO_SCALE=small|default|full`` selects a preset; individual fields
    can be overridden via ``REPRO_DATASET_SCALE`` / ``REPRO_QUERIES``.
    """

    dataset_scale: float = 0.35
    num_queries: int = 8
    num_machines: int = 4
    t_max: int = 20
    seed: int = 0
    workers: int = 1

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        preset = os.environ.get("REPRO_SCALE", "default").lower()
        if preset == "small":
            scale = cls(dataset_scale=0.2, num_queries=4, num_machines=4, t_max=10)
        elif preset == "full":
            scale = cls(dataset_scale=1.0, num_queries=24, num_machines=8, t_max=20)
        else:
            scale = cls()
        dataset_scale = float(os.environ.get("REPRO_DATASET_SCALE", scale.dataset_scale))
        num_queries = int(os.environ.get("REPRO_QUERIES", scale.num_queries))
        workers = int(os.environ.get("REPRO_WORKERS", scale.workers))
        return cls(
            dataset_scale=dataset_scale,
            num_queries=num_queries,
            num_machines=scale.num_machines,
            t_max=scale.t_max,
            seed=scale.seed,
            workers=workers,
        )


def _shipped_point(shared, task):
    """Trampoline restoring shm-shipped graphs before running a point."""
    point_fn, inner_shared = shared
    return point_fn(restore_graphs(inner_shared), restore_graphs(task))


def sweep(
    point_fn,
    points,
    *,
    workers: "int | None" = 1,
    shared=None,
    use_shared_memory: bool = True,
) -> list:
    """Fan independent experiment points out over the worker pool.

    The parallel sweep runner behind the Fig. 5/6/8/9/11/12 drivers: each
    *point* is one self-contained unit of work (a summarize-and-evaluate
    for one dataset × method × parameter combination), *shared* is the
    payload every point needs (graphs, query nodes, scale), and
    ``point_fn(shared, point)`` must be a module-level function.  Results
    come back in point order, so a driver that (a) consumes all of its RNG
    while *planning* the point list and (b) assembles rows from the
    ordered results produces identical output at any worker count.

    With ``workers > 1`` every :class:`~repro.graph.graph.Graph` in
    *shared* or in the point payloads is packed once into shared memory
    and attached zero-copy per worker
    (:class:`~repro.parallel.graphship.GraphShipment`) — without this the
    ``spawn`` start method pickles the shared graphs once per worker and
    per-point graphs (the Fig. 6 subgraphs) once per task.  Results are
    identical either way; ``use_shared_memory=False`` forces the pickle
    path and ``workers=1`` runs inline with no shipping at all.
    """
    executor = ParallelExecutor(workers)
    points = list(points)
    if executor.workers > 1 and points:
        with GraphShipment(
            (shared, points), use_shared_memory=use_shared_memory
        ) as shipment:
            shipped_shared, shipped_points = shipment.payload
            return executor.map(
                _shipped_point, shipped_points, shared=(point_fn, shipped_shared)
            )
    return executor.map(point_fn, points, shared=shared)


def _calibrated_baseline(builder, graph: Graph, ratio: float, seed: int, probes: int = 4):
    """Pick a supernode fraction whose *achieved bit ratio* fits the budget.

    The weighted baselines take supernode budgets; their dense weighted
    summaries barely compress at a matched supernode *fraction*, so the
    paper plots them at their achieved bit ratios instead.  A short
    bisection over the fraction reproduces that: the summary returned is
    the largest one whose ``Size(G̅)/Size(G)`` is within the requested
    ratio (or the smallest probe if none fits).
    """
    lo, hi = 0.02, 0.9
    best = None
    for _ in range(probes):
        fraction = (lo + hi) / 2.0
        summary = builder(graph, supernode_fraction=fraction, seed=seed)
        achieved = summary.compression_ratio()
        if achieved <= ratio:
            best = summary
            lo = fraction  # try to keep more supernodes
        else:
            hi = fraction
    if best is None:
        best = builder(graph, supernode_fraction=lo, seed=seed)
    return best


def build_summary_for_method(
    method: str,
    graph: Graph,
    ratio: float,
    *,
    targets: "Iterable[int] | np.ndarray | None" = None,
    alpha: float = 1.25,
    t_max: int = 20,
    seed: int = 0,
    backend: str = "flat",
    cost_cache: str = "incremental",
    engine: str = "batch",
) -> Tuple[SummaryGraph, float, float]:
    """Summarize *graph* with *method* at requested compression *ratio*.

    Returns ``(summary, achieved_ratio, elapsed_seconds)``.

    PeGaSus is personalized to *targets* (the query nodes, as in Sect. V-D);
    all baselines ignore them.  The weighted baselines are calibrated so
    their achieved bit ratio fits the requested one (see
    :func:`_calibrated_baseline`).  Raises :class:`MethodSkipped` for
    baselines above their o.o.t node budget.

    *backend* / *cost_cache* / *engine* select the shared merge engine's
    storage backend, cost-model strategy, and merge-evaluation engine for
    PeGaSus and SSumM (the weighted baselines do not run the merge engine
    and ignore them).
    """
    limit = OOT_NODE_LIMITS.get(method)
    if limit is not None and graph.num_nodes > limit:
        raise MethodSkipped(f"{method} exceeds its o.o.t budget at {graph.num_nodes} nodes")
    started = time.perf_counter()
    if method == "pegasus":
        config = PegasusConfig(
            alpha=alpha,
            t_max=t_max,
            seed=seed,
            backend=backend,
            cost_cache=cost_cache,
            engine=engine,
        )
        summary = summarize(
            graph, targets=targets, compression_ratio=ratio, config=config
        ).summary
    elif method == "ssumm":
        summary = ssumm_summarize(
            graph,
            compression_ratio=ratio,
            t_max=t_max,
            seed=seed,
            backend=backend,
            cost_cache=cost_cache,
            engine=engine,
        ).summary
    elif method == "saags":
        summary = _calibrated_baseline(saags_summarize, graph, ratio, seed)
    elif method == "s2l":
        summary = _calibrated_baseline(s2l_summarize, graph, ratio, seed, probes=3)
    elif method == "kgrass":
        summary = _calibrated_baseline(kgrass_summarize, graph, ratio, seed, probes=3)
    else:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    elapsed = time.perf_counter() - started
    return summary, summary.compression_ratio(), elapsed
