"""Fig. 9 — effect of the degree of personalization α.

Protocol (Sect. V-E): 100 uniformly-sampled query nodes double as the
target set; for each α the graph is summarized at a fixed ratio and the
three node-similarity queries are answered from the summary.  Accuracy
peaks at a *moderate* α (1.25–1.5): too small ignores the targets, too
large throws away global structure the queries still need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core import PegasusConfig, summarize
from repro.eval import evaluate_query_accuracy, sample_query_nodes
from repro.experiments.common import ExperimentScale, sweep
from repro.graph import load_dataset

ALPHAS = (1.0, 1.05, 1.25, 1.5, 1.75, 2.0)


def _alpha_point(shared, point):
    """Summarize and evaluate one (ratio, α, dataset) point."""
    per_dataset, scale, query_types = shared
    ratio, alpha, name = point
    graph, queries = per_dataset[name]
    config = PegasusConfig(alpha=alpha, t_max=scale.t_max, seed=scale.seed)
    summary = summarize(graph, targets=queries, compression_ratio=ratio, config=config).summary
    accuracy = evaluate_query_accuracy(graph, summary, queries, query_types=tuple(query_types))
    return {qt: (result.smape, result.spearman) for qt, result in accuracy.items()}


@dataclass
class AlphaRow:
    """One bar of Fig. 9, already averaged over datasets."""

    alpha: float
    ratio: float
    query_type: str
    smape: float
    spearman: float


def run(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida", "dblp"),
    alphas: Sequence[float] = ALPHAS,
    ratios: Sequence[float] = (0.3, 0.5),
    query_types: Sequence[str] = ("rwr", "hop", "php"),
    scale: "ExperimentScale | None" = None,
    workers: "int | None" = None,
) -> List[AlphaRow]:
    """Sweep α; rows are averaged over the datasets as in Fig. 9.

    The (ratio, α, dataset) points are independent and fan out over
    *workers* processes (default: ``scale.workers``); rows are identical
    at any worker count.
    """
    scale = scale or ExperimentScale.from_env()
    workers = scale.workers if workers is None else workers
    per_dataset = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        per_dataset[name] = (graph, queries)
    points = [(ratio, alpha, name) for ratio in ratios for alpha in alphas for name in datasets]
    results = sweep(
        _alpha_point, points, workers=workers, shared=(per_dataset, scale, tuple(query_types))
    )
    by_point = dict(zip(points, results))
    rows: List[AlphaRow] = []
    for ratio in ratios:
        for alpha in alphas:
            metrics = {qt: ([], []) for qt in query_types}
            for name in datasets:
                for qt, (smape, spearman) in by_point[(ratio, alpha, name)].items():
                    metrics[qt][0].append(smape)
                    metrics[qt][1].append(spearman)
            for qt, (smapes, spearmans) in metrics.items():
                rows.append(
                    AlphaRow(
                        alpha=alpha,
                        ratio=ratio,
                        query_type=qt,
                        smape=float(np.mean(smapes)),
                        spearman=float(np.mean(spearmans)),
                    )
                )
    return rows


def best_alpha(rows: Sequence[AlphaRow], *, ratio: float, query_type: str, metric: str = "smape") -> float:
    """The α with the best averaged accuracy at one ratio/query type."""
    candidates = [r for r in rows if r.ratio == ratio and r.query_type == query_type]
    if metric == "smape":
        return min(candidates, key=lambda r: r.smape).alpha
    return max(candidates, key=lambda r: r.spearman).alpha
