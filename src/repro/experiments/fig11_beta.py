"""Fig. 11 — effect of the adaptive-thresholding parameter β.

Protocol (Sect. V-E): like the α sweep, but varying β — the quantile of
rejected relative reductions that becomes the next iteration's threshold.
The paper finds β = 0.1 best in the majority of cases, with accuracy
insensitive to β away from the extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core import PegasusConfig, summarize
from repro.eval import evaluate_query_accuracy, sample_query_nodes
from repro.experiments.common import ExperimentScale, sweep
from repro.graph import load_dataset

BETAS = (0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9)


def _beta_point(shared, point):
    """Summarize and evaluate one (ratio, β, dataset) point."""
    per_dataset, scale, query_types, alpha = shared
    ratio, beta, name = point
    graph, queries = per_dataset[name]
    config = PegasusConfig(alpha=alpha, beta=beta, t_max=scale.t_max, seed=scale.seed)
    summary = summarize(graph, targets=queries, compression_ratio=ratio, config=config).summary
    accuracy = evaluate_query_accuracy(graph, summary, queries, query_types=tuple(query_types))
    return {qt: (result.smape, result.spearman) for qt, result in accuracy.items()}


@dataclass
class BetaRow:
    """One bar of Fig. 11, averaged over datasets."""

    beta: float
    ratio: float
    query_type: str
    smape: float
    spearman: float


def run(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida"),
    betas: Sequence[float] = BETAS,
    ratios: Sequence[float] = (0.3, 0.5),
    query_types: Sequence[str] = ("rwr", "hop", "php"),
    alpha: float = 1.25,
    scale: "ExperimentScale | None" = None,
    workers: "int | None" = None,
) -> List[BetaRow]:
    """Sweep β; rows are averaged over the datasets as in Fig. 11.

    The (ratio, β, dataset) points fan out over *workers* processes
    (default: ``scale.workers``); rows are identical at any worker count.
    """
    scale = scale or ExperimentScale.from_env()
    workers = scale.workers if workers is None else workers
    per_dataset = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        per_dataset[name] = (graph, queries)
    points = [(ratio, beta, name) for ratio in ratios for beta in betas for name in datasets]
    results = sweep(
        _beta_point,
        points,
        workers=workers,
        shared=(per_dataset, scale, tuple(query_types), alpha),
    )
    by_point = dict(zip(points, results))
    rows: List[BetaRow] = []
    for ratio in ratios:
        for beta in betas:
            metrics = {qt: ([], []) for qt in query_types}
            for name in datasets:
                for qt, (smape, spearman) in by_point[(ratio, beta, name)].items():
                    metrics[qt][0].append(smape)
                    metrics[qt][1].append(spearman)
            for qt, (smapes, spearmans) in metrics.items():
                rows.append(
                    BetaRow(
                        beta=beta,
                        ratio=ratio,
                        query_type=qt,
                        smape=float(np.mean(smapes)),
                        spearman=float(np.mean(spearmans)),
                    )
                )
    return rows
