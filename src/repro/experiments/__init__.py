"""Experiment drivers: one module per table/figure of the paper.

Each driver builds its workload from the synthetic dataset stand-ins,
runs the methods under comparison, and returns plain result rows; the
``benchmarks/`` suite prints them in the paper's format and asserts the
qualitative shape.  Scales are controlled by
:class:`repro.experiments.common.ExperimentScale` (env var ``REPRO_SCALE``)
so the same code runs as a quick smoke or a fuller sweep.
"""

from repro.experiments.common import ExperimentScale, build_summary_for_method, METHODS, sweep

__all__ = ["ExperimentScale", "build_summary_for_method", "METHODS", "sweep"]
