"""Fig. 7 (and the PHP companion from the online appendix) — query accuracy
of PeGaSus against the non-personalized state of the art.

Protocol (Sect. V-D): sample 100 query nodes uniformly at random, use them
as the target set for PeGaSus, summarize with every method across the
compression-ratio sweep, and report SMAPE and Spearman correlation of the
approximate answers per query type.  Baselines that exceed their time
budgets on larger datasets are reported as ``o.o.t`` exactly like the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError
from repro.eval import evaluate_query_accuracy, sample_query_nodes
from repro.experiments.common import ExperimentScale, MethodSkipped, METHODS, build_summary_for_method
from repro.graph import load_dataset


@dataclass
class AccuracyRow:
    """One point of one curve in Fig. 7."""

    dataset: str
    method: str
    requested_ratio: float
    achieved_ratio: float
    query_type: str
    smape: float
    spearman: float
    skipped: bool = False


def run(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida", "dblp"),
    ratios: Sequence[float] = (0.3, 0.5, 0.7),
    methods: Sequence[str] = METHODS,
    query_types: Sequence[str] = ("rwr", "hop", "php"),
    alpha: float = 1.25,
    scale: "ExperimentScale | None" = None,
) -> List[AccuracyRow]:
    """Run the accuracy sweep; returns one row per
    (dataset, method, ratio, query type), with ``skipped=True`` rows for
    o.o.t baselines."""
    scale = scale or ExperimentScale.from_env()
    rows: List[AccuracyRow] = []
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        for ratio in ratios:
            for method in methods:
                try:
                    summary, achieved, _elapsed = build_summary_for_method(
                        method,
                        graph,
                        ratio,
                        targets=queries,
                        alpha=alpha,
                        t_max=scale.t_max,
                        seed=scale.seed,
                    )
                except MethodSkipped:
                    rows.extend(
                        AccuracyRow(name, method, ratio, float("nan"), qt, float("nan"), float("nan"), True)
                        for qt in query_types
                    )
                    continue
                accuracy = evaluate_query_accuracy(
                    graph, summary, queries, query_types=tuple(query_types)
                )
                for query_type, result in accuracy.items():
                    rows.append(
                        AccuracyRow(
                            dataset=name,
                            method=method,
                            requested_ratio=ratio,
                            achieved_ratio=achieved,
                            query_type=query_type,
                            smape=result.smape,
                            spearman=result.spearman,
                        )
                    )
    return rows


def mean_over(rows: Sequence[AccuracyRow], *, method: str, query_type: str, metric: str) -> float:
    """Average a metric over all non-skipped rows of one method/query type."""
    values = [
        getattr(row, metric)
        for row in rows
        if row.method == method and row.query_type == query_type and not row.skipped
    ]
    if not values:
        raise ReproError(f"no rows for method={method}, query_type={query_type}")
    return sum(values) / len(values)
