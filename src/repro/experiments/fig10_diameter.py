"""Fig. 10 — the best-performing α vs the effective diameter.

Protocol (Sect. V-E): Watts–Strogatz graphs of fixed size whose rewiring
probability sweeps the 90-percentile effective diameter across an order of
magnitude; targets/queries are 100 BFS-adjacent nodes from a random start
(personalization to *distant* nodes is impossible on large-diameter
graphs, so adjacent targets isolate the α effect).  The paper's finding:
the best α *decreases* as the effective diameter grows, because large α
understates the weight of the (many) far-away edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core import PegasusConfig, summarize
from repro.eval import evaluate_query_accuracy
from repro.experiments.common import ExperimentScale
from repro.graph import watts_strogatz
from repro.graph.traversal import bfs_distances, effective_diameter

REWIRE_PROBABILITIES = (0.0, 0.0001, 0.001, 0.01, 0.1)


@dataclass
class DiameterRow:
    """One (p, α) cell behind Fig. 10."""

    rewire_probability: float
    effective_diameter: float
    alpha: float
    query_type: str
    smape: float
    spearman: float


def _bfs_adjacent_targets(graph, count: int, rng: np.random.Generator) -> np.ndarray:
    start = int(rng.integers(0, graph.num_nodes))
    dist = bfs_distances(graph, start)
    reachable = np.flatnonzero(dist >= 0)
    order = reachable[np.argsort(dist[reachable], kind="stable")]
    return order[: min(count, order.size)]


def run(
    *,
    rewire_probabilities: Sequence[float] = REWIRE_PROBABILITIES,
    alphas: Sequence[float] = (1.05, 1.25, 1.5, 1.75),
    num_nodes: int = 400,
    neighbors_each_side: int = 5,
    num_targets: int = 40,
    ratio: float = 0.3,
    query_types: Sequence[str] = ("rwr", "hop"),
    scale: "ExperimentScale | None" = None,
) -> List[DiameterRow]:
    """Sweep (rewiring probability × α); returns all accuracy cells."""
    scale = scale or ExperimentScale.from_env()
    rng = np.random.default_rng(scale.seed)
    rows: List[DiameterRow] = []
    for p in rewire_probabilities:
        graph = watts_strogatz(num_nodes, neighbors_each_side, p, seed=scale.seed)
        diameter = effective_diameter(graph, seed=scale.seed)
        targets = _bfs_adjacent_targets(graph, num_targets, rng)
        queries = targets[: scale.num_queries]
        for alpha in alphas:
            config = PegasusConfig(alpha=alpha, t_max=scale.t_max, seed=scale.seed)
            summary = summarize(
                graph, targets=targets, compression_ratio=ratio, config=config
            ).summary
            accuracy = evaluate_query_accuracy(
                graph, summary, queries, query_types=tuple(query_types)
            )
            for qt, result in accuracy.items():
                rows.append(
                    DiameterRow(
                        rewire_probability=p,
                        effective_diameter=diameter,
                        alpha=alpha,
                        query_type=qt,
                        smape=result.smape,
                        spearman=result.spearman,
                    )
                )
    return rows


def best_alpha_per_probability(rows: Sequence[DiameterRow], *, query_type: str) -> List[tuple]:
    """(effective diameter, best α) pairs — the Fig. 10 scatter."""
    pairs = []
    for p in sorted({row.rewire_probability for row in rows}):
        candidates = [r for r in rows if r.rewire_probability == p and r.query_type == query_type]
        if not candidates:
            continue
        best = min(candidates, key=lambda r: r.smape)
        pairs.append((best.effective_diameter, best.alpha))
    return pairs
