"""Ablations the paper calls out in Sect. III.

* **Merge criterion** (Sect. III-B, online appendix): the relative cost
  reduction (Eq. 11) vs the absolute reduction (Eq. 10).  The paper argues
  the absolute criterion myopically merges distant, dissimilar nodes in
  personalized settings; queries from the relative variant's summaries
  should be at least as accurate.
* **Threshold schedule** (Sect. III-G): PeGaSus' adaptive θ vs SSumM's
  fixed ``1/(1+t)`` schedule, with everything else equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core import PegasusConfig, PersonalizedWeights, personalized_error, summarize
from repro.eval import evaluate_query_accuracy, sample_query_nodes
from repro.experiments.common import ExperimentScale
from repro.graph import load_dataset


@dataclass
class AblationRow:
    """One (dataset, variant) comparison cell."""

    dataset: str
    variant: str
    ratio: float
    smape_rwr: float
    spearman_rwr: float
    personalized_error: float


def _evaluate(graph, queries, summary, weights) -> tuple:
    accuracy = evaluate_query_accuracy(graph, summary, queries, query_types=("rwr",))
    return (
        accuracy["rwr"].smape,
        accuracy["rwr"].spearman,
        personalized_error(summary, weights),
    )


def run_cost_criterion(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida"),
    ratio: float = 0.5,
    alpha: float = 1.5,
    scale: "ExperimentScale | None" = None,
) -> List[AblationRow]:
    """Relative (Eq. 11) vs absolute (Eq. 10) merge criterion."""
    scale = scale or ExperimentScale.from_env()
    rows: List[AblationRow] = []
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        weights = PersonalizedWeights(graph, queries, alpha=alpha)
        for objective in ("relative", "absolute"):
            config = PegasusConfig(
                alpha=alpha, objective=objective, t_max=scale.t_max, seed=scale.seed
            )
            summary = summarize(
                graph, compression_ratio=ratio, weights=weights, config=config
            ).summary
            smape, spearman, error = _evaluate(graph, queries, summary, weights)
            rows.append(AblationRow(name, objective, ratio, smape, spearman, error))
    return rows


def run_threshold_schedule(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida"),
    ratio: float = 0.5,
    alpha: float = 1.25,
    scale: "ExperimentScale | None" = None,
) -> List[AblationRow]:
    """Adaptive θ (PeGaSus) vs fixed 1/(1+t) schedule (SSumM)."""
    scale = scale or ExperimentScale.from_env()
    rows: List[AblationRow] = []
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        weights = PersonalizedWeights(graph, queries, alpha=alpha)
        for threshold in ("adaptive", "fixed"):
            config = PegasusConfig(
                alpha=alpha, threshold=threshold, t_max=scale.t_max, seed=scale.seed
            )
            summary = summarize(
                graph, compression_ratio=ratio, weights=weights, config=config
            ).summary
            smape, spearman, error = _evaluate(graph, queries, summary, weights)
            rows.append(AblationRow(name, threshold, ratio, smape, spearman, error))
    return rows


def mean_by_variant(rows: Sequence[AblationRow], metric: str) -> dict:
    """Average one metric per variant."""
    result = {}
    for variant in sorted({row.variant for row in rows}):
        values = [getattr(row, metric) for row in rows if row.variant == variant]
        result[variant] = float(np.mean(values))
    return result
