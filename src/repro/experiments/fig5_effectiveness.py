"""Fig. 5 — effectiveness of personalization.

Protocol (Sect. V-B): sample ``|T|`` target nodes uniformly at random,
summarize at compression ratio 0.5 with degree of personalization ``α``,
and measure the personalized error at each of three test nodes ``u ∈ T``
(Eq. 1 with ``T = {u}``) relative to the same measure on the
non-personalized summary (``T = V``).  Relative error < 1 means the
summary is focused on the targets; it shrinks as ``|T|`` shrinks and ``α``
grows.  SSumM serves as the non-personalized reference method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.baselines import ssumm_summarize
from repro.core import PegasusConfig, PersonalizedWeights, personalized_error, summarize
from repro.experiments.common import ExperimentScale, sweep
from repro.graph import load_dataset

#: |T| specifications of Fig. 5: one node, then fractions of |V|.
TARGET_SPECS = (("1", None), ("0.01|V|", 0.01), ("0.1|V|", 0.1), ("0.3|V|", 0.3), ("0.5|V|", 0.5), ("|V|", 1.0))


def _reference_point(shared, point):
    """Build one dataset's non-personalized reference summary."""
    graphs, scale, ratio = shared
    kind, name = point
    graph = graphs[name]
    if kind == "pegasus":
        return summarize(
            graph, compression_ratio=ratio, config=PegasusConfig(t_max=scale.t_max, seed=scale.seed)
        ).summary
    return ssumm_summarize(graph, compression_ratio=ratio, t_max=scale.t_max, seed=scale.seed).summary


def _effectiveness_point(shared, point):
    """One (dataset, α, |T|) bar: personalized summary plus its error ratios."""
    graphs, references, scale, ratio, num_test_nodes = shared
    name, alpha, targets = point
    graph = graphs[name]
    reference, ssumm_reference = references[name]
    config = PegasusConfig(alpha=alpha, t_max=scale.t_max, seed=scale.seed)
    personalized = summarize(graph, targets=targets, compression_ratio=ratio, config=config).summary
    test_nodes = targets[: min(num_test_nodes, targets.size)]
    ratios, ssumm_ratios = [], []
    for u in test_nodes:
        eval_weights = PersonalizedWeights(graph, [int(u)], alpha=alpha)
        denom = personalized_error(reference, eval_weights)
        if denom == 0.0:
            continue
        ratios.append(personalized_error(personalized, eval_weights) / denom)
        ssumm_ratios.append(personalized_error(ssumm_reference, eval_weights) / denom)
    return (
        float(np.mean(ratios)) if ratios else 1.0,
        float(np.mean(ssumm_ratios)) if ssumm_ratios else 1.0,
    )


@dataclass
class EffectivenessRow:
    """One bar of Fig. 5."""

    dataset: str
    alpha: float
    target_spec: str
    relative_error: float
    ssumm_relative_error: float


def _target_count(spec_fraction: "float | None", num_nodes: int) -> int:
    if spec_fraction is None:
        return 1
    return max(int(round(spec_fraction * num_nodes)), 1)


def run(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida", "dblp"),
    alphas: Sequence[float] = (1.25, 1.5, 1.75),
    target_specs=TARGET_SPECS,
    ratio: float = 0.5,
    num_test_nodes: int = 3,
    scale: "ExperimentScale | None" = None,
    workers: "int | None" = None,
) -> List[EffectivenessRow]:
    """Run the Fig. 5 sweep and return one row per (dataset, α, |T|).

    Two parallel waves over *workers* processes (default:
    ``scale.workers``): the per-dataset reference summaries, then the
    (dataset, α, |T|) bars.  All target sampling happens up front on one
    RNG in the sequential visit order, so rows are identical at any
    worker count.
    """
    scale = scale or ExperimentScale.from_env()
    workers = scale.workers if workers is None else workers
    rng = np.random.default_rng(scale.seed)
    graphs = {
        name: load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        for name in datasets
    }
    points = []
    for name in datasets:
        for alpha in alphas:
            for spec_name, spec_fraction in target_specs:
                count = _target_count(spec_fraction, graphs[name].num_nodes)
                targets = rng.choice(graphs[name].num_nodes, size=count, replace=False)
                points.append((name, alpha, spec_name, targets))

    reference_points = [(kind, name) for name in datasets for kind in ("pegasus", "ssumm")]
    reference_summaries = sweep(
        _reference_point, reference_points, workers=workers, shared=(graphs, scale, ratio)
    )
    references = {
        name: (reference_summaries[2 * i], reference_summaries[2 * i + 1])
        for i, name in enumerate(datasets)
    }
    results = sweep(
        _effectiveness_point,
        [(name, alpha, targets) for name, alpha, _spec, targets in points],
        workers=workers,
        shared=(graphs, references, scale, ratio, num_test_nodes),
    )
    return [
        EffectivenessRow(
            dataset=name,
            alpha=alpha,
            target_spec=spec_name,
            relative_error=relative,
            ssumm_relative_error=ssumm_relative,
        )
        for (name, alpha, spec_name, _targets), (relative, ssumm_relative) in zip(points, results)
    ]
