"""Fig. 8 — summarization time and query time per method.

Protocol (Sect. V-D): at compression ratio 0.5, time (a) summarization per
dataset per method, and (b) BFS (HOP) and RWR query processing on the
resulting summaries.  The paper's point is that PeGaSus summaries are
*sparse* (selective superedge addition), so queries run fast, while the
dense weighted summaries of SAAGs/S2L/k-Grass are slow to query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.eval import sample_query_nodes
from repro.experiments.common import (
    ExperimentScale,
    MethodSkipped,
    METHODS,
    build_summary_for_method,
    sweep,
)
from repro.graph import load_dataset
from repro.queries import ReconstructedOperator, rwr_scores
from repro.queries.hop import hop_distances_reference


@dataclass
class RuntimeRow:
    """One (dataset, method) group of Fig. 8's three panels."""

    dataset: str
    method: str
    summarize_seconds: float
    bfs_query_seconds: float
    rwr_query_seconds: float
    superedges: int
    skipped: bool = False


def _runtime_point(shared, point) -> RuntimeRow:
    """Build and time one (dataset, method) group (runs in a pool worker)."""
    per_dataset, ratio, scale, backend, cost_cache, engine = shared
    name, method = point
    graph, queries = per_dataset[name]
    try:
        summary, _achieved, build_time = build_summary_for_method(
            method,
            graph,
            ratio,
            targets=queries,
            t_max=scale.t_max,
            seed=scale.seed,
            backend=backend,
            cost_cache=cost_cache,
            engine=engine,
        )
    except MethodSkipped:
        return RuntimeRow(name, method, float("nan"), float("nan"), float("nan"), 0, True)
    # Fig. 8(b) times the getNeighbors-driven BFS (Alg. 5): dense
    # weighted summaries materialize huge neighborhoods and pay it.
    started = time.perf_counter()
    for q in queries:
        hop_distances_reference(summary, int(q))
    bfs_time = time.perf_counter() - started
    operator = ReconstructedOperator(summary)
    started = time.perf_counter()
    for q in queries:
        rwr_scores(summary, int(q), operator=operator)
    rwr_time = time.perf_counter() - started
    return RuntimeRow(
        dataset=name,
        method=method,
        summarize_seconds=build_time,
        bfs_query_seconds=bfs_time,
        rwr_query_seconds=rwr_time,
        superedges=summary.num_superedges,
    )


def run(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida", "dblp", "synthetic_ba"),
    methods: Sequence[str] = METHODS,
    ratio: float = 0.5,
    scale: "ExperimentScale | None" = None,
    backend: str = "flat",
    cost_cache: str = "incremental",
    engine: str = "batch",
    workers: "int | None" = None,
) -> List[RuntimeRow]:
    """Time summarization plus HOP/RWR query answering per method.

    *backend* / *cost_cache* / *engine* select the merge engine for PeGaSus and SSumM
    (see :mod:`repro.core.summary` / :mod:`repro.core.costs`); the bench
    wrapper exposes them as its ``--backend`` axis.  The (dataset, method)
    groups are independent and fan out over *workers* processes (default:
    ``scale.workers``); note per-group timings measure the group's own
    work, but on a saturated pool they contend for cores, so cross-method
    timing comparisons are sharpest at ``workers=1``.
    """
    scale = scale or ExperimentScale.from_env()
    workers = scale.workers if workers is None else workers
    per_dataset = {}
    for name in datasets:
        graph = load_dataset(name, scale=scale.dataset_scale, seed=scale.seed).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        per_dataset[name] = (graph, queries)
    points = [(name, method) for name in datasets for method in methods]
    return sweep(
        _runtime_point,
        points,
        workers=workers,
        shared=(per_dataset, ratio, scale, backend, cost_cache, engine),
    )
