"""Fig. 6 (and Fig. 2b) — linear scalability of PeGaSus.

Protocol (Sect. V-C): induce subgraphs by sampling 10%–100% of the nodes
of a large graph, run PeGaSus on each with ``|T| = 100`` and
``|T| = |V|/2``, and check that runtime grows linearly in the edge count
(log-log slope ≈ 1).  The paper uses Skitter and a billion-edge BA graph;
we use the Skitter stand-in and a BA graph whose size is set by the scale
preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core import PegasusConfig, summarize
from repro.experiments.common import ExperimentScale, sweep
from repro.graph import barabasi_albert, load_dataset
from repro.graph.traversal import largest_connected_component


@dataclass
class ScalabilityRow:
    """One point of the Fig. 6 log-log plot."""

    graph_name: str
    target_mode: str
    num_nodes: int
    num_edges: int
    elapsed_seconds: float


def fit_loglog_slope(rows: Sequence[ScalabilityRow]) -> float:
    """Least-squares slope of log(time) against log(|E|)."""
    if len(rows) < 2:
        return float("nan")
    x = np.log([row.num_edges for row in rows])
    y = np.log([max(row.elapsed_seconds, 1e-9) for row in rows])
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def _scalability_point(shared, point):
    """Time one (subgraph, targets) summarization (runs in a pool worker)."""
    ratio = shared
    subgraph, targets, config = point
    return summarize(subgraph, targets=targets, compression_ratio=ratio, config=config).elapsed_seconds


def run(
    *,
    node_fractions: Sequence[float] = (0.4, 0.55, 0.7, 0.85, 1.0),
    target_modes: Sequence[str] = ("100", "|V|/2"),
    ratio: float = 0.5,
    base_nodes: "int | None" = None,
    scale: "ExperimentScale | None" = None,
    backend: str = "flat",
    cost_cache: str = "incremental",
    engine: str = "batch",
    workers: "int | None" = None,
) -> List[ScalabilityRow]:
    """Run the scalability sweep; returns one row per (graph, |T|, fraction).

    *backend* / *cost_cache* / *engine* select the merge engine (the bench wrapper's
    ``--backend`` axis); the timing shape is the point, so the same seed is
    used for every engine and the summaries are identical across backends.
    All subgraph/target sampling happens while planning the point list, so
    fanning the summarizations out over *workers* processes (default:
    ``scale.workers``) changes only the wall clock, not the workload.
    """
    scale = scale or ExperimentScale.from_env()
    workers = scale.workers if workers is None else workers
    rng = np.random.default_rng(scale.seed)
    graphs: List[Tuple[str, object]] = []
    skitter = load_dataset("skitter", scale=scale.dataset_scale * 2, seed=scale.seed).graph
    graphs.append(("skitter", skitter))
    ba_nodes = base_nodes or max(int(3000 * scale.dataset_scale * 2), 500)
    graphs.append(("synthetic_ba", barabasi_albert(ba_nodes, 5, seed=scale.seed)))

    labels: List[Tuple[str, str, int, int]] = []
    points = []
    for graph_name, graph in graphs:
        for fraction in node_fractions:
            count = max(int(fraction * graph.num_nodes), 10)
            sampled = rng.choice(graph.num_nodes, size=count, replace=False)
            subgraph, _ = graph.induced_subgraph(sampled)
            subgraph, _ = largest_connected_component(subgraph)
            if subgraph.num_nodes < 10 or subgraph.num_edges < 10:
                continue
            for mode in target_modes:
                if mode == "100":
                    size = min(100, subgraph.num_nodes)
                else:
                    size = max(subgraph.num_nodes // 2, 1)
                targets = rng.choice(subgraph.num_nodes, size=size, replace=False)
                config = PegasusConfig(
                    t_max=scale.t_max,
                    seed=scale.seed,
                    backend=backend,
                    cost_cache=cost_cache,
                    engine=engine,
                )
                labels.append((graph_name, mode, subgraph.num_nodes, subgraph.num_edges))
                points.append((subgraph, targets, config))

    timings = sweep(_scalability_point, points, workers=workers, shared=ratio)
    return [
        ScalabilityRow(
            graph_name=graph_name,
            target_mode=mode,
            num_nodes=num_nodes,
            num_edges=num_edges,
            elapsed_seconds=elapsed,
        )
        for (graph_name, mode, num_nodes, num_edges), elapsed in zip(labels, timings)
    ]
