"""Fig. 12 (and Fig. 2c) — communication-free distributed multi-query
answering.

Protocol (Sect. V-F): ``m`` machines, per-machine memory ``k`` set by the
compression ratio.  The PeGaSus rows follow Alg. 3 (Louvain parts, one
summary personalized per part); the SSumM row loads the same
non-personalized summary on every machine; the partitioning rows
distribute budgeted subgraphs built from BLP / SHP-I / SHP-II / SHP-KL /
Louvain parts.  Every query is routed to the machine owning its node and
answered without communication (asserted on every cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import ssumm_summarize
from repro.core import PegasusConfig
from repro.distributed import build_subgraph_cluster, build_summary_cluster
from repro.distributed.cluster import DistributedCluster, Machine
from repro.eval import evaluate_query_accuracy, sample_query_nodes
from repro.experiments.common import ExperimentScale, sweep
from repro.graph import load_dataset
from repro.partitioning import blp_partition, louvain_partition, shp_partition

DISTRIBUTED_METHODS = ("pegasus", "ssumm", "blp", "shp1", "shp2", "shpkl", "louvain")


@dataclass
class DistributedRow:
    """One point of one curve in Fig. 12."""

    dataset: str
    method: str
    ratio: float
    query_type: str
    smape: float
    spearman: float


def _partitioner(method: str, seed: int):
    if method == "blp":
        return lambda g, m: blp_partition(g, m, seed=seed)
    if method in ("shp1", "shp2", "shpkl"):
        return lambda g, m: shp_partition(g, m, variant=method, seed=seed)
    return lambda g, m: louvain_partition(g, m, seed=seed)


def _build_cluster(method, graph, num_machines, budget, assignment, scale) -> DistributedCluster:
    if method == "pegasus":
        return build_summary_cluster(
            graph,
            num_machines,
            budget,
            assignment=assignment,
            config=PegasusConfig(t_max=scale.t_max, seed=scale.seed),
        )
    if method == "ssumm":
        result = ssumm_summarize(graph, budget_bits=budget, t_max=scale.t_max, seed=scale.seed)
        machines = [
            Machine(i, np.flatnonzero(assignment == i), result.summary, result.summary.size_in_bits())
            for i in range(num_machines)
        ]
        return DistributedCluster(graph, machines)
    partitioner = _partitioner(method, scale.seed)
    part_assignment = partitioner(graph, num_machines)
    return build_subgraph_cluster(
        graph, num_machines, budget, assignment=part_assignment, seed=scale.seed
    )


def _distributed_point(shared, point):
    """Build one (dataset, ratio, method) cluster and evaluate its queries.

    Runs in a pool worker; the whole cluster build + routed answering of
    one curve point is self-contained, so points parallelize without any
    cross-point state.  Returns the per-query-type accuracy pairs.
    """
    per_dataset, machines, scale, query_types = shared
    name, ratio, method = point
    graph, queries, louvain_assignment = per_dataset[name]
    budget = ratio * graph.size_in_bits()
    cluster = _build_cluster(method, graph, machines, budget, louvain_assignment, scale)
    accuracy = evaluate_query_accuracy(
        graph,
        None,
        queries,
        query_types=tuple(query_types),
        answer_on=lambda q, t, c=cluster: c.answer(q, t),
    )
    cluster.assert_communication_free()
    return {qt: (result.smape, result.spearman) for qt, result in accuracy.items()}


def run(
    *,
    datasets: Sequence[str] = ("lastfm_asia", "caida"),
    ratios: Sequence[float] = (0.3, 0.5),
    methods: Sequence[str] = DISTRIBUTED_METHODS,
    query_types: Sequence[str] = ("rwr", "hop"),
    dataset_scale_multiplier: float = 2.0,
    num_machines: "int | None" = None,
    scale: "ExperimentScale | None" = None,
    workers: "int | None" = None,
) -> List[DistributedRow]:
    """Run the distributed comparison; returns one row per
    (dataset, method, ratio, query type).

    The distributed setting needs larger graphs than the single-summary
    experiments — with tiny parts, part-personalization degenerates into
    the uniform setting — hence the dataset-scale multiplier and the
    paper's 8 machines by default.

    The (dataset, ratio, method) curve points are independent and fan out
    over *workers* processes (default: ``scale.workers``); every point
    still asserts communication-free answering, and rows are identical at
    any worker count.
    """
    scale = scale or ExperimentScale.from_env()
    workers = scale.workers if workers is None else workers
    machines = num_machines if num_machines is not None else max(scale.num_machines, 8)
    per_dataset = {}
    for name in datasets:
        graph = load_dataset(
            name, scale=scale.dataset_scale * dataset_scale_multiplier, seed=scale.seed
        ).graph
        queries = sample_query_nodes(graph, scale.num_queries, seed=scale.seed)
        # The summary rows route by the Alg. 3 Louvain parts.
        louvain_assignment = louvain_partition(graph, machines, seed=scale.seed)
        per_dataset[name] = (graph, queries, louvain_assignment)
    points = [(name, ratio, method) for name in datasets for ratio in ratios for method in methods]
    results = sweep(
        _distributed_point,
        points,
        workers=workers,
        shared=(per_dataset, machines, scale, tuple(query_types)),
    )
    rows: List[DistributedRow] = []
    for (name, ratio, method), accuracy in zip(points, results):
        for qt in query_types:
            smape, spearman = accuracy[qt]
            rows.append(
                DistributedRow(
                    dataset=name,
                    method=method,
                    ratio=ratio,
                    query_type=qt,
                    smape=smape,
                    spearman=spearman,
                )
            )
    return rows


def mean_metric(rows: Sequence[DistributedRow], *, method: str, query_type: str, metric: str) -> float:
    """Average one metric over all rows of a method/query type."""
    values = [
        getattr(row, metric)
        for row in rows
        if row.method == method and row.query_type == query_type
    ]
    return float(np.mean(values)) if values else float("nan")
