"""Circuit breakers: closed / open / half-open with failure-rate windows.

A :class:`CircuitBreaker` watches a rolling window of outcomes for one
resource (a worker lane, a tenant's deadline budget).  While **closed**
it admits everything; once the window holds enough samples and the
failure rate crosses the threshold it **opens** and rejects for a
cooldown; after the cooldown it goes **half-open**, admitting a limited
number of probes — a probe success closes it, a probe failure re-opens
it with a fresh cooldown.

Rejection is always *explicit*: callers that find a breaker open raise
typed :class:`~repro.errors.CircuitOpen` / :class:`~repro.errors.Overloaded`
errors carrying the breaker's ``retry_after_ms`` hint, never a silently
wrong (or silently dropped) answer.

:class:`BreakerBoard` is a keyed family of breakers sharing one config,
with optional obs-registry export: a ``repro_breaker_state`` one-hot
gauge per (scope, key, state) plus open/shed counters.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

STATES = (CLOSED, OPEN, HALF_OPEN)


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for one breaker family.

    ``window`` outcomes are kept; the breaker opens when at least
    ``min_samples`` of them exist and the failure fraction reaches
    ``failure_threshold``.  An open breaker rejects for ``open_ms``,
    then admits ``half_open_probes`` trial calls.
    """

    window: int = 20
    failure_threshold: float = 0.5
    min_samples: int = 5
    open_ms: float = 1000.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.open_ms < 0:
            raise ValueError(f"open_ms must be >= 0, got {self.open_ms}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """One breaker.  Not thread-safe; lives on the serving event loop.

    *clock* is injectable (defaults to :func:`time.monotonic`) so state
    transitions are testable without sleeping.
    """

    def __init__(
        self,
        config: "BreakerConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: "Callable[[str, str], None] | None" = None,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._on_transition = on_transition
        self._outcomes: "deque[bool]" = deque(maxlen=self.config.window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_left = 0
        self.opens = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` on cooldown."""
        if self._state == OPEN and self._cooldown_over():
            self._transition(HALF_OPEN)
            self._probes_left = self.config.half_open_probes
        return self._state

    def _cooldown_over(self) -> bool:
        return (self._clock() - self._opened_at) * 1000.0 >= self.config.open_ms

    def _transition(self, state: str) -> None:
        previous, self._state = self._state, state
        if state == OPEN:
            self._opened_at = self._clock()
            self.opens += 1
        if previous != state and self._on_transition is not None:
            self._on_transition(previous, state)

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    # ------------------------------------------------------------------
    # protocol: allow() before the call, record_*() after
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now (consumes a half-open probe)."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._probes_left > 0:
            self._probes_left -= 1
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        """Note a successful call; a half-open success closes the breaker."""
        self._outcomes.append(True)
        if self._state == HALF_OPEN:
            self._outcomes.clear()
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """Note a failed call; may open (or re-open) the breaker."""
        self._outcomes.append(False)
        if self._state == HALF_OPEN:
            self._transition(OPEN)
            return
        if (
            self._state == CLOSED
            and len(self._outcomes) >= self.config.min_samples
            and self._failure_rate() >= self.config.failure_threshold
        ):
            self._transition(OPEN)

    def retry_after_ms(self) -> float:
        """Remaining cooldown hint for rejected callers (0 when admitting)."""
        if self.state != OPEN:
            return 0.0
        elapsed_ms = (self._clock() - self._opened_at) * 1000.0
        return max(0.0, self.config.open_ms - elapsed_ms)

    def snapshot(self) -> dict:
        """State + counters for health endpoints and tests."""
        return {
            "state": self.state,
            "failure_rate": round(self._failure_rate(), 4),
            "samples": len(self._outcomes),
            "opens": self.opens,
            "rejections": self.rejections,
            "retry_after_ms": round(self.retry_after_ms(), 3),
        }


class BreakerBoard:
    """A keyed family of breakers sharing one config and obs scope.

    ``scope`` labels the exported gauges (``"lane"``, ``"tenant"``);
    breakers are created lazily per key.  When an obs registry is
    attached, every transition updates the one-hot
    ``repro_breaker_state{scope,key,state}`` gauge family and bumps
    ``repro_breaker_opens_total`` on close → open.
    """

    def __init__(
        self,
        scope: str,
        config: "BreakerConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ):
        self.scope = scope
        self.config = config or BreakerConfig()
        self._clock = clock
        self._metrics = metrics
        self._breakers: "Dict[str, CircuitBreaker]" = {}

    def get(self, key: "str | int") -> CircuitBreaker:
        """The breaker for *key*, created closed on first use."""
        name = str(key)
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config,
                clock=self._clock,
                on_transition=self._exporter(name),
            )
            self._breakers[name] = breaker
            self._export_state(name, breaker.state)
        return breaker

    def _exporter(self, name: str) -> "Optional[Callable[[str, str], None]]":
        if self._metrics is None:
            return None

        def on_transition(previous: str, state: str) -> None:
            self._export_state(name, state)
            if state == OPEN:
                self._metrics.counter(
                    "repro_breaker_opens_total",
                    "Circuit breaker close/half-open -> open transitions.",
                    scope=self.scope,
                    key=name,
                ).inc()

        return on_transition

    def _export_state(self, name: str, state: str) -> None:
        if self._metrics is None:
            return
        self._metrics.enum_gauge(
            "repro_breaker_state",
            "Circuit breaker state (one-hot over closed/open/half_open).",
            state=state,
            states=STATES,
            scope=self.scope,
            key=name,
        )

    def allow(self, key: "str | int") -> bool:
        """Shorthand for ``get(key).allow()``."""
        return self.get(key).allow()

    def snapshot(self) -> dict:
        """Per-key breaker snapshots (insertion order)."""
        return {name: breaker.snapshot() for name, breaker in self._breakers.items()}
