"""Resilience layer: deadlines, retry policies, breakers, supervision, recovery.

Four small modules, each owning one failure domain of the serving stack:

* :mod:`repro.resilience.policy` — :class:`Deadline` budgets (minted at
  network ingress, propagated into worker batch payloads) and
  :class:`RetryPolicy` (capped exponential backoff with seeded,
  deterministic jitter) shared by client reconnects and server
  redispatch.
* :mod:`repro.resilience.breaker` — closed/open/half-open circuit
  breakers with failure-rate windows, per lane and per tenant.
* :mod:`repro.resilience.health` — a lane supervisor that heartbeats
  worker pids and proactively respawns unhealthy lanes (optionally from
  a warm standby), exporting ``repro_lane_state`` gauges.
* :mod:`repro.resilience.recovery` — whole-server crash-restart:
  persist tenant serving state under ``--state-dir`` with the store
  layer's crash-atomic discipline, verify + replay + rebuild on restart.
"""

from repro.resilience.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.resilience.health import LaneSupervisor
from repro.resilience.policy import Deadline, RetryPolicy
from repro.resilience.recovery import (
    HostState,
    RecoveredTenant,
    doctor_report,
    recover_host,
)

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "Deadline",
    "HostState",
    "LaneSupervisor",
    "RecoveredTenant",
    "RetryPolicy",
    "doctor_report",
    "recover_host",
]
