"""Whole-server crash-restart: persist tenant serving state, rebuild it.

A server started with ``--state-dir`` owns one :class:`HostState`:

.. code-block:: text

    state_dir/
      MANIFEST.json                 CRC-stamped index of every tenant
      tenants/<name>/
        graph.store                 base graph CSR (static tenants)
        routing.store               node -> machine assignment
        machine-0000.store          each machine's summary (columnar)
        delta/                      DeltaLog dir (streaming tenants)

Every file goes through the store layer's crash-atomic discipline
(temp + fsync + ``os.replace``, per-section CRC32), and the manifest is
rewritten the same way after every checkpoint, so a SIGKILL at any
instant leaves a recoverable directory: whatever manifest is visible
names only files that were fully durable when it was published.

:func:`recover_host` rebuilds byte-identical serving state: summaries
are memory-mapped back (the columnar record is the same export that
pins cross-backend query equivalence), the streaming
:class:`~repro.store.DeltaLog` is replayed, and each machine's residual
correction list is re-filtered from its durable cursor — the exact
computation :meth:`~repro.streaming.summarizer.StreamingSummarizer.residual_for`
performs incrementally, so recovered answers match an uninterrupted
server on the durable stream prefix.

:func:`doctor_report` is the read-only half: verify every checksum and
report recoverability without constructing a single serving object —
the ``repro doctor`` CLI.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.distributed.cluster import DistributedCluster, Machine
from repro.errors import GraphFormatError, RecoveryError
from repro.graph.graph import Graph
from repro.store import (
    DeltaLog,
    load_graph,
    load_summary_binary,
    open_store,
    save_graph,
    save_summary_binary,
    write_store,
)
from repro.streaming.residual import ResidualSource, uncovered_edges

MANIFEST_NAME = "MANIFEST.json"
ROUTING_KIND = "routing"

_MANIFEST_VERSION = 1


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _machine_file(machine_id: int) -> str:
    return f"machine-{machine_id:04d}.store"


@dataclass
class RecoveredTenant:
    """One tenant rebuilt from disk by :func:`recover_host`.

    ``cluster`` serves byte-identically to the crashed server's durable
    state; ``delta``/``log`` are the replayed stream (``None`` for
    static tenants), ``generation`` the base generation the crashed
    server had durably logged.
    """

    name: str
    cluster: DistributedCluster
    entry: dict
    delta: "object | None" = None
    log: "Optional[DeltaLog]" = None
    cursors: "Dict[int, int]" = field(default_factory=dict)

    @property
    def generation(self) -> "int | None":
        return self.log.generation if self.log is not None else None


class HostState:
    """The writable side: checkpoint tenant serving state under a dir."""

    def __init__(self, state_dir: "str | os.PathLike[str]"):
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self._manifest: dict = {"version": _MANIFEST_VERSION, "tenants": {}}
        path = self.manifest_path
        if os.path.exists(path):
            self._manifest = _load_manifest(path)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.state_dir, MANIFEST_NAME)

    @property
    def exists(self) -> bool:
        """Whether a manifest is already durable (restart vs. fresh start)."""
        return os.path.exists(self.manifest_path)

    @property
    def tenants(self) -> "List[str]":
        return sorted(self._manifest["tenants"])

    def tenant_dir(self, name: str) -> str:
        return os.path.join(self.state_dir, "tenants", name)

    def delta_dir(self, name: str) -> str:
        """Where a streaming tenant's :class:`DeltaLog` lives (pass as
        ``log_dir=`` when building the tenant's summarizer)."""
        return os.path.join(self.tenant_dir(name), "delta")

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def _flush_manifest(self) -> None:
        payload = self._manifest
        blob = _canonical(payload)
        record = {"crc32": zlib.crc32(blob), "payload": payload}
        directory = self.state_dir
        tmp = os.path.join(directory, "." + MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)

    def _save_routing(self, directory: str, num_nodes: int, machines: "List[Machine]") -> None:
        route = np.full(num_nodes, -1, dtype=np.int64)
        for machine in machines:
            route[machine.part_nodes] = machine.machine_id
        write_store(
            os.path.join(directory, "routing.store"),
            {"assignment": route},
            kind=ROUTING_KIND,
            meta={"num_nodes": num_nodes, "num_machines": len(machines)},
        )

    def _save_source(self, directory: str, machine: Machine) -> dict:
        """One machine's source to its store file; returns its manifest entry."""
        path = os.path.join(directory, _machine_file(machine.machine_id))
        source = machine.source
        if isinstance(source, ResidualSource):
            # Residual corrections are *derived* state: the summary plus
            # the delta log reproduce them exactly, so only the summary
            # is checkpointed.
            source = source.summary
        if isinstance(source, Graph):
            save_graph(source, path)
            kind = "graph"
        else:
            save_summary_binary(source, path, include_graph=False)
            kind = "summary"
        return {
            "id": machine.machine_id,
            "file": _machine_file(machine.machine_id),
            "kind": kind,
            "memory_bits": float(machine.memory_bits),
            "cursor": 0,
        }

    def save_static_tenant(self, name: str, cluster: DistributedCluster) -> dict:
        """Checkpoint a non-streaming tenant: graph + routing + summaries."""
        directory = self.tenant_dir(name)
        os.makedirs(directory, exist_ok=True)
        save_graph(cluster.graph, os.path.join(directory, "graph.store"))
        self._save_routing(directory, cluster.graph.num_nodes, cluster.machines)
        entries = [self._save_source(directory, machine) for machine in cluster.machines]
        record = {
            "kind": "static",
            "num_nodes": cluster.graph.num_nodes,
            "graph": "graph.store",
            "routing": "routing.store",
            "machines": entries,
            "delta_dir": None,
        }
        self._manifest["tenants"][name] = record
        self._flush_manifest()
        return record

    def save_streaming_tenant(self, name: str, summarizer) -> dict:
        """Checkpoint a streaming tenant's summaries + cursors.

        *summarizer* must have been built with ``log_dir=``
        :meth:`delta_dir` — the durable stream itself is the
        :class:`DeltaLog`'s job; this records each machine's base
        summary and the **global** stream offset it was built at, which
        is everything :func:`recover_host` needs to re-filter residuals.
        """
        log = summarizer.log
        if log is None:
            raise RecoveryError(
                f"tenant {name!r}: streaming checkpoints need a summarizer "
                f"with log_dir={self.delta_dir(name)!r}"
            )
        directory = self.tenant_dir(name)
        os.makedirs(directory, exist_ok=True)
        cluster = summarizer.cluster
        self._save_routing(directory, cluster.graph.num_nodes, cluster.machines)
        entries = []
        for machine in cluster.machines:
            state = summarizer._states[machine.machine_id]
            path = os.path.join(directory, _machine_file(machine.machine_id))
            save_summary_binary(state.summary, path, include_graph=False)
            entries.append(
                {
                    "id": machine.machine_id,
                    "file": _machine_file(machine.machine_id),
                    "kind": "summary",
                    "memory_bits": float(state.summary.size_in_bits()),
                    "cursor": log.global_offset(state.cursor),
                }
            )
        record = {
            "kind": "streaming",
            "num_nodes": cluster.graph.num_nodes,
            "graph": None,
            "routing": "routing.store",
            "machines": entries,
            "delta_dir": "delta",
        }
        self._manifest["tenants"][name] = record
        self._flush_manifest()
        return record

    def checkpoint_machine(self, name: str, machine_id: int, summary, cursor: int) -> None:
        """Re-persist one machine after a refresh (manifest updated last).

        *cursor* is the **global** stream offset the new summary was
        built at.  The store file is replaced atomically before the
        manifest flips, so a crash between the two just recovers the old
        summary with the old cursor — still byte-identical serving state
        for the durable prefix.
        """
        record = self._manifest["tenants"].get(name)
        if record is None:
            raise RecoveryError(f"tenant {name!r} is not in the manifest")
        entry = next((m for m in record["machines"] if m["id"] == machine_id), None)
        if entry is None:
            raise RecoveryError(f"tenant {name!r} has no machine {machine_id}")
        path = os.path.join(self.tenant_dir(name), entry["file"])
        save_summary_binary(summary, path, include_graph=False)
        entry["kind"] = "summary"
        entry["memory_bits"] = float(summary.size_in_bits())
        entry["cursor"] = int(cursor)
        self._flush_manifest()

    def checkpoint_for(self, name: str):
        """A ``checkpoint=`` callback for :class:`StreamingSummarizer`."""

        def checkpoint(machine_id: int, summary, cursor: int) -> None:
            self.checkpoint_machine(name, machine_id, summary, cursor)

        return checkpoint

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant from the manifest (files are left for post-mortem)."""
        if self._manifest["tenants"].pop(name, None) is not None:
            self._flush_manifest()


# ----------------------------------------------------------------------
# the read path
# ----------------------------------------------------------------------
def _load_manifest(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as exc:
        raise RecoveryError(f"{path}: cannot read manifest: {exc}") from None
    except json.JSONDecodeError as exc:
        raise RecoveryError(f"{path}: manifest is not valid JSON: {exc}") from None
    if not isinstance(record, dict) or "payload" not in record or "crc32" not in record:
        raise RecoveryError(f"{path}: manifest is missing crc32/payload")
    payload = record["payload"]
    computed = zlib.crc32(_canonical(payload))
    if computed != int(record["crc32"]):
        raise RecoveryError(
            f"{path}: manifest checksum mismatch "
            f"(stored {int(record['crc32']):#010x}, computed {computed:#010x})"
        )
    if payload.get("version") != _MANIFEST_VERSION:
        raise RecoveryError(
            f"{path}: unsupported manifest version {payload.get('version')!r}"
        )
    if not isinstance(payload.get("tenants"), dict):
        raise RecoveryError(f"{path}: manifest has no tenants table")
    return payload


def _recover_machines(
    directory: str,
    record: dict,
    graph: "Graph",
    *,
    delta=None,
    log: "Optional[DeltaLog]" = None,
    verify: bool = True,
) -> "List[Machine]":
    machines: "List[Machine]" = []
    routing = open_store(
        os.path.join(directory, record["routing"]), kind=ROUTING_KIND, verify=verify
    )
    assignment = np.asarray(routing["assignment"], dtype=np.int64)
    if assignment.shape != (graph.num_nodes,):
        raise RecoveryError(
            f"{routing.path}: assignment covers {assignment.shape[0]} nodes, "
            f"graph has {graph.num_nodes}"
        )
    for entry in sorted(record["machines"], key=lambda m: m["id"]):
        machine_id = int(entry["id"])
        path = os.path.join(directory, entry["file"])
        if entry["kind"] == "graph":
            source = load_graph(path, verify=verify)
        else:
            source = load_summary_binary(path, verify=verify)
        memory_bits = float(entry.get("memory_bits", source.size_in_bits()))
        cursor = int(entry.get("cursor", 0))
        if log is not None and delta is not None:
            # Re-filter the machine's residual corrections over the
            # durable suffix past its cursor — the same vectorized
            # filter the live summarizer applies incrementally, so the
            # recovered source is identical to the uninterrupted one.
            lo = log.local_offset(cursor)
            if lo < 0:
                raise RecoveryError(
                    f"{path}: cursor {cursor} predates the compacted base "
                    f"(origin {log.origin}) — manifest and delta log disagree"
                )
            suffix = delta.pending_edges()[lo:]
            if suffix.shape[0]:
                novel = uncovered_edges(source, suffix[:, 0], suffix[:, 1])
                source = ResidualSource(source, suffix[novel], assume_filtered=True)
                memory_bits = source.size_in_bits()
        part_nodes = np.flatnonzero(assignment == machine_id)
        if part_nodes.size == 0:
            raise RecoveryError(f"{path}: machine {machine_id} owns no nodes in routing")
        machines.append(
            Machine(
                machine_id=machine_id,
                part_nodes=part_nodes,
                source=source,
                memory_bits=memory_bits,
            )
        )
    return machines


def recover_host(
    state_dir: "str | os.PathLike[str]", *, verify: bool = True
) -> "Dict[str, RecoveredTenant]":
    """Rebuild every tenant's serving state from *state_dir*.

    Raises :class:`RecoveryError` (manifest problems) or
    :class:`~repro.errors.GraphFormatError` (corrupt store files) rather
    than ever serving from partial state.  With *verify* (default) every
    section CRC in every store file is checked before use.
    """
    state_dir = os.fspath(state_dir)
    payload = _load_manifest(os.path.join(state_dir, MANIFEST_NAME))
    recovered: "Dict[str, RecoveredTenant]" = {}
    for name in sorted(payload["tenants"]):
        record = payload["tenants"][name]
        directory = os.path.join(state_dir, "tenants", name)
        try:
            if record["kind"] == "streaming":
                delta, log = DeltaLog.recover(
                    os.path.join(directory, record["delta_dir"]), verify=verify
                )
                graph = delta.base
                machines = _recover_machines(
                    directory, record, graph, delta=delta, log=log, verify=verify
                )
                cluster = DistributedCluster(graph, machines)
                recovered[name] = RecoveredTenant(
                    name=name,
                    cluster=cluster,
                    entry=record,
                    delta=delta,
                    log=log,
                    cursors={int(m["id"]): int(m["cursor"]) for m in record["machines"]},
                )
            else:
                graph = load_graph(os.path.join(directory, record["graph"]), verify=verify)
                machines = _recover_machines(directory, record, graph, verify=verify)
                cluster = DistributedCluster(graph, machines)
                recovered[name] = RecoveredTenant(name=name, cluster=cluster, entry=record)
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(f"tenant {name!r}: malformed manifest entry: {exc}") from None
    return recovered


def doctor_report(state_dir: "str | os.PathLike[str]", *, verify: bool = True) -> dict:
    """Checksum a state dir and report recoverability, without serving.

    Never raises for a bad state dir — the whole point is diagnosing
    one.  ``report["recoverable"]`` is the overall verdict; each tenant
    and file carries its own ``ok``/``error``.
    """
    state_dir = os.fspath(state_dir)
    report: dict = {
        "state_dir": state_dir,
        "manifest": {"ok": False, "error": None},
        "tenants": {},
        "recoverable": False,
    }
    try:
        payload = _load_manifest(os.path.join(state_dir, MANIFEST_NAME))
    except RecoveryError as exc:
        report["manifest"]["error"] = str(exc)
        return report
    report["manifest"]["ok"] = True
    overall = True
    for name in sorted(payload["tenants"]):
        record = payload["tenants"][name]
        directory = os.path.join(state_dir, "tenants", name)
        tenant: dict = {
            "kind": record.get("kind"),
            "files": [],
            "delta": None,
            "ok": True,
            "error": None,
        }
        files = [record.get("routing")]
        if record.get("graph"):
            files.append(record["graph"])
        files.extend(m.get("file") for m in record.get("machines", []))
        for file_name in files:
            entry = {"file": file_name, "ok": False, "bytes": 0, "error": None}
            path = os.path.join(directory, str(file_name))
            try:
                entry["bytes"] = os.path.getsize(path)
                container = open_store(path, verify=verify)
                container.close()
                entry["ok"] = True
            except (OSError, GraphFormatError) as exc:
                entry["error"] = str(exc)
                tenant["ok"] = False
            tenant["files"].append(entry)
        if record.get("kind") == "streaming":
            delta_report = DeltaLog.describe(
                os.path.join(directory, str(record.get("delta_dir"))), verify=verify
            )
            tenant["delta"] = delta_report
            if not delta_report["ok"]:
                tenant["ok"] = False
            else:
                for machine in record.get("machines", []):
                    cursor = int(machine.get("cursor", 0))
                    if not delta_report["folded_offset"] <= cursor <= delta_report["logged_offset"]:
                        tenant["ok"] = False
                        tenant["error"] = (
                            f"machine {machine.get('id')} cursor {cursor} outside durable "
                            f"window [{delta_report['folded_offset']}, "
                            f"{delta_report['logged_offset']}]"
                        )
        overall = overall and tenant["ok"]
        report["tenants"][name] = tenant
    report["recoverable"] = overall and bool(payload["tenants"])
    return report
