"""Lane supervision: heartbeat worker pids, respawn proactively.

PR 7's lane executor heals *lazily*: a dead lane is only replaced when
the next batch submit trips over the broken pool, so the first request
after a worker death always pays the failure.  :class:`LaneSupervisor`
closes that gap: an asyncio loop heartbeats every lane's worker pid
(``os.kill(pid, 0)`` — no signal delivered, just liveness) on a short
interval and respawns unhealthy lanes *before* traffic finds them.
Combined with the executor's warm standby (``LaneExecutor(standby=True)``)
a respawn promotes an already-forked worker, so failover leaves no
cold-start gap at all.

Health is exported three ways: ``repro_lane_state{lane}`` gauges plus a
``repro_lane_respawns_total{reason="proactive"}`` counter in the obs
registry, the :meth:`snapshot` dict behind the ``health`` wire op, and
the supervisor's own counters for tests.
"""

from __future__ import annotations

import asyncio
from typing import Optional

LANE_UP = 1.0
LANE_DOWN = 0.0


class LaneSupervisor:
    """Heartbeat + proactive respawn for a :class:`~repro.parallel.lanes.LaneExecutor`.

    Parameters
    ----------
    executor:
        The lane executor to supervise (started by the caller).
    interval_ms:
        Heartbeat period.  Each tick checks every lane; unhealthy lanes
        are respawned immediately.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        ``repro_lane_state`` / ``repro_lane_respawns_total`` families.
    """

    def __init__(self, executor, *, interval_ms: float = 100.0, metrics=None):
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self._executor = executor
        self._interval = interval_ms / 1000.0
        self._metrics = metrics
        self._task: "Optional[asyncio.Task]" = None
        self._running = False
        self.ticks = 0
        self.proactive_respawns = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    async def start(self) -> "LaneSupervisor":
        """Start the heartbeat loop (idempotent)."""
        if self._running:
            return self
        self._running = True
        self._task = asyncio.get_running_loop().create_task(self._loop())
        return self

    async def stop(self) -> None:
        """Stop the heartbeat loop (idempotent)."""
        self._running = False
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _loop(self) -> None:
        while self._running:
            self.check_once()
            await asyncio.sleep(self._interval)

    # ------------------------------------------------------------------
    # the heartbeat itself (callable synchronously from tests)
    # ------------------------------------------------------------------
    def check_once(self) -> "list[bool]":
        """One heartbeat pass: probe, respawn the dead, export gauges."""
        self.ticks += 1
        health = self._executor.lane_health()
        for lane, healthy in enumerate(health):
            if not healthy and not self._executor.inline:
                self._executor.respawn_lane(lane)
                self.proactive_respawns += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "repro_lane_respawns_total",
                        "Lane worker respawns, by trigger.",
                        reason="proactive",
                    ).inc()
                health[lane] = True
            if self._metrics is not None:
                self._metrics.gauge(
                    "repro_lane_state",
                    "Lane liveness (1 = worker pid responsive, 0 = down).",
                    lane=str(lane),
                ).set(LANE_UP if health[lane] else LANE_DOWN)
        return health

    def snapshot(self) -> dict:
        """Health summary for the ``health`` wire op."""
        executor = self._executor
        return {
            "running": self._running,
            "interval_ms": self._interval * 1000.0,
            "ticks": self.ticks,
            "lanes": executor.lane_health(),
            "lane_pids": executor.lane_pids(),
            "inline": executor.inline,
            "respawns": executor.respawns,
            "proactive_respawns": self.proactive_respawns,
            "standby_promotions": getattr(executor, "standby_promotions", 0),
        }
