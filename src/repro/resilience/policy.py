"""Deadline budgets and retry policies for the serving stack.

Two small, process-crossing primitives:

:class:`Deadline`
    An *absolute* expiry instant on the ``time.monotonic()`` clock.
    ``CLOCK_MONOTONIC`` is a per-boot, system-wide clock on the
    platforms we serve from (Linux, macOS), so an expiry minted in the
    network front end can be compared inside a forked lane worker
    without shipping wall-clock time or trusting NTP.  Workers drop
    expired items *before* computing them; the parent turns the dropped
    slots into typed :class:`~repro.errors.DeadlineExceeded` sheds.

:class:`RetryPolicy`
    Capped exponential backoff with **seeded, deterministic** jitter.
    Jitter is derived from ``crc32(seed | key | attempt)`` — not
    :func:`random.random` (non-reproducible) and not :func:`hash`
    (salted per process, so a parent and its forked workers would
    disagree).  Two processes holding the same policy compute the same
    delay for the same (key, attempt), which keeps chaos tests and
    replay-based debugging deterministic.
"""

from __future__ import annotations

import math
import time
import zlib
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock (``math.inf`` = never).

    Instances are immutable; derive tighter budgets with :meth:`tighten`.
    The raw :attr:`expires_at` float is what travels inside batch
    payloads — workers compare it against their own ``time.monotonic()``.
    """

    expires_at: float = math.inf

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(math.inf)

    @classmethod
    def after_ms(cls, budget_ms: "float | None") -> "Deadline":
        """A deadline *budget_ms* from now (``None``/non-positive = never)."""
        if budget_ms is None or budget_ms <= 0 or math.isinf(budget_ms):
            return cls.never()
        return cls(time.monotonic() + budget_ms / 1000.0)

    @property
    def unbounded(self) -> bool:
        """Whether this deadline never expires."""
        return math.isinf(self.expires_at)

    def remaining_ms(self) -> float:
        """Milliseconds left (``math.inf`` when unbounded, floored at 0)."""
        if self.unbounded:
            return math.inf
        return max(0.0, (self.expires_at - time.monotonic()) * 1000.0)

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return time.monotonic() >= self.expires_at

    def tighten(self, budget_ms: "float | None") -> "Deadline":
        """The stricter of this deadline and a fresh *budget_ms* budget.

        Used at ingress to combine the server's default budget with a
        client-supplied hint: neither side can *extend* the other.
        """
        other = Deadline.after_ms(budget_ms)
        return self if self.expires_at <= other.expires_at else other


def deadline_expired(expires_at: "float | None") -> bool:
    """Whether a raw shipped expiry (or ``None`` = unbounded) has passed.

    Module-level so lane workers can check shipped expiries without
    rebuilding :class:`Deadline` objects per item.
    """
    return expires_at is not None and time.monotonic() >= expires_at


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded, deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``3`` = one try plus two
        retries).  Must be >= 1.
    base_ms / cap_ms / multiplier:
        Backoff before retry ``n`` (1-based) is
        ``min(cap_ms, base_ms * multiplier ** (n - 1))`` before jitter.
    jitter:
        Fraction of the raw backoff to spread over: the jittered delay
        lands in ``[raw * (1 - jitter), raw * (1 + jitter)]``.  ``0``
        disables jitter entirely.
    seed:
        Folded into the jitter hash so distinct servers (or tests)
        decorrelate while each remains internally deterministic.
    """

    max_attempts: int = 3
    base_ms: float = 10.0
    cap_ms: float = 2000.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_ms < 0 or self.cap_ms < 0:
            raise ValueError("base_ms and cap_ms must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def retries(self) -> int:
        """Retries after the first attempt (``max_attempts - 1``)."""
        return self.max_attempts - 1

    def should_retry(self, attempt: int) -> bool:
        """Whether another attempt is allowed after *attempt* tries failed."""
        return attempt < self.max_attempts

    def backoff_ms(self, attempt: int, key: str = "") -> float:
        """Deterministic delay before retry *attempt* (1-based) of *key*."""
        if attempt < 1:
            return 0.0
        raw = min(self.cap_ms, self.base_ms * self.multiplier ** (attempt - 1))
        if raw <= 0 or self.jitter <= 0:
            return raw
        token = f"{self.seed}|{key}|{attempt}".encode()
        unit = zlib.crc32(token) / 0xFFFFFFFF  # deterministic in [0, 1]
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def with_seed(self, seed: int) -> "RetryPolicy":
        """This policy with a different jitter seed."""
        return replace(self, seed=seed)

    @classmethod
    def parse(cls, spec: "str | None") -> "Optional[RetryPolicy]":
        """Build a policy from a ``k=v,k=v`` CLI spec (``None``/"" = None).

        Accepted keys: ``attempts``, ``base_ms``, ``cap_ms``,
        ``multiplier``, ``jitter``, ``seed``; ``"none"`` / ``"off"``
        disables retries (one attempt).  Example::

            RetryPolicy.parse("attempts=4,base_ms=5,cap_ms=100,jitter=0.2")
        """
        if spec is None or not spec.strip():
            return None
        text = spec.strip().lower()
        if text in ("none", "off"):
            return cls(max_attempts=1)
        fields = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad retry-policy field {part!r} (expected k=v)")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key in ("attempts", "max_attempts"):
                    fields["max_attempts"] = int(value)
                elif key in ("base_ms", "cap_ms", "multiplier", "jitter"):
                    fields[key] = float(value)
                elif key == "seed":
                    fields["seed"] = int(value)
                else:
                    raise ValueError(f"unknown retry-policy key {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad retry-policy spec {spec!r}: {exc}") from None
        return cls(**fields)
