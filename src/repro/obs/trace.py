"""Request tracing: where did this query's 40 ms go?

A **trace** is one request's journey through the serving stack; a
**span** is one timed segment of it.  Span names used by the serving
tier (see ``docs/architecture.md`` for the lifecycle diagram):

``queue``
    Admission to micro-batch flush (parent process).
``assemble``
    Building the flushed batch job (parent).
``dispatch``
    One batch copy's lane round trip: submit to completion, with
    ``lane``/``hedged``/``attempt``/``outcome`` metadata (parent).
``compute``
    Answering the batch inside the lane worker — recorded with the
    *worker's* pid, which is how a trace proves the work crossed the
    fork boundary (and survived a worker respawn).
``hedge`` / ``redispatch``
    Zero-duration events marking a duplicate or a failover re-send.
``reply``
    Serializing and writing the answer frame (network tier).
``total``
    Ingress to resolution, recorded by :meth:`TraceHandle.finish`.

Trace ids are minted at the edge — :class:`~repro.serving.net.NetServer`
ingress, or ``QueryServer.submit`` for in-process callers — and ride
inside batch payloads across the process boundary, so a worker-side
span lands under the parent-minted id.

Collected spans go to a bounded in-memory ring (cheap, always safe to
leave on) and optionally to a JSONL sink, one span per line.  A
:class:`Tracer` built with ``slow_ms`` also keeps per-trace span lists
while a trace is active and emits a **slow-query log line** — single
line, structured JSON — whenever a finished trace exceeded the
threshold.
"""

from __future__ import annotations

import json
import logging
import os
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Span", "Tracer", "TraceHandle", "new_trace_id"]

#: Structured slow-query log lines go through this logger, one per query.
slow_log = logging.getLogger("repro.obs.slow")

#: Active traces kept for slow-log assembly before force-eviction.
_MAX_ACTIVE_TRACES = 4096


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed segment of a trace.  ``pid`` names the recording process."""

    trace_id: str
    name: str
    duration_s: float
    pid: int
    started_at: float  # wall clock (time.time), for ordering across processes
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "started_at": self.started_at,
            **({"meta": self.meta} if self.meta else {}),
        }


class TraceHandle:
    """One live trace: its id, its start instant, and its finisher.

    Minted by :meth:`Tracer.begin` at the ingress edge; whoever minted
    it calls :meth:`finish` exactly once when the request resolves.
    """

    __slots__ = ("tracer", "trace_id", "name", "meta", "_t0", "_finished")

    def __init__(self, tracer: "Tracer", trace_id: str, name: str, meta: Dict[str, Any]):
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.meta = meta
        self._t0 = time.perf_counter()
        self._finished = False

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._t0

    def finish(self, status: str = "ok") -> "Span | None":
        """Record the ``total`` span and run the slow-query check (idempotent)."""
        if self._finished:
            return None
        self._finished = True
        return self.tracer._finish(self, status)


class Tracer:
    """Span collector: bounded ring, optional JSONL sink, slow-query log.

    Parameters
    ----------
    ring:
        How many spans the in-memory ring retains (oldest dropped).
    sink_path:
        Optional path; every span is appended as one JSON line.  The
        file is line-buffered so a crash loses at most the current line.
    slow_ms:
        End-to-end threshold for the slow-query log; ``None`` (default)
        disables it.  A finished trace whose ``total`` exceeds it emits
        one structured line on the ``repro.obs.slow`` logger with the
        trace id and the per-span breakdown.
    """

    def __init__(
        self,
        *,
        ring: int = 2048,
        sink_path: "str | None" = None,
        slow_ms: "float | None" = None,
    ):
        if ring < 1:
            raise ValueError(f"ring must be >= 1, got {ring}")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self._ring: "Deque[Span]" = deque(maxlen=int(ring))
        self._active: "Dict[str, List[Span]]" = {}
        self.slow_ms = slow_ms
        self.slow_queries = 0
        self._sink_path = sink_path
        self._sink = open(sink_path, "a", encoding="utf-8") if sink_path else None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, name: str, **meta: Any) -> TraceHandle:
        """Mint a trace at the ingress edge; finish the handle on resolve."""
        handle = TraceHandle(self, new_trace_id(), name, meta)
        if len(self._active) >= _MAX_ACTIVE_TRACES:
            # Evict the oldest abandoned trace rather than grow without
            # bound (a client that never resolves must not leak memory).
            self._active.pop(next(iter(self._active)))
        self._active[handle.trace_id] = []
        return handle

    def record(
        self,
        trace_id: str,
        name: str,
        duration_s: float,
        *,
        pid: "int | None" = None,
        **meta: Any,
    ) -> Span:
        """Record one span under *trace_id* (works for foreign/worker spans)."""
        span = Span(
            trace_id=trace_id,
            name=name,
            duration_s=float(duration_s),
            pid=int(pid) if pid is not None else os.getpid(),
            started_at=time.time(),
            meta=meta,
        )
        self._ring.append(span)
        active = self._active.get(trace_id)
        if active is not None:
            active.append(span)
        if self._sink is not None:
            self._sink.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        return span

    def event(self, trace_id: str, name: str, **meta: Any) -> Span:
        """A zero-duration marker span (hedge fired, redispatch, ...)."""
        return self.record(trace_id, name, 0.0, **meta)

    def _finish(self, handle: TraceHandle, status: str) -> Span:
        total = handle.elapsed_s
        span = self.record(
            handle.trace_id, "total", total, status=status, **handle.meta
        )
        spans = self._active.pop(handle.trace_id, [])
        if self.slow_ms is not None and total * 1000.0 >= self.slow_ms:
            self.slow_queries += 1
            breakdown = [
                {
                    "name": s.name,
                    "ms": round(s.duration_s * 1000.0, 3),
                    "pid": s.pid,
                    **({"meta": s.meta} if s.meta else {}),
                }
                for s in spans
            ]
            slow_log.warning(
                "slow-query %s",
                json.dumps(
                    {
                        "trace_id": handle.trace_id,
                        "name": handle.name,
                        "total_ms": round(total * 1000.0, 3),
                        "threshold_ms": self.slow_ms,
                        "meta": handle.meta,
                        "spans": breakdown,
                    },
                    sort_keys=True,
                ),
            )
        return span

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def spans(self, trace_id: "str | None" = None) -> List[Span]:
        """Ring contents (optionally filtered to one trace), oldest first."""
        if trace_id is None:
            return list(self._ring)
        return [span for span in self._ring if span.trace_id == trace_id]

    def flush(self) -> None:
        """Flush the JSONL sink (no-op without one)."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            self._sink.flush()
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
