"""End-to-end observability: metrics, request tracing, profiling hooks.

Three layers, all optional and all off the hot path when unused:

* :mod:`repro.obs.registry` — lock-cheap counters, gauges, and
  mergeable log-bucket histograms, with Prometheus-text and JSON
  exposition (:class:`MetricsRegistry`, :func:`get_registry`).
* :mod:`repro.obs.trace` — ``trace_id``/span request tracing
  (:class:`Tracer`); ids are minted at the serving edge and propagated
  through batch payloads across the fork boundary, so worker-side
  compute spans land under the parent-minted trace.
* :mod:`repro.obs.profile` — :func:`probe` phase timers threaded
  through the merge engines, the streaming swap path, and the store
  load/spill path; no-ops unless :func:`enable_profiling` ran.

:class:`ObsConfig` bundles a registry and a tracer and is what the
serving stack takes: pass one to
:class:`~repro.serving.server.QueryServer`,
:class:`~repro.serving.tenancy.TenantHost`, or
:class:`~repro.serving.net.NetServer` and metrics/tracing light up end
to end — ``None`` (the default) keeps every code path byte- and
cost-identical to the uninstrumented tier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.obs.http import MetricsHTTPServer
from repro.obs.profile import (
    count,
    disable_profiling,
    enable_profiling,
    probe,
    profiling_enabled,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_spaced_bounds,
    quantile_from_sample,
    samples_for,
)
from repro.obs.trace import Span, TraceHandle, Tracer, new_trace_id, slow_log

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "ObsConfig",
    "Span",
    "TraceHandle",
    "Tracer",
    "count",
    "disable_profiling",
    "enable_profiling",
    "get_registry",
    "harvest_worker_metrics",
    "log_spaced_bounds",
    "new_trace_id",
    "probe",
    "profiling_enabled",
    "quantile_from_sample",
    "samples_for",
    "slow_log",
]


@dataclass
class ObsConfig:
    """One knob for the serving stack: which registry/tracer to record into.

    ``registry=None`` disables metrics, ``tracer=None`` disables
    tracing; ``tenant`` labels every metric the holder records (the
    multi-tenant host stamps each tenant's server with its name).
    ``profile_workers`` ships the profiling switch to lane workers so
    worker-side probes (store loads, operator builds) record and are
    harvested back per batch.
    """

    registry: "MetricsRegistry | None" = None
    tracer: "Tracer | None" = None
    tenant: str = ""
    profile_workers: bool = True

    @classmethod
    def default(cls, **kwargs: Any) -> "ObsConfig":
        """An ObsConfig over the process-wide registry (no tracer)."""
        kwargs.setdefault("registry", get_registry())
        return cls(**kwargs)

    def for_tenant(self, tenant: str) -> "ObsConfig":
        """The same sinks, labeled for one tenant."""
        return replace(self, tenant=tenant)

    @property
    def enabled(self) -> bool:
        return self.registry is not None or self.tracer is not None


#: Worker-process harvest cursor for :func:`harvest_worker_metrics`.
_WORKER_HARVEST_CURSOR: Dict[str, Any] = {}


def harvest_worker_metrics() -> Dict[str, Any]:
    """This worker's default-registry delta since the previous harvest.

    Called by :func:`~repro.serving.blueprint.serve_batch_task` once per
    batch; the delta rides back with the batch reply and the parent
    merges it, so lane compute metrics survive a later SIGKILL of the
    worker (only the killed batch's own measurements are lost, and that
    batch is re-dispatched and re-measured).
    """
    return get_registry().harvest_delta(_WORKER_HARVEST_CURSOR)
