"""Hot-path profiling hooks: phase timers that cost ~nothing when off.

The summarize merge engines, the streaming swap path, and the store
load/spill path are instrumented with :func:`probe` timers::

    with probe("merge.fused_join"):
        ... the batch kernel's join pass ...

Profiling is **off by default**: a disabled :func:`probe` returns a
shared no-op context manager — one dict read and no timer calls — so
the instrumentation can live inside kernels without a measurable tax
(the engine-equivalence suites run with it in place).  Enabled, each
probe records into ``repro_phase_seconds{phase=...}`` on the chosen
registry (default: the process-wide one), whose histogram count doubles
as a call counter.

Serving workers inherit the switch through the blueprint payload: a
server built with an :class:`~repro.obs.ObsConfig` ships
``{"profile": True}`` and :func:`~repro.serving.blueprint.serve_batch_task`
enables profiling in the worker before the first machine rebuild, so
store loads and operator builds that happen *inside a lane worker* are
captured and harvested back per batch.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "count",
    "disable_profiling",
    "enable_profiling",
    "probe",
    "profiling_enabled",
]

#: Phase-timer buckets: 1 µs .. ~134 s, ×4 per bucket (phases span six
#: decades — a store mmap is microseconds, a full re-summarize seconds).
PHASE_BOUNDS = tuple(1e-6 * 4.0**i for i in range(14))

_state: "Dict[str, object]" = {"enabled": False, "registry": None}


class _NoopProbe:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopProbe":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopProbe()


class _Probe:
    __slots__ = ("phase", "_t0")

    def __init__(self, phase: str):
        self.phase = phase
        self._t0 = 0.0

    def __enter__(self) -> "_Probe":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        registry: MetricsRegistry = _state["registry"] or get_registry()  # type: ignore[assignment]
        registry.histogram(
            "repro_phase_seconds",
            "Instrumented hot-path phase timings",
            bounds=PHASE_BOUNDS,
            phase=self.phase,
        ).observe(time.perf_counter() - self._t0)


def enable_profiling(registry: "MetricsRegistry | None" = None) -> None:
    """Turn the probes on, recording into *registry* (default: process-wide)."""
    _state["registry"] = registry
    _state["enabled"] = True


def disable_profiling() -> None:
    """Turn the probes back into no-ops."""
    _state["enabled"] = False
    _state["registry"] = None


def profiling_enabled() -> bool:
    """Whether probes currently record."""
    return bool(_state["enabled"])


def probe(phase: str):
    """A context manager timing one *phase* (no-op unless profiling is on)."""
    if not _state["enabled"]:
        return _NOOP
    return _Probe(phase)


def count(name: str, amount: float = 1.0, **labels: str) -> None:
    """Bump a profiling counter (no-op unless profiling is on)."""
    if not _state["enabled"]:
        return
    registry: MetricsRegistry = _state["registry"] or get_registry()  # type: ignore[assignment]
    registry.counter(name, "Instrumented hot-path event counter", **labels).inc(amount)
