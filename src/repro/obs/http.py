"""A tiny asyncio HTTP endpoint exposing a registry to scrapers.

``GET /metrics`` answers the Prometheus text exposition format and
``GET /metrics.json`` the JSON snapshot — enough surface for a
Prometheus scrape job, a ``curl``, or the CI smoke step, without
pulling an HTTP framework into the dependency set.  The server shares
the event loop with the serving tier (``repro serve-net
--metrics-port``), so a scrape never blocks query traffic and vice
versa; rendering a snapshot is a pure read of the registry.

Only ``GET``/``HEAD`` on the two known paths are served; anything else
gets a 404/405 and the connection closes after every response
(``Connection: close`` — scrapers reconnect per scrape anyway).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ServingError
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsHTTPServer"]

_MAX_REQUEST_BYTES = 8192


class MetricsHTTPServer:
    """Serve one :class:`~repro.obs.registry.MetricsRegistry` over HTTP.

    Use as an async context manager, or :meth:`start` / :meth:`stop`;
    bind ``port=0`` for an ephemeral port and read :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._registry = registry
        self._host = host
        self._requested_port = int(port)
        self._server: "asyncio.AbstractServer | None" = None
        #: Scrapes answered with a 200 (monotone).
        self.scrapes = 0

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServingError("metrics server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "MetricsHTTPServer":
        if self._server is not None:
            raise ServingError("metrics server already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._requested_port
        )
        return self

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is None:
            return
        server.close()
        await server.wait_closed()

    async def __aenter__(self) -> "MetricsHTTPServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _respond(self, path: str) -> "tuple[int, str, str]":
        if path in ("/metrics", "/"):
            return 200, "text/plain; version=0.0.4; charset=utf-8", self._registry.render_prometheus()
        if path == "/metrics.json":
            return 200, "application/json", json.dumps(self._registry.snapshot()) + "\n"
        return 404, "text/plain; charset=utf-8", "not found\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10.0
                )
            except asyncio.LimitOverrunError:
                return
            except asyncio.IncompleteReadError as partial:
                head = partial.partial
                if b"\r\n" not in head and b"\n" not in head:
                    return
            if len(head) > _MAX_REQUEST_BYTES:
                return
            request_line = head.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            if method not in ("GET", "HEAD"):
                status, content_type, body = 405, "text/plain; charset=utf-8", "method not allowed\n"
            else:
                status, content_type, body = self._respond(target.split("?", 1)[0])
            if status == 200:
                self.scrapes += 1
            payload = body.encode("utf-8")
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}[status]
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            if method != "HEAD":
                writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
