"""The metrics registry: lock-cheap counters, gauges, and histograms.

Serving a production workload needs numbers, not print statements: how
many requests per tenant, where the p99 sits, which lane is hot.  This
module is the storage layer for those numbers:

* :class:`Counter` — a monotone float/int accumulator.
* :class:`Gauge` — a last-write-wins instantaneous value.
* :class:`Histogram` — **fixed log-spaced buckets**, so two histograms
  with the same bounds merge by adding their bucket counts.  That is
  the property the serving tier leans on: lane workers record compute
  time in *their* process and the parent merges the harvested deltas
  into its registry — no locks, no shared memory, no drift.

All three are "lock-cheap": the hot path (``inc`` / ``set`` /
``observe``) is plain attribute arithmetic — atomic enough under the
GIL for monitoring counters, and never behind a mutex.  Only metric
*creation* takes the registry lock, and callers are expected to hold on
to the returned instrument instead of re-looking it up per event.

Exposition: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text format (``name{label="v"} value`` plus
``_bucket``/``_sum``/``_count`` series for histograms) and
:meth:`MetricsRegistry.snapshot` a JSON-safe dict that
:meth:`MetricsRegistry.merge_snapshot` can fold into another registry —
the cross-process path used by both the per-batch worker harvest and
the ``metrics`` wire op.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "get_registry",
    "log_spaced_bounds",
    "quantile_from_sample",
    "samples_for",
]

#: Canonical latency buckets: log-spaced (×2) from 100 µs to ~419 s.
#: Every latency histogram in the codebase shares these bounds so any
#: two of them (parent/worker, tenant A/tenant B) are mergeable.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(1e-4 * 2.0**i for i in range(23))

#: Buckets for small cardinalities (batch sizes, queue depths): powers of 2.
DEFAULT_SIZE_BOUNDS: Tuple[float, ...] = tuple(float(2**i) for i in range(13))

_LabelKey = Tuple[Tuple[str, str], ...]


def log_spaced_bounds(lo: float, hi: float, *, factor: float = 2.0) -> Tuple[float, ...]:
    """Bucket upper bounds from *lo* to at least *hi*, multiplied by *factor*.

    >>> log_spaced_bounds(1.0, 8.0)
    (1.0, 2.0, 4.0, 8.0)
    """
    if lo <= 0 or hi < lo or factor <= 1.0:
        raise ValueError(f"need 0 < lo <= hi and factor > 1, got {lo}, {hi}, {factor}")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone accumulator.  ``inc`` is the only mutator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """An instantaneous value (queue depth, live connections, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram, mergeable across processes.

    ``bounds`` are the inclusive upper edges of each bucket (``le`` in
    Prometheus terms); one implicit overflow bucket catches everything
    above the last bound.  Two histograms with identical bounds merge by
    adding their ``counts`` — the whole point of *fixed* buckets.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: "Sequence[float] | None" = None) -> None:
        resolved = tuple(float(b) for b in (bounds or DEFAULT_LATENCY_BOUNDS))
        if not resolved or any(later <= earlier for later, earlier in zip(resolved[1:], resolved)):
            raise ValueError(f"histogram bounds must be strictly increasing, got {resolved}")
        self.bounds = resolved
        self.counts = [0] * (len(resolved) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge_counts(self, counts: Sequence[int], total: float, n: int) -> None:
        """Fold another histogram's (counts, sum, count) into this one."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"cannot merge histograms with {len(counts)} vs {len(self.counts)} buckets"
            )
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.sum += total
        self.count += int(n)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (``q`` in [0, 1]) by bucket interpolation.

        Linear interpolation inside the owning bucket; the overflow
        bucket reports its lower edge (the estimate cannot exceed what
        was measured about it).  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                hi = self.bounds[i]
                fraction = (rank - cumulative) / c
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
            cumulative += c
        return self.bounds[-1]


class _Family:
    """One metric family: a name, a kind, and per-label-set samples."""

    __slots__ = ("name", "kind", "help", "bounds", "samples")

    def __init__(self, name: str, kind: str, help_text: str, bounds: "Tuple[float, ...] | None"):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.samples: "Dict[_LabelKey, Any]" = {}


class MetricsRegistry:
    """A named collection of metric families.

    One process-wide default registry exists (:func:`get_registry`);
    subsystems that want isolation (tests, benches) build their own.
    Instruments are created on first touch and cached by
    ``(name, labels)``; hold the returned object for hot paths.
    """

    def __init__(self) -> None:
        self._families: "Dict[str, _Family]" = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # instrument creation
    # ------------------------------------------------------------------
    def _instrument(
        self,
        name: str,
        kind: str,
        help_text: str,
        bounds: "Tuple[float, ...] | None",
        labels: Dict[str, str],
    ) -> Any:
        key = _label_key(labels)
        family = self._families.get(name)
        if family is not None:
            sample = family.samples.get(key)
            if sample is not None:
                if family.kind != kind:
                    raise ValueError(f"metric {name!r} is a {family.kind}, not a {kind}")
                return sample
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(f"metric {name!r} is a {family.kind}, not a {kind}")
            sample = family.samples.get(key)
            if sample is None:
                if kind == "counter":
                    sample = Counter()
                elif kind == "gauge":
                    sample = Gauge()
                else:
                    sample = Histogram(family.bounds)
                family.samples[key] = sample
            return sample

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter named ``name{labels}`` (created on first touch)."""
        return self._instrument(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge named ``name{labels}``."""
        return self._instrument(name, "gauge", help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: "Sequence[float] | None" = None,
        **labels: str,
    ) -> Histogram:
        """The histogram named ``name{labels}``.

        ``bounds`` applies only when the family is first created; every
        later sample of the family shares the family's bounds (merge
        compatibility by construction).
        """
        resolved = tuple(float(b) for b in bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        return self._instrument(name, "histogram", help, resolved, labels)

    def enum_gauge(
        self,
        name: str,
        help: str = "",
        *,
        state: str,
        states: Sequence[str],
        **labels: str,
    ) -> None:
        """Set a one-hot gauge family encoding a state machine's state.

        The Prometheus idiom for enums: one gauge per possible state,
        ``1`` on the current state and ``0`` on the rest, e.g.
        ``repro_breaker_state{key="3",state="open"} 1``.  Dashboards can
        then ``max by (key)`` without parsing magic numbers.
        """
        if state not in states:
            raise ValueError(f"state {state!r} not in {tuple(states)}")
        for candidate in states:
            self.gauge(name, help, **labels, state=candidate).set(
                1.0 if candidate == state else 0.0
            )

    # ------------------------------------------------------------------
    # snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe point-in-time copy of every family and sample."""
        families: List[Dict[str, Any]] = []
        for name in sorted(self._families):
            family = self._families[name]
            out: Dict[str, Any] = {"name": name, "kind": family.kind, "help": family.help}
            samples: List[Dict[str, Any]] = []
            for key in sorted(family.samples):
                sample = family.samples[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["bounds"] = list(sample.bounds)
                    entry["counts"] = list(sample.counts)
                    entry["sum"] = sample.sum
                    entry["count"] = sample.count
                else:
                    entry["value"] = sample.value
                samples.append(entry)
            out["samples"] = samples
            families.append(out)
        return {"families": families}

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins — the snapshot is the fresher observation).
        """
        for family in snapshot.get("families", []):
            name, kind = family["name"], family["kind"]
            for sample in family.get("samples", []):
                labels = {str(k): str(v) for k, v in sample.get("labels", {}).items()}
                if kind == "counter":
                    self.counter(name, family.get("help", ""), **labels).inc(sample["value"])
                elif kind == "gauge":
                    self.gauge(name, family.get("help", ""), **labels).set(sample["value"])
                else:
                    hist = self.histogram(
                        name, family.get("help", ""), bounds=sample["bounds"], **labels
                    )
                    hist.merge_counts(sample["counts"], sample["sum"], sample["count"])

    def harvest_delta(self, cursor: Dict[str, Any]) -> Dict[str, Any]:
        """Snapshot of everything recorded since the last harvest.

        *cursor* is caller-owned state (start with ``{}``); each call
        returns only the increments since the previous call with the
        same cursor and advances it.  This is the per-batch worker
        harvest: a lane worker ships the delta with each batch reply, so
        nothing is lost to a later SIGKILL beyond the killed batch
        itself (which is re-dispatched and re-measured).  Gauges are
        shipped whole (they are not additive).
        """
        current = self.snapshot()
        previous: Dict[Tuple[str, _LabelKey], Dict[str, Any]] = cursor.setdefault("seen", {})
        delta_families: List[Dict[str, Any]] = []
        for family in current["families"]:
            name, kind = family["name"], family["kind"]
            kept: List[Dict[str, Any]] = []
            for sample in family["samples"]:
                key = (name, _label_key(sample["labels"]))
                last = previous.get(key)
                if kind == "gauge":
                    kept.append(sample)
                elif kind == "counter":
                    delta = sample["value"] - (last["value"] if last else 0.0)
                    if delta:
                        kept.append({"labels": sample["labels"], "value": delta})
                else:
                    base_counts = last["counts"] if last else [0] * len(sample["counts"])
                    counts = [c - b for c, b in zip(sample["counts"], base_counts)]
                    if any(counts):
                        kept.append(
                            {
                                "labels": sample["labels"],
                                "bounds": sample["bounds"],
                                "counts": counts,
                                "sum": sample["sum"] - (last["sum"] if last else 0.0),
                                "count": sample["count"] - (last["count"] if last else 0),
                            }
                        )
                previous[key] = sample
            if kept:
                delta_families.append({**{k: family[k] for k in ("name", "kind", "help")}, "samples": kept})
        return {"families": delta_families}

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    @staticmethod
    def _render_labels(labels: Dict[str, str], extra: "Tuple[str, str] | None" = None) -> str:
        pairs = [(k, v) for k, v in sorted(labels.items())]
        if extra is not None:
            pairs.append(extra)
        if not pairs:
            return ""

        def escape(value: str) -> str:
            return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")

        return "{" + ",".join(f'{k}="{escape(v)}"' for k, v in pairs) + "}"

    @staticmethod
    def _render_value(value: float) -> str:
        if value == math.inf:
            return "+Inf"
        if float(value).is_integer():
            return str(int(value))
        return repr(float(value))

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        snap = self.snapshot()
        for family in snap["families"]:
            name = family["name"]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for sample in family["samples"]:
                labels = sample["labels"]
                if family["kind"] == "histogram":
                    cumulative = 0
                    for bound, count in zip(sample["bounds"], sample["counts"]):
                        cumulative += count
                        le = self._render_value(bound)
                        lines.append(
                            f"{name}_bucket{self._render_labels(labels, ('le', le))} {cumulative}"
                        )
                    cumulative += sample["counts"][-1]
                    lines.append(
                        f"{name}_bucket{self._render_labels(labels, ('le', '+Inf'))} {cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{self._render_labels(labels)} {self._render_value(sample['sum'])}"
                    )
                    lines.append(f"{name}_count{self._render_labels(labels)} {sample['count']}")
                else:
                    lines.append(
                        f"{name}{self._render_labels(labels)} {self._render_value(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family (test isolation for the default registry)."""
        with self._lock:
            self._families = {}


# ----------------------------------------------------------------------
# snapshot helpers (consumers: ``repro top``, benches, tests)
# ----------------------------------------------------------------------
def samples_for(snapshot: Dict[str, Any], name: str) -> List[Dict[str, Any]]:
    """The samples of family *name* inside a :meth:`~MetricsRegistry.snapshot`."""
    for family in snapshot.get("families", []):
        if family.get("name") == name:
            return list(family.get("samples", []))
    return []


def quantile_from_sample(sample: Dict[str, Any], q: float) -> float:
    """Approximate quantile of one snapshot histogram sample."""
    hist = Histogram(sample["bounds"])
    hist.merge_counts(sample["counts"], sample.get("sum", 0.0), sample.get("count", 0))
    return hist.quantile(q)


#: The process-wide default registry.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT
