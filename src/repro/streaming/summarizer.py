"""Online maintenance of a summary cluster under an edge stream.

The paper's pipeline (Alg. 3) is offline: partition once, build one
personalized summary per machine, serve forever.  :class:`StreamingSummarizer`
keeps that cluster *live* under an append-only edge stream:

1. **Ingest** — :meth:`StreamingSummarizer.ingest` pushes a micro-batch of
   edges into the :class:`~repro.streaming.delta.GraphDelta`.  Every
   machine's serving source immediately becomes a
   :class:`~repro.streaming.residual.ResidualSource` — its last summary
   plus the exact correction list of the edges that summary has never
   seen — so queries observe every streamed edge at once; only the merge
   structure goes stale.
2. **Cost drift** — the correction list has a price: ``2·log2|V|`` bits
   per edge (footnote 4), the same currency as the summary budget.  A
   machine's *drift* is its correction bits over its budget; once drift
   crosses ``drift_threshold``, re-summarizing is cheaper than carrying
   the corrections, and the machine is marked for refresh.
3. **Refresh** — :meth:`StreamingSummarizer.refresh` re-runs the
   per-machine summarization of Alg. 3 on the **materialized** graph for
   exactly the drifted machines, fanned out over a
   :class:`~repro.parallel.ParallelExecutor` with zero-copy graph
   shipping, and hot-swaps the new summaries into the cluster — and into
   an attached :class:`~repro.serving.QueryServer` — between
   micro-batches, without dropping in-flight requests.

Determinism contract (pinned by ``tests/streaming/``):

* The partition is resolved **once**, at construction, with the given
  seed, and never changes — routing stability is what makes hot-swap
  serving possible.
* A refresh rebuilds a machine from the materialized graph alone — never
  incrementally from the stale summary — so the post-refresh state is a
  pure function of the stream prefix.  After refreshing all stale
  machines at **any** prefix, under **any** earlier refresh cadence and
  worker count, the cluster is byte-identical to
  :func:`~repro.distributed.pipeline.build_summary_cluster` on
  ``delta.materialize()`` with the same pinned assignment, config, and
  seed — summaries, sizes, and served answers alike.
* Between refreshes, answers are a deterministic function of
  ``(stream prefix, refresh history)`` — identical at any worker count
  and storage backend, with residual topology exactly
  ``Ĝ_summary ∪ streamed edges``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.pegasus import PegasusConfig
from repro.distributed.cluster import DistributedCluster, Machine
from repro.distributed.pipeline import Partitioner, _resolve_parts, _summary_machine_task
from repro.errors import StreamingError
from repro.graph.graph import Graph
from repro.obs.profile import count as _obs_count, probe
from repro.parallel import ParallelExecutor
from repro.parallel.graphship import GraphShipment
from repro.streaming.delta import GraphDelta
from repro.streaming.residual import ResidualSource, uncovered_edges


@dataclass
class _MachineState:
    """Per-machine streaming bookkeeping."""

    part: np.ndarray
    summary: object  # the machine's base SummaryGraph (its last refresh)
    cursor: int = 0  # delta length when the summary was (re)built
    refreshes: int = 0
    # Incrementally maintained correction list: the pending edges in
    # [cursor, filtered_at) that are absent from ``summary``'s
    # reconstruction.  Each ingest filters only the new suffix, so
    # maintenance stays linear in the stream instead of quadratic.
    filtered_edges: np.ndarray = None  # type: ignore[assignment]
    filtered_at: int = 0

    def reset_filter(self, cursor: int) -> None:
        self.cursor = cursor
        self.filtered_at = cursor
        self.filtered_edges = np.empty((0, 2), dtype=np.int64)


@dataclass
class IngestReport:
    """What one :meth:`StreamingSummarizer.ingest` call did."""

    submitted: int
    novel: int
    pending: int
    refreshed: "List[int]" = field(default_factory=list)
    drift: "Dict[int, float]" = field(default_factory=dict)
    seconds: float = 0.0


@dataclass
class RefreshReport:
    """What one :meth:`StreamingSummarizer.refresh` call rebuilt."""

    machine_ids: "List[int]"
    seconds: float = 0.0


class StreamingSummarizer:
    """A summary cluster that absorbs edge insertions online.

    Parameters
    ----------
    graph:
        The initial (base) graph ``G₀``.  The node set is fixed; the
        stream appends edges only.
    num_machines, budget_bits:
        As for :func:`~repro.distributed.pipeline.build_summary_cluster`.
    config:
        PeGaSus hyper-parameters for every (re-)summarization; defaults
        to ``PegasusConfig(seed=seed)``.  A seeded config is what makes
        the whole stream replayable.
    partitioner, assignment, seed:
        Partition controls, resolved **once** at construction (see the
        module docstring).  The pinned assignment is exposed as
        :attr:`assignment` so reference clusters can be built on it.
    drift_threshold:
        Refresh a machine when its residual correction bits exceed this
        fraction of ``budget_bits``.  ``0.0`` refreshes every stale
        machine at every ingest (the always-fresh reference cadence);
        larger values trade staleness of the merge structure for fewer
        re-summarizations.  Must be non-negative.
    workers:
        Process-pool size for refresh fan-outs (``1`` = inline reference
        path; results are byte-identical at any count).
    use_shared_memory:
        Ship the materialized graph to refresh workers through shared
        memory (as in the build pipeline).
    log_dir:
        Durable write-ahead logging: every ingested batch is appended to
        a :class:`~repro.store.DeltaLog` in this directory (crash-atomic
        checksummed segments), and each refresh compacts the prefix all
        machines have absorbed into a new base generation.  After a
        crash, ``DeltaLog.recover(log_dir)`` reconstructs exactly the
        durable stream.  ``None`` (default) keeps the stream in memory
        only.  The log is exposed as :attr:`log`.
    checkpoint:
        Optional ``callback(machine_id, summary, cursor)`` invoked after
        each refresh with the machine's new base summary and the
        **global** stream offset it was built at (local offset when no
        log is attached).  The resilience layer's
        :meth:`~repro.resilience.HostState.checkpoint_for` plugs in here
        so a refreshed summary is re-persisted *before* the log compacts
        the prefix it absorbed — the ordering whole-server recovery
        relies on.
    """

    def __init__(
        self,
        graph: Graph,
        num_machines: int,
        budget_bits: float,
        *,
        config: "PegasusConfig | None" = None,
        partitioner: "Partitioner | None" = None,
        assignment: "np.ndarray | None" = None,
        seed: "int | None" = 0,
        drift_threshold: float = 0.1,
        workers: "int | None" = 1,
        use_shared_memory: bool = True,
        log_dir: "str | None" = None,
        checkpoint=None,
    ):
        if drift_threshold < 0.0:
            raise StreamingError(
                f"drift_threshold must be >= 0, got {drift_threshold}"
            )
        self.delta = GraphDelta(graph)
        if log_dir is not None:
            from repro.store import DeltaLog

            self.log: "DeltaLog | None" = DeltaLog.create(log_dir, self.delta)
        else:
            self.log = None
        self.budget_bits = float(budget_bits)
        self.config = config or PegasusConfig(seed=seed)
        self.drift_threshold = float(drift_threshold)
        self.checkpoint = checkpoint
        self.workers = workers
        self.use_shared_memory = use_shared_memory
        parts = _resolve_parts(graph, num_machines, partitioner, assignment, seed)
        route = np.full(graph.num_nodes, -1, dtype=np.int64)
        for machine_id, part in enumerate(parts):
            route[part] = machine_id
        route.setflags(write=False)
        #: The pinned node→machine assignment (build reference clusters
        #: with ``build_summary_cluster(..., assignment=...)`` on it).
        self.assignment = route
        machines = self._build_machines(graph, list(enumerate(parts)))
        self.cluster = DistributedCluster(graph, machines)
        self._states = {}
        for machine in machines:
            state = _MachineState(part=parts[machine.machine_id], summary=machine.source)
            state.reset_filter(0)
            self._states[machine.machine_id] = state
        self._server = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_machines(self, graph: Graph, tasks: "List[Tuple[int, np.ndarray]]") -> List[Machine]:
        """Fan the per-machine summarizations of Alg. 3 over the pool.

        Identical to the build path of
        :func:`~repro.distributed.pipeline.build_summary_cluster` — same
        task function, same shipping — which is exactly what the
        byte-identical refresh contract requires.
        """
        executor = ParallelExecutor(self.workers)
        shared = (graph, self.budget_bits, self.config)
        if executor.workers > 1:
            with GraphShipment(shared, use_shared_memory=self.use_shared_memory) as shipment:
                return executor.map(_summary_machine_task, tasks, shared=shipment.payload)
        return executor.map(_summary_machine_task, tasks, shared=shared)

    # ------------------------------------------------------------------
    # serving integration
    # ------------------------------------------------------------------
    def attach(self, server) -> None:
        """Forward every subsequent source swap to *server* (hot swap).

        *server* is a running :class:`~repro.serving.QueryServer` built on
        :attr:`cluster`.  Detach with :meth:`detach`.
        """
        self._server = server

    def detach(self) -> None:
        """Stop forwarding swaps to the previously attached server."""
        self._server = None

    def _swap(self, machine_id: int, source) -> None:
        machine = self.cluster.machines[machine_id]
        machine.replace_source(source)
        _obs_count(
            "repro_stream_swaps_total",
            kind="residual" if isinstance(source, ResidualSource) else "refresh",
        )
        if self._server is not None:
            self._server.swap_machine(machine)

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        """Number of machines ``m`` (fixed)."""
        return self.cluster.num_machines

    def pending_for(self, machine_id: int) -> np.ndarray:
        """The streamed edges machine *machine_id*'s summary has not seen."""
        state = self._state(machine_id)
        return self.delta.pending_edges()[state.cursor :]

    def residual_for(self, machine_id: int) -> ResidualSource:
        """The machine's residual-corrected source at the current prefix.

        The correction list is maintained incrementally: only pending
        edges that arrived since the last call are filtered against the
        machine's reconstruction (one vectorized pass), then appended to
        the cached list.  The resulting source is identical to filtering
        the whole ``pending_for`` slice from scratch — ``ResidualSource``
        canonicalizes the stored order — just without re-paying for
        already-filtered edges on every ingest.
        """
        state = self._state(machine_id)
        pending = self.delta.num_pending
        if state.filtered_at < pending:
            suffix = self.delta.pending_edges()[state.filtered_at :]
            u, v = suffix[:, 0], suffix[:, 1]
            novel = uncovered_edges(state.summary, u, v)
            state.filtered_edges = np.concatenate(
                [state.filtered_edges, suffix[novel]]
            )
            state.filtered_at = pending
        return ResidualSource(state.summary, state.filtered_edges, assume_filtered=True)

    def drift(self, machine_id: int) -> float:
        """Correction bits over budget — the re-summarization trigger."""
        source = self.cluster.machines[machine_id].source
        if not isinstance(source, ResidualSource):
            return 0.0
        return source.correction_bits() / self.budget_bits if self.budget_bits > 0 else 0.0

    def stale_machines(self) -> List[int]:
        """Machines whose summary predates the newest streamed edge."""
        pending = self.delta.num_pending
        return [mid for mid, state in sorted(self._states.items()) if state.cursor < pending]

    def refresh_counts(self) -> Dict[int, int]:
        """Completed re-summarizations per machine."""
        return {mid: state.refreshes for mid, state in sorted(self._states.items())}

    def _state(self, machine_id: int) -> _MachineState:
        state = self._states.get(machine_id)
        if state is None:
            raise StreamingError(f"machine {machine_id} is not part of this cluster")
        return state

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def ingest(
        self,
        edges: "Iterable[Tuple[int, int]] | np.ndarray",
        *,
        refresh: str = "auto",
    ) -> IngestReport:
        """Absorb a micro-batch of edge insertions.

        Every machine's serving source is re-derived as its summary plus
        the exact residual correction list, then machines are refreshed
        according to *refresh*:

        * ``"auto"`` (default) — refresh machines whose drift crossed
          :attr:`drift_threshold`;
        * ``"none"`` — only extend correction lists (refresh manually);
        * ``"all"`` — refresh every stale machine now.
        """
        with probe("stream.ingest"):
            return self._ingest(edges, refresh=refresh)

    def _ingest(
        self,
        edges: "Iterable[Tuple[int, int]] | np.ndarray",
        *,
        refresh: str,
    ) -> IngestReport:
        if refresh not in ("auto", "none", "all"):
            raise StreamingError(f"refresh must be 'auto', 'none' or 'all', got {refresh!r}")
        started = time.perf_counter()
        arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64
        )
        submitted = arr.shape[0] if arr.ndim == 2 else 0
        novel = self.delta.add_edges(arr)
        if self.log is not None and novel:
            self.log.append(self.delta)
        report = IngestReport(
            submitted=submitted, novel=novel, pending=self.delta.num_pending
        )
        # Re-derive every stale machine's correction list on the new
        # prefix: drift is measured against it, and machines that are not
        # refreshed serve the complete topology immediately.
        residuals: Dict[int, ResidualSource] = {}
        pending = self.delta.num_pending
        for machine_id in sorted(self._states):
            if self._states[machine_id].cursor < pending:
                residuals[machine_id] = self.residual_for(machine_id)
        report.drift = {
            mid: (
                residuals[mid].correction_bits() / self.budget_bits
                if mid in residuals and self.budget_bits > 0
                else 0.0
            )
            for mid in sorted(self._states)
        }
        if refresh == "all":
            to_refresh = self.stale_machines()
        elif refresh == "auto":
            to_refresh = [
                mid
                for mid in residuals
                if report.drift[mid] > self.drift_threshold or self.drift_threshold == 0.0
            ]
        else:
            to_refresh = []
        if novel:
            for machine_id, residual in residuals.items():
                if machine_id not in to_refresh:
                    self._swap(machine_id, residual)
        if to_refresh:
            report.refreshed = self.refresh(to_refresh).machine_ids
            report.drift.update({mid: 0.0 for mid in report.refreshed})
        report.seconds = time.perf_counter() - started
        return report

    def refresh(self, machine_ids: "Sequence[int] | None" = None) -> RefreshReport:
        """Re-summarize machines from the materialized graph and hot-swap.

        *machine_ids* defaults to every stale machine.  Each listed
        machine is rebuilt exactly as a from-scratch
        :func:`~repro.distributed.pipeline.build_summary_cluster` on
        ``delta.materialize()`` would build it (same task function, same
        config, same part) — re-summarization is never incremental, which
        is what makes the refreshed state independent of the cadence that
        led to it.
        """
        with probe("stream.refresh"):
            return self._refresh(machine_ids)

    def _refresh(self, machine_ids: "Sequence[int] | None" = None) -> RefreshReport:
        started = time.perf_counter()
        if machine_ids is None:
            machine_ids = self.stale_machines()
        ids = []
        for machine_id in machine_ids:
            self._state(int(machine_id))  # validate
            if int(machine_id) not in ids:
                ids.append(int(machine_id))
        if not ids:
            return RefreshReport(machine_ids=[], seconds=time.perf_counter() - started)
        materialized = self.delta.materialize()
        tasks = [(machine_id, self._states[machine_id].part) for machine_id in ids]
        machines = self._build_machines(materialized, tasks)
        cursor = self.delta.num_pending
        for machine in machines:
            state = self._states[machine.machine_id]
            state.summary = machine.source
            state.reset_filter(cursor)
            state.refreshes += 1
            self._swap(machine.machine_id, machine.source)
        if self.checkpoint is not None:
            # Persist the refreshed summaries (and their cursors) before
            # compaction may fold the prefix they absorbed: a crash in
            # between recovers new summaries over the old base, which is
            # still exactly the durable stream.  The reverse order could
            # leave checkpointed cursors behind a compacted base.
            for machine in machines:
                state = self._states[machine.machine_id]
                global_cursor = (
                    self.log.global_offset(state.cursor)
                    if self.log is not None
                    else state.cursor
                )
                self.checkpoint(machine.machine_id, state.summary, global_cursor)
        if self.log is not None:
            # Everything before the slowest machine's cursor is absorbed
            # by every summary — fold it into a new base generation.  The
            # in-memory delta (and all cursors into it) is untouched.
            self.log.compact(
                self.delta, min(state.cursor for state in self._states.values())
            )
        return RefreshReport(machine_ids=ids, seconds=time.perf_counter() - started)
