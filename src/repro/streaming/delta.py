"""An append-only edge overlay over the immutable CSR :class:`~repro.graph.Graph`.

The paper summarizes a *static* graph; :class:`GraphDelta` is the
streaming layer's write path.  The base graph stays immutable (every
summary, machine, and shared-memory shipment built on it remains valid);
inserted edges accumulate in an insertion-ordered pending buffer, exactly
deduplicated against both the base graph and earlier insertions, and
:meth:`GraphDelta.materialize` rebuilds a merged :class:`Graph` with one
vectorized CSR pass — no per-edge Python loop.

The pending buffer is the unit of bookkeeping for everything downstream:
:class:`~repro.streaming.residual.ResidualSource` overlays a suffix of it
on a stale summary, and :class:`~repro.streaming.summarizer.StreamingSummarizer`
records, per machine, the buffer length at its last re-summarization (its
*cursor*), so "the edges this machine's summary has never seen" is always
the slice ``pending_edges()[cursor:]``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph, _PACKED_KEY_MAX_NODES, dedup_canonical_edges


class GraphDelta:
    """Append-only edge buffer over an immutable base graph.

    Parameters
    ----------
    base:
        The immutable input graph the stream starts from.  New edges may
        only connect existing nodes (the stream is append-only in edges,
        not in nodes — routing tables and partitions stay valid forever).

    Invariants
    ----------
    * ``pending_edges()`` holds canonical ``(u, v)`` pairs with ``u < v``,
      in first-insertion order, with no duplicates and no edge already
      present in *base* — so ``materialize()`` is a disjoint union.
    * ``num_pending`` is monotone; it only grows, and slicing the pending
      buffer at any past value reproduces the exact stream prefix seen at
      that point (the determinism anchor for re-summarization cursors).
    """

    def __init__(self, base: Graph):
        self._base = base
        self._num_nodes = base.num_nodes
        self._pending_u = np.empty(0, dtype=np.int64)
        self._pending_v = np.empty(0, dtype=np.int64)
        self._base_keys: "np.ndarray | None" = None
        self._pending_set: "set[Tuple[int, int]]" = set()
        self._materialized: "Graph | None" = base
        self._materialized_at = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def base(self) -> Graph:
        """The immutable graph the stream started from."""
        return self._base

    @property
    def num_nodes(self) -> int:
        """Number of nodes (fixed for the lifetime of the delta)."""
        return self._num_nodes

    @property
    def num_pending(self) -> int:
        """Number of buffered novel edges (monotone non-decreasing)."""
        return self._pending_u.shape[0]

    def pending_edges(self) -> np.ndarray:
        """Buffered novel edges as an ``(k, 2)`` array in insertion order."""
        edges = np.column_stack([self._pending_u, self._pending_v])
        edges.setflags(write=False)
        return edges

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _in_base(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized membership of canonical pairs in the base graph."""
        if self._num_nodes <= _PACKED_KEY_MAX_NODES:
            if self._base_keys is None:
                base_edges = self._base.edge_array()
                # edge_array() is lexsorted, so the packed keys are sorted.
                self._base_keys = base_edges[:, 0] * np.int64(self._num_nodes) + base_edges[:, 1]
            keys = u * np.int64(self._num_nodes) + v
            pos = np.searchsorted(self._base_keys, keys)
            hit = pos < self._base_keys.shape[0]
            hit[hit] = self._base_keys[pos[hit]] == keys[hit]
            return hit
        # Overflow-safe fallback (unreachable for any graph that fits in
        # memory today): exact per-edge binary search on the CSR rows.
        return np.asarray(
            [self._base.has_edge(int(a), int(b)) for a, b in zip(u, v)], dtype=bool
        )

    def add_edges(self, edges: "Iterable[Tuple[int, int]] | np.ndarray") -> int:
        """Append a batch of edges; returns how many were genuinely novel.

        Self-loops are dropped; endpoints are canonicalized to ``u < v``;
        duplicates within the batch, against earlier insertions, and
        against the base graph are all discarded.  Endpoints outside
        ``[0, num_nodes)`` raise :class:`~repro.errors.GraphFormatError`
        (the node set is fixed).
        """
        arr = np.asarray(edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64)
        if arr.size == 0:
            return 0
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(f"edges must be of shape (m, 2), got {arr.shape}")
        if arr.min() < 0 or arr.max() >= self._num_nodes:
            raise GraphFormatError(
                f"edge endpoints out of range for the fixed node set [0, {self._num_nodes})"
            )
        u = np.minimum(arr[:, 0], arr[:, 1])
        v = np.maximum(arr[:, 0], arr[:, 1])
        keep = u != v
        u, v = u[keep], v[keep]
        if u.size == 0:
            return 0
        # In-batch dedup keeps the *first* occurrence; restore insertion
        # order afterwards (dedup_canonical_edges returns lexsorted pairs).
        lex_u, lex_v = dedup_canonical_edges(u, v, self._num_nodes)
        if lex_u.shape[0] != u.shape[0]:
            seen: "set[Tuple[int, int]]" = set()
            first = np.asarray(
                [not ((a, b) in seen or seen.add((a, b))) for a, b in zip(u.tolist(), v.tolist())],
                dtype=bool,
            )
            u, v = u[first], v[first]
        novel = ~self._in_base(u, v)
        u, v = u[novel], v[novel]
        if u.size:
            pending = self._pending_set
            fresh = np.asarray(
                [(a, b) not in pending for a, b in zip(u.tolist(), v.tolist())], dtype=bool
            )
            u, v = u[fresh], v[fresh]
        if u.size == 0:
            return 0
        self._pending_set.update(zip(u.tolist(), v.tolist()))
        self._pending_u = np.concatenate([self._pending_u, u])
        self._pending_v = np.concatenate([self._pending_v, v])
        return int(u.shape[0])

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(self) -> Graph:
        """The merged graph ``base ∪ pending`` as a fresh immutable CSR.

        One vectorized pass: the base's canonical edge list and the
        pending buffer are disjoint and individually duplicate-free by
        construction, so their concatenation feeds the CSR builder
        directly — no re-deduplication.  The result is cached until the
        next novel insertion; with an empty buffer the base graph itself
        is returned.
        """
        if self._materialized is not None and self._materialized_at == self.num_pending:
            return self._materialized
        base_edges = self._base.edge_array()
        u = np.concatenate([base_edges[:, 0], self._pending_u])
        v = np.concatenate([base_edges[:, 1], self._pending_v])
        self._materialized = Graph._from_canonical_edges(self._num_nodes, u, v)
        self._materialized_at = self.num_pending
        return self._materialized

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDelta(base={self._base!r}, pending={self.num_pending})"
        )
