"""Streaming edge updates with online re-summarization.

The write path of the reproduction: an append-only edge stream over the
static graphs of the paper, served without ever going offline.

* :class:`~repro.streaming.delta.GraphDelta` — append-only edge buffer
  over the immutable CSR graph, with a vectorized ``materialize()``;
* :class:`~repro.streaming.residual.ResidualSource` — a stale summary
  plus the exact correction list of streamed edges (topology never
  stale);
* :class:`~repro.streaming.summarizer.StreamingSummarizer` — cost-drift
  triggered re-summarization of affected machines, hot-swapped into the
  cluster and any attached :class:`~repro.serving.QueryServer`.
"""

from repro.streaming.delta import GraphDelta
from repro.streaming.residual import ResidualSource, correction_bits_per_edge, uncovered_edges
from repro.streaming.summarizer import IngestReport, RefreshReport, StreamingSummarizer

__all__ = [
    "GraphDelta",
    "ResidualSource",
    "correction_bits_per_edge",
    "uncovered_edges",
    "IngestReport",
    "RefreshReport",
    "StreamingSummarizer",
]
