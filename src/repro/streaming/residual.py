"""Residual-corrected query sources: a stale summary plus streamed edges.

Between re-summarizations, a machine must not serve a summary that simply
*ignores* the edges streamed since it was built.  :class:`ResidualSource`
absorbs them the way the paper's cost model already prices erroneous
pairs (footnote 4, :mod:`repro.core.corrections`): as an explicit edge
correction list on top of the summary.  The reconstructed topology of a
residual source is

    ``Ĝ_residual = Ĝ_summary ∪ {streamed edges not already in Ĝ_summary}``

so every streamed edge is visible to queries *immediately* — only the
summary's merge structure is stale, never the topology.  The correction
list is priced at ``2·log2|V|`` bits per edge, which is exactly the
cost-drift signal :class:`~repro.streaming.summarizer.StreamingSummarizer`
uses to decide when a full re-summarization pays for itself.

Query integration: :mod:`repro.queries` answers RWR and PHP through a
:class:`~repro.queries.operator.ReconstructedOperator` extended with the
residual adjacency (``Â = Â_summary + A_residual``), and HOP through a
residual-aware quotient BFS.  With an empty correction list every code
path collapses to the plain summary paths, byte for byte — the anchor
for the hot-swap determinism contract.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util import log2_capped
from repro.core.summary import SummaryGraph
from repro.errors import GraphFormatError
from repro.graph.graph import _PACKED_KEY_MAX_NODES, dedup_canonical_edges

def correction_bits_per_edge(num_nodes: int) -> float:
    """``2·log2|V|`` — the cost of one entry in the correction list."""
    if num_nodes < 1:
        return 0.0
    return 2.0 * log2_capped(max(num_nodes, 1))


def uncovered_edges(
    summary: SummaryGraph, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Mask of canonical pairs **absent** from the summary's reconstruction.

    Vectorized for the common case (unweighted summary, packable node
    count): both the candidate supernode pairs and the superedge set
    reduce to packed int64 keys, and presence is one ``searchsorted``
    against the lexsorted superedge export — no per-edge Python call.
    Weighted summaries (baseline output only) take the scalar
    ``superedge_density`` path, which also covers degenerate blocks.
    """
    if u.size == 0:
        return np.zeros(0, dtype=bool)
    supernode_of = summary.supernode_of
    sa, sb = supernode_of[u], supernode_of[v]
    lo, hi = np.minimum(sa, sb), np.maximum(sa, sb)
    if not summary.is_weighted and summary.num_nodes <= _PACKED_KEY_MAX_NODES:
        se_lo, se_hi, _ = summary.superedge_arrays()
        n = np.int64(summary.num_nodes)
        keys = se_lo * n + se_hi  # lexsorted export ⇒ sorted keys
        candidates = lo * n + hi
        pos = np.searchsorted(keys, candidates)
        hit = pos < keys.shape[0]
        hit[hit] = keys[pos[hit]] == candidates[hit]
        return ~hit
    return np.asarray(
        [
            summary.superedge_density(int(a), int(b)) <= 0.0
            for a, b in zip(lo.tolist(), hi.tolist())
        ],
        dtype=bool,
    )


class ResidualSource:
    """A summary graph overlaid with an exact residual edge list.

    Parameters
    ----------
    summary:
        The (stale) summary graph; not mutated, and never read beyond its
        partition/superedge structure — the worker-side serving rebuild
        hands it an edgeless stand-in input graph.
    edges:
        Candidate residual edges as an ``(k, 2)`` array (any orientation).
        Self-loops are dropped, pairs are canonicalized and deduplicated,
        and edges whose node pair is **already present in the summary's
        reconstruction** are discarded — they carry no correction.
    assume_filtered:
        Skip the canonicalization/filtering pass because *edges* is known
        to be an already-filtered export (the shared-memory serving
        rebuild path, where re-filtering would only repeat work).
    """

    def __init__(
        self,
        summary: SummaryGraph,
        edges: "np.ndarray | None" = None,
        *,
        assume_filtered: bool = False,
    ):
        self.summary = summary
        num_nodes = summary.num_nodes
        arr = (
            np.empty((0, 2), dtype=np.int64)
            if edges is None
            else np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        )
        if arr.size and (arr.min() < 0 or arr.max() >= num_nodes):
            raise GraphFormatError("residual edge endpoints out of range")
        if assume_filtered or arr.size == 0:
            # Canonical and novel already; lexsort so the stored order —
            # and with it every float accumulation downstream — is
            # independent of how the caller assembled the list.
            u, v = arr[:, 0].copy(), arr[:, 1].copy()
            order = np.lexsort((v, u))
            u, v = u[order], v[order]
        else:
            u = np.minimum(arr[:, 0], arr[:, 1])
            v = np.maximum(arr[:, 0], arr[:, 1])
            keep = u != v
            u, v = u[keep], v[keep]
            u, v = dedup_canonical_edges(u, v, num_nodes)
            if u.size:
                novel = uncovered_edges(summary, u, v)
                u, v = u[novel], v[novel]
        self.extra_u = u
        self.extra_v = v
        self.extra_u.setflags(write=False)
        self.extra_v.setflags(write=False)
        self._adjacency: "Tuple[np.ndarray, np.ndarray] | None" = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of input-graph nodes ``|V|``."""
        return self.summary.num_nodes

    @property
    def num_extra(self) -> int:
        """Number of residual correction edges."""
        return self.extra_u.shape[0]

    def extra_edge_array(self) -> np.ndarray:
        """The residual edges as an ``(k, 2)`` canonical array."""
        edges = np.column_stack([self.extra_u, self.extra_v])
        edges.setflags(write=False)
        return edges

    def extra_directed(self) -> Tuple[np.ndarray, np.ndarray]:
        """Residual adjacency as directed ``(heads, tails)`` arrays.

        Each undirected residual edge appears in both directions, so the
        pair plugs straight into bincount-style operator arithmetic.
        """
        heads = np.concatenate([self.extra_u, self.extra_v])
        tails = np.concatenate([self.extra_v, self.extra_u])
        return heads, tails

    def _extra_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        heads, tails = self.extra_directed()
        order = np.lexsort((tails, heads))
        heads, tails = heads[order], tails[order]
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, heads + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, tails

    def extra_neighbors(self, node: int) -> np.ndarray:
        """Sorted residual neighbors of *node* (empty array when none)."""
        if not 0 <= node < self.num_nodes:
            raise GraphFormatError(f"node {node} out of range")
        if self._adjacency is None:
            self._adjacency = self._extra_csr()
        indptr, tails = self._adjacency
        return tails[indptr[node] : indptr[node + 1]]

    def reconstructed_neighbors(self, node: int) -> np.ndarray:
        """Neighbors of *node* in ``Ĝ_residual`` (Alg. 4 plus corrections)."""
        base = self.summary.reconstructed_neighbors(node)
        extra = self.extra_neighbors(node)
        if extra.size == 0:
            return base
        return np.union1d(base, extra)

    # ------------------------------------------------------------------
    # size model
    # ------------------------------------------------------------------
    def correction_bits(self) -> float:
        """Bits spent naming the residual edges (footnote 4 pricing)."""
        return self.num_extra * correction_bits_per_edge(self.num_nodes)

    def size_in_bits(self) -> float:
        """Summary bits plus correction bits — what the machine holds."""
        return self.summary.size_in_bits() + self.correction_bits()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResidualSource(num_nodes={self.num_nodes}, "
            f"supernodes={self.summary.num_supernodes}, extra={self.num_extra})"
        )
