"""Penalized hitting probability (PHP) queries (Sect. V-A of the paper).

PHP of node ``u`` w.r.t. a query node ``q`` is defined recursively:

    ``PHP_u = 1``                                     if ``u = q``
    ``PHP_u = c · Σ_{v ∈ N_u} (w_uv / w_u) · PHP_v``  otherwise

with continuation ``c = 0.95`` in the paper.  The fixpoint is computed by
damped iteration; on summary graphs the row-normalized adjacency product
runs in supernode space via :class:`~repro.queries.operator.ReconstructedOperator`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.queries.operator import QuerySource, ReconstructedOperator

DEFAULT_CONTINUATION = 0.95


def php_scores(
    source: QuerySource,
    query: int,
    *,
    continuation: float = DEFAULT_CONTINUATION,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    use_weights: bool = True,
    operator: "ReconstructedOperator | None" = None,
) -> np.ndarray:
    """PHP score vector w.r.t. *query* (entries in ``[0, 1]``).

    Parameters mirror :func:`repro.queries.rwr.rwr_scores`; ``continuation``
    is the penalty factor ``c`` (paper: 0.95).
    """
    if not 0.0 < continuation < 1.0:
        raise QueryError(f"continuation must be in (0, 1), got {continuation}")
    op = operator if operator is not None else ReconstructedOperator(source, use_weights=use_weights)
    n = op.num_nodes
    if not 0 <= query < n:
        raise QueryError(f"query node {query} out of range")
    degrees = op.degrees()
    positive = degrees > 0.0
    safe_degrees = np.where(positive, degrees, 1.0)

    scores = np.zeros(n, dtype=np.float64)
    scores[query] = 1.0
    for _ in range(max_iterations):
        new_scores = continuation * op.matvec(scores) / safe_degrees
        new_scores[~positive] = 0.0
        new_scores[query] = 1.0
        if np.abs(new_scores - scores).sum() < tolerance:
            scores = new_scores
            break
        scores = new_scores
    return np.clip(scores, 0.0, 1.0)


def php_scores_reference(
    source: QuerySource,
    query: int,
    *,
    continuation: float = DEFAULT_CONTINUATION,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Neighborhood-query PHP for validating the operator path in tests."""
    from repro.queries.neighbors import approximate_neighbors

    num_nodes = source.num_nodes
    neighbor_cache = [approximate_neighbors(source, u) for u in range(num_nodes)]
    scores = np.zeros(num_nodes, dtype=np.float64)
    scores[query] = 1.0
    for _ in range(max_iterations):
        new_scores = np.zeros(num_nodes, dtype=np.float64)
        for u in range(num_nodes):
            neighbors = neighbor_cache[u]
            if u == query or neighbors.size == 0:
                continue
            new_scores[u] = continuation * scores[neighbors].sum() / neighbors.size
        new_scores[query] = 1.0
        if np.abs(new_scores - scores).sum() < tolerance:
            scores = new_scores
            break
        scores = new_scores
    return np.clip(scores, 0.0, 1.0)
