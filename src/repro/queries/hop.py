"""HOP queries — shortest-path hop counts from a query node (Alg. 5).

On a summary graph the BFS runs over the **supernode quotient graph**:
every member of a supernode is structurally identical in ``Ĝ`` (identical
reconstructed neighborhoods up to self-exclusion), so a whole supernode is
assigned a distance the moment it is first reached.  Only the query node's
own supernode needs care: its *other* members are not at distance 0 — they
are reached when some frontier supernode (possibly ``S_q`` itself, through
a self-loop) has a superedge to ``S_q``.

Unreachable nodes get the length of the longest shortest path observed
(the convention of Sect. V-A), or ``-1`` with ``unreachable="raw"``.
"""

from __future__ import annotations

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.queries.operator import QuerySource

_UNREACHABLE_MODES = ("longest", "raw")


def _fill_unreachable(dist: np.ndarray, mode: str) -> np.ndarray:
    if mode == "raw":
        return dist
    reached = dist[dist >= 0]
    longest = int(reached.max()) if reached.size else 0
    filled = dist.copy()
    filled[filled < 0] = longest
    return filled


def _summary_bfs(summary: SummaryGraph, query: int) -> np.ndarray:
    """BFS distances in ``Ĝ`` computed over the supernode quotient graph."""
    dist = np.full(summary.num_nodes, -1, dtype=np.int64)
    dist[query] = 0
    home = int(summary.supernode_of[query])

    def present(a: int, b: int) -> bool:
        # Weighted summaries: positive-weight superedges are present.
        return summary.superedge_density(a, b) > 0.0 if summary.is_weighted else True

    visited = set()  # supernodes whose members are all assigned
    home_complete = summary.member_count(home) == 1
    if home_complete:
        visited.add(home)
    frontier = [home]
    level = 0
    while frontier:
        level += 1
        reached = set()
        for a in frontier:
            for b in summary.superedge_neighbors(a):
                if present(a, b):
                    reached.add(b)
        frontier = []
        for b in reached:
            if b in visited:
                continue
            members = summary.member_list(b)
            if b == home:
                for u in members:
                    if u != query:
                        dist[u] = level
                home_complete = True
            else:
                for u in members:
                    dist[u] = level
                frontier.append(b)
            visited.add(b)
        # The home supernode never re-expands: its superedge neighbors were
        # already assigned level 1 when the walk started from the query.
    return dist


def _residual_bfs(source, query: int) -> np.ndarray:
    """BFS distances in ``Ĝ_residual`` (summary quotient plus residual edges).

    Runs the quotient-space expansion of :func:`_summary_bfs` — a
    supernode expands at most once, assigning a whole member block per
    superedge — interleaved with node-level expansion along the residual
    correction edges.  With no residual edges the produced distances are
    exactly those of :func:`_summary_bfs` (pinned by a regression test):
    the level sets of a BFS depend only on the reachability structure,
    which is identical.
    """
    summary = source.summary
    dist = np.full(summary.num_nodes, -1, dtype=np.int64)
    dist[query] = 0
    supernode_of = summary.supernode_of
    weighted = summary.is_weighted

    def present(a: int, b: int) -> bool:
        return summary.superedge_density(a, b) > 0.0 if weighted else True

    expanded = set()  # supernodes whose superedge neighborhood was applied
    frontier = [query]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        reached = set()
        for u in frontier:
            home = int(supernode_of[u])
            if home not in expanded:
                expanded.add(home)
                for b in summary.superedge_neighbors(home):
                    if present(home, b):
                        reached.add(b)
        for b in reached:
            # Every member of an adjacent supernode is a reconstructed
            # neighbor of every frontier member of the expanding one; the
            # per-node self-exclusion of Alg. 4 is moot here because the
            # expanding node already has a distance.
            for v in summary.member_list(b):
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        for u in frontier:
            for v in source.extra_neighbors(u).tolist():
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return dist


def hop_distances_reference(
    source: QuerySource, query: int, *, unreachable: str = "longest"
) -> np.ndarray:
    """Literal Alg. 5: BFS driven by ``getNeighbors`` (Alg. 4) calls.

    This is the query-processing model the paper times in Fig. 8(b): every
    expansion materializes a node's reconstructed neighborhood, so BFS over
    the *dense* weighted summaries of SAAGs / k-Grass / S2L is much slower
    than over PeGaSus' sparse ones.  :func:`hop_distances` is the
    quotient-space optimization; this function exists for validation and
    for the Fig. 8 timing comparison.
    """
    if unreachable not in _UNREACHABLE_MODES:
        raise QueryError(f"unreachable must be one of {_UNREACHABLE_MODES}")
    from repro.queries.neighbors import approximate_neighbors

    num_nodes = source.num_nodes
    if not 0 <= query < num_nodes:
        raise QueryError(f"query node {query} out of range")
    dist = np.full(num_nodes, -1, dtype=np.int64)
    dist[query] = 0
    frontier = [query]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in approximate_neighbors(source, u).tolist():
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return _fill_unreachable(dist, unreachable)


def hop_distances(source: QuerySource, query: int, *, unreachable: str = "longest") -> np.ndarray:
    """Hop counts from *query* to every node (Alg. 5).

    Parameters
    ----------
    source:
        Graph (exact) or summary graph (approximate, quotient-space BFS).
    query:
        The query node ``q``.
    unreachable:
        ``"longest"`` (paper convention: fill with the longest observed
        shortest path) or ``"raw"`` (keep ``-1``).
    """
    if unreachable not in _UNREACHABLE_MODES:
        raise QueryError(f"unreachable must be one of {_UNREACHABLE_MODES}")
    if isinstance(source, Graph):
        dist = bfs_distances(source, query)
    elif isinstance(source, SummaryGraph):
        if not 0 <= query < source.num_nodes:
            raise QueryError(f"query node {query} out of range")
        dist = _summary_bfs(source, query)
    else:
        from repro.queries.operator import as_residual_source

        residual = as_residual_source(source)
        if residual is None:
            raise QueryError(f"unsupported query source: {type(source).__name__}")
        if not 0 <= query < residual.num_nodes:
            raise QueryError(f"query node {query} out of range")
        dist = _residual_bfs(residual, query)
    return _fill_unreachable(dist, unreachable)
