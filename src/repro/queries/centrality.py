"""Whole-graph queries from Appendix A: degrees, clustering coefficients,
PageRank, and eigenvector centrality.

The paper's introduction motivates graph summarization by the fact that
"node degrees, clustering coefficients, eigenvector centrality, hops
between nodes, and random walk with restart" all access graphs only through
the neighborhood query and therefore run directly on summary graphs.  The
node-similarity queries live in their own modules (:mod:`repro.queries.rwr`
etc.); this module covers the remaining global statistics.
"""

from __future__ import annotations

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.queries.neighbors import approximate_neighbors
from repro.queries.operator import QuerySource, ReconstructedOperator


def degree_vector(source: QuerySource, *, use_weights: bool = True) -> np.ndarray:
    """(Reconstructed) degrees of all nodes — the degree query of [10]."""
    return ReconstructedOperator(source, use_weights=use_weights).degrees()


def _has_edge(source: QuerySource, u: int, v: int) -> bool:
    if isinstance(source, Graph):
        return source.has_edge(u, v)
    return source.reconstructed_has_edge(u, v)


def clustering_coefficient(source: QuerySource, node: int) -> float:
    """Local clustering coefficient of *node* in the (reconstructed) graph.

    ``2 · #edges(N(u)) / (deg(u) · (deg(u) − 1))``; 0 for degree < 2.  Runs
    in ``O(deg²)`` edge probes, each O(1) on both graphs and summaries.
    """
    neighbors = approximate_neighbors(source, node)
    k = neighbors.size
    if k < 2:
        return 0.0
    links = 0
    neighbor_list = neighbors.tolist()
    for i in range(k):
        for j in range(i + 1, k):
            if _has_edge(source, neighbor_list[i], neighbor_list[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(source: QuerySource, *, sample: "int | None" = None, seed: int = 0) -> float:
    """Mean local clustering coefficient, optionally over a node sample."""
    n = source.num_nodes
    if n == 0:
        return 0.0
    if sample is not None and sample < n:
        rng = np.random.default_rng(seed)
        nodes = rng.choice(n, size=sample, replace=False)
    else:
        nodes = np.arange(n)
    return float(np.mean([clustering_coefficient(source, int(u)) for u in nodes]))


def pagerank(
    source: QuerySource,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    use_weights: bool = True,
) -> np.ndarray:
    """Global PageRank on the (reconstructed) graph; sums to 1.

    Dangling mass is redistributed uniformly, the standard convention.
    """
    if not 0.0 < damping < 1.0:
        raise QueryError(f"damping must be in (0, 1), got {damping}")
    op = ReconstructedOperator(source, use_weights=use_weights)
    n = op.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.float64)
    degrees = op.degrees()
    positive = degrees > 0.0
    safe = np.where(positive, degrees, 1.0)
    ranks = np.full(n, 1.0 / n, dtype=np.float64)
    for _ in range(max_iterations):
        spread = op.matvec(np.where(positive, ranks / safe, 0.0))
        dangling = ranks[~positive].sum()
        new_ranks = damping * (spread + dangling / n) + (1.0 - damping) / n
        if np.abs(new_ranks - ranks).sum() < tolerance:
            ranks = new_ranks
            break
        ranks = new_ranks
    return ranks / ranks.sum()


def eigenvector_centrality(
    source: QuerySource,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
    use_weights: bool = True,
) -> np.ndarray:
    """Principal-eigenvector centrality (power iteration, L2-normalized).

    The centrality the paper cites [11] as answerable from summary graphs.
    Returns the all-zero vector for edgeless graphs.
    """
    op = ReconstructedOperator(source, use_weights=use_weights)
    n = op.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.float64)
    vector = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    for _ in range(max_iterations):
        nxt = op.matvec(vector)
        norm = np.linalg.norm(nxt)
        if norm == 0.0:
            return np.zeros(n, dtype=np.float64)
        nxt /= norm
        if np.abs(nxt - vector).sum() < tolerance:
            vector = nxt
            break
        vector = nxt
    return np.abs(vector)
