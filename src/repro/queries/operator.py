"""Matrix-free products with the (reconstructed) adjacency matrix.

Iterative queries (RWR, PHP) only need ``y = Â x`` and row sums of ``Â``.
On the input graph that is a CSR gather; on a summary graph the product
can be computed **in supernode space** without materializing ``Ĝ``:

    ``(Â x)_u = Σ_{B ∈ adj(S_u)} m_{S_u B} · X_B  −  m_{S_u S_u} · x_u``

where ``X_B = Σ_{v∈B} x_v`` and ``m_AB`` is the block density (1 for
unweighted summaries, stored-count/pairs for weighted ones).  This makes a
power-iteration step ``O(|V| + |P|)`` instead of ``O(|Ê|)`` — the reason
queries on sparse PeGaSus summaries are fast in Fig. 8 while queries on the
dense baseline summaries are not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import QueryError
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.streaming.residual import ResidualSource

#: Query sources the operator (and every query) accepts; the streaming
#: layer's ``ResidualSource`` joins as a forward reference so the module
#: never imports it at runtime (no import cycle).
QuerySource = Union[Graph, SummaryGraph, "ResidualSource"]


def as_residual_source(source: object):
    """The source as a :class:`~repro.streaming.residual.ResidualSource`, or ``None``.

    Imported lazily: by the time a residual source reaches a query, the
    streaming package is necessarily loaded, so this never triggers a
    circular import at module-load time.
    """
    from repro.streaming.residual import ResidualSource

    return source if isinstance(source, ResidualSource) else None


class ReconstructedOperator:
    """Linear operator for ``Â`` of a graph, summary graph, or residual source.

    Parameters
    ----------
    source:
        A :class:`Graph` (``Â = A``, exact), a :class:`SummaryGraph`, or a
        :class:`~repro.streaming.residual.ResidualSource` (summary plus
        residual correction edges, ``Â = Â_summary + A_residual``).
    use_weights:
        For weighted summaries, decode superedges as densities; with
        ``False`` any superedge is treated as a full block (presence-only).
        Ignored for graphs and unweighted summaries.
    """

    def __init__(self, source: QuerySource, *, use_weights: bool = True):
        self.source = source
        self.use_weights = use_weights
        if isinstance(source, Graph):
            self._init_graph(source)
        elif isinstance(source, SummaryGraph):
            self._init_summary(source)
        else:
            residual = as_residual_source(source)
            if residual is None:
                raise QueryError(f"unsupported query source: {type(source).__name__}")
            self._init_residual(residual)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _init_graph(self, graph: Graph) -> None:
        self.num_nodes = graph.num_nodes
        self._mode = "graph"
        self._heads = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees())
        self._tails = graph.indices
        self._degrees = graph.degrees().astype(np.float64)

    def _init_summary(self, summary: SummaryGraph) -> None:
        self.num_nodes = summary.num_nodes
        self._mode = "summary"
        # Compact live supernode ids to 0..k-1 without walking the member
        # dicts: the sorted unique of the partition array IS the live-id
        # list, and a bincount over the compacted labels gives the sizes.
        order = np.unique(summary.supernode_of)
        k = order.size
        self._num_supernodes = k
        self._compact = np.searchsorted(order, summary.supernode_of)
        sizes = np.bincount(self._compact, minlength=k).astype(np.float64)

        # The lexsorted columnar export keeps the operator — and hence every
        # query answer — numerically identical across storage backends.
        lo, hi, weights = summary.superedge_arrays()
        lo_pos = np.searchsorted(order, lo)
        hi_pos = np.searchsorted(order, hi)
        if summary.is_weighted and self.use_weights and weights is not None:
            pairs = np.where(
                lo == hi,
                sizes[lo_pos] * (sizes[lo_pos] - 1.0) / 2.0,
                sizes[lo_pos] * sizes[hi_pos],
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                density = np.where(pairs > 0.0, np.minimum(weights / pairs, 1.0), 0.0)
        else:
            density = np.ones(lo.shape[0], dtype=np.float64)
        keep = density > 0.0
        lo_pos, hi_pos, density = lo_pos[keep], hi_pos[keep], density[keep]
        self_mask = lo[keep] == hi[keep]

        self._self_density = np.zeros(k, dtype=np.float64)
        self._self_density[lo_pos[self_mask]] = density[self_mask]
        cross = ~self_mask
        self._cross_a = lo_pos[cross]
        self._cross_b = hi_pos[cross]
        self._cross_m = density[cross]

        # Per-supernode total: Σ_B m_AB |B| (self-loop contributes m·|A|).
        super_total = self._self_density * sizes
        np.add.at(super_total, self._cross_a, self._cross_m * sizes[self._cross_b])
        np.add.at(super_total, self._cross_b, self._cross_m * sizes[self._cross_a])
        # deg(u) = total(S_u) − m_{S_u S_u}  (a node is not its own neighbor).
        self._degrees = super_total[self._compact] - self._self_density[self._compact]
        self._degrees = np.maximum(self._degrees, 0.0)

    def _init_residual(self, residual) -> None:
        """Summary operator plus the residual adjacency (``Â_s + A_r``).

        The residual edges are disjoint from the summary's reconstruction
        by construction, so the sum never double-counts a pair.  With an
        empty correction list the built operator *is* the summary
        operator — same mode, same arrays, same bytes — which is what
        makes a just-refreshed machine's answers indistinguishable from a
        never-streamed one's.
        """
        self._init_summary(residual.summary)
        if residual.num_extra == 0:
            return
        self._mode = "residual"
        heads, tails = residual.extra_directed()
        self._extra_heads = heads
        self._extra_tails = tails
        self._degrees = self._degrees + np.bincount(
            heads, minlength=self.num_nodes
        ).astype(np.float64)

    # ------------------------------------------------------------------
    # operator interface
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Row sums of ``Â`` (weighted degrees in the reconstructed graph)."""
        return self._degrees

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``Â x`` for a vector with one entry per node."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_nodes,):
            raise QueryError(f"vector must have shape ({self.num_nodes},), got {x.shape}")
        if self._mode == "graph":
            if self._tails.size == 0:
                return np.zeros(self.num_nodes, dtype=np.float64)
            return np.bincount(self._heads, weights=x[self._tails], minlength=self.num_nodes)
        block_sums = np.bincount(self._compact, weights=x, minlength=self._num_supernodes)
        contrib = self._self_density * block_sums
        if self._cross_a.size:
            np.add.at(contrib, self._cross_a, self._cross_m * block_sums[self._cross_b])
            np.add.at(contrib, self._cross_b, self._cross_m * block_sums[self._cross_a])
        result = contrib[self._compact] - self._self_density[self._compact] * x
        if self._mode == "residual":
            result += np.bincount(
                self._extra_heads, weights=x[self._extra_tails], minlength=self.num_nodes
            )
        return result
