"""Approximate query answering on graphs and summary graphs (Appendix A).

Every query here runs identically on an input :class:`~repro.graph.Graph`
(exact answers / ground truth) and on a
:class:`~repro.core.summary.SummaryGraph` (approximate answers from the
compressed representation, per Alg. 4's ``getNeighbors`` primitive):

* :func:`approximate_neighbors` — the neighborhood query (Alg. 4);
* :func:`hop_distances` — HOP, BFS shortest-path lengths (Alg. 5);
* :func:`rwr_scores` — random walk with restart (Alg. 6);
* :func:`php_scores` — penalized hitting probability.

Weighted baseline summaries are handled through their density decoding
("queries were processed considering superedge weights", Sect. V-A).
"""

from repro.queries.neighbors import approximate_neighbors
from repro.queries.operator import ReconstructedOperator
from repro.queries.hop import hop_distances
from repro.queries.rwr import rwr_scores
from repro.queries.php import php_scores
from repro.queries.centrality import (
    average_clustering,
    clustering_coefficient,
    degree_vector,
    eigenvector_centrality,
    pagerank,
)

__all__ = [
    "approximate_neighbors",
    "ReconstructedOperator",
    "hop_distances",
    "rwr_scores",
    "php_scores",
    "average_clustering",
    "clustering_coefficient",
    "degree_vector",
    "eigenvector_centrality",
    "pagerank",
]
