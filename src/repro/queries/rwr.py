"""Random walk with restart (Alg. 6 of the paper).

The RWR score of a node w.r.t. a query node ``q`` is the stationary
probability of a walker that, at each step, follows a uniform random edge
with probability ``p`` and teleports back to ``q`` otherwise.  The paper
uses restart probability 0.05 (``p = 0.95``).

Following Alg. 6, one iteration damps the spread by ``p`` and assigns the
missing probability mass to the query node — which also neutralizes
dangling (degree-0) nodes without special-casing them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.queries.operator import QuerySource, ReconstructedOperator

DEFAULT_RESTART = 0.05


def rwr_scores(
    source: QuerySource,
    query: int,
    *,
    restart: float = DEFAULT_RESTART,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    use_weights: bool = True,
    operator: "ReconstructedOperator | None" = None,
) -> np.ndarray:
    """RWR score vector w.r.t. *query* (sums to 1).

    Parameters
    ----------
    source:
        Graph (exact) or summary graph (approximate).
    query:
        The restart node ``q``.
    restart:
        Restart probability (paper: 0.05).
    tolerance, max_iterations:
        L1 convergence control for the power iteration.
    use_weights:
        Decode weighted summaries through block densities (Sect. V-A).
    operator:
        Optional prebuilt operator, reused across many queries on the same
        source (the multi-query setting of Sect. IV).
    """
    if not 0.0 < restart < 1.0:
        raise QueryError(f"restart must be in (0, 1), got {restart}")
    op = operator if operator is not None else ReconstructedOperator(source, use_weights=use_weights)
    n = op.num_nodes
    if not 0 <= query < n:
        raise QueryError(f"query node {query} out of range")
    degrees = op.degrees()
    safe_degrees = np.where(degrees > 0.0, degrees, 1.0)
    walk = 1.0 - restart

    scores = np.full(n, 1.0 / max(n, 1), dtype=np.float64)
    for _ in range(max_iterations):
        spread = op.matvec(np.where(degrees > 0.0, scores / safe_degrees, 0.0))
        new_scores = walk * spread
        new_scores[query] += 1.0 - new_scores.sum()
        if np.abs(new_scores - scores).sum() < tolerance:
            scores = new_scores
            break
        scores = new_scores
    return scores


def rwr_scores_reference(
    source: QuerySource,
    query: int,
    *,
    restart: float = DEFAULT_RESTART,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Literal Alg. 6: neighborhood queries in a Python loop.

    Exponentially slower than :func:`rwr_scores`; exists to validate the
    vectorized supernode-space operator in tests.
    """
    from repro.queries.neighbors import approximate_neighbors

    if isinstance(source, (int, float)):
        raise QueryError("source must be a graph or summary graph")
    num_nodes = source.num_nodes
    neighbor_cache = [approximate_neighbors(source, u) for u in range(num_nodes)]
    walk = 1.0 - restart
    scores = np.full(num_nodes, 1.0 / max(num_nodes, 1), dtype=np.float64)
    for _ in range(max_iterations):
        new_scores = np.zeros(num_nodes, dtype=np.float64)
        for u in range(num_nodes):
            neighbors = neighbor_cache[u]
            if neighbors.size == 0:
                continue
            new_scores[neighbors] += scores[u] / neighbors.size
        new_scores *= walk
        new_scores[query] += 1.0 - new_scores.sum()
        if np.abs(new_scores - scores).sum() < tolerance:
            scores = new_scores
            break
        scores = new_scores
    return scores
