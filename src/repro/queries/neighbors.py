"""The neighborhood query (Alg. 4: ``getNeighbors``).

This is the primitive Appendix A builds every other query on: BFS, DFS,
Dijkstra, PageRank, RWR, ... all touch the graph only through "give me the
neighbors of node u", which a summary graph answers without reconstructing
``Ĝ``.
"""

from __future__ import annotations

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.queries.operator import QuerySource


def approximate_neighbors(source: QuerySource, node: int) -> np.ndarray:
    """Neighbors of *node* in *source* (exact on graphs, Alg. 4 on summaries).

    Returns a sorted array of node ids.  For weighted summaries, any
    superedge with positive weight counts as present (the density decoding
    only matters for value-weighted queries like RWR/PHP).
    """
    if isinstance(source, Graph):
        return np.asarray(source.neighbors(node))
    if isinstance(source, SummaryGraph):
        return source.reconstructed_neighbors(node)
    from repro.queries.operator import as_residual_source

    residual = as_residual_source(source)
    if residual is not None:
        return residual.reconstructed_neighbors(node)
    raise QueryError(f"unsupported query source: {type(source).__name__}")
