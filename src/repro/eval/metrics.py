"""Accuracy measures from Sect. V-A of the paper.

* :func:`smape` — Symmetric Mean Absolute Percentage Error (lower is
  better).  The paper's formula sums ``|x_u − x̂_u| / (|x_u| + |x̂_u|)``
  over nodes with the ``0/0 := 0`` convention; we report the **mean** over
  nodes so the score is bounded by 1 as in the paper's figures.
* :func:`spearman_correlation` — Spearman rank correlation (higher is
  better): Pearson correlation of average-tie ranks, the ranking-centric
  measure the paper prefers for graph applications.
* :func:`relative_personalized_error` — the Fig. 5 measure: personalized
  error of a summary relative to a non-personalized reference summary of
  similar size.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import personalized_error
from repro.core.summary import SummaryGraph
from repro.core.weights import PersonalizedWeights


def smape(exact: np.ndarray, approximate: np.ndarray) -> float:
    """Symmetric mean absolute percentage error, in ``[0, 1]``."""
    x = np.asarray(exact, dtype=np.float64)
    y = np.asarray(approximate, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size == 0:
        return 0.0
    denominator = np.abs(x) + np.abs(y)
    numerator = np.abs(x - y)
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(denominator > 0.0, numerator / denominator, 0.0)
    return float(terms.mean())


def rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank.

    Matches :func:`scipy.stats.rankdata` with ``method="average"``; written
    out so the core library has no scipy dependency.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # Average the ranks within each tie group.
    sorted_vals = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0) + 1
    start = 0
    for end in list(boundaries) + [values.size]:
        if end - start > 1:
            ranks[order[start:end]] = ranks[order[start:end]].mean()
        start = end
    return ranks


def spearman_correlation(exact: np.ndarray, approximate: np.ndarray) -> float:
    """Spearman rank correlation coefficient in ``[-1, 1]``.

    Returns 0.0 when either ranking is constant (undefined correlation), a
    convention that penalizes degenerate all-equal approximations.
    """
    x = np.asarray(exact, dtype=np.float64)
    y = np.asarray(approximate, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        return 0.0
    rx = rankdata(x)
    ry = rankdata(y)
    sx = rx.std()
    sy = ry.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    covariance = float(((rx - rx.mean()) * (ry - ry.mean())).mean())
    return covariance / (sx * sy)


def relative_personalized_error(
    summary: SummaryGraph,
    reference: SummaryGraph,
    weights: PersonalizedWeights,
) -> float:
    """``RE^(T)(summary) / RE^(T)(reference)`` — the Fig. 5 y-axis.

    Values below 1 mean *summary* preserves the neighborhood of the targets
    better than the (typically non-personalized) *reference* of similar
    size.  Returns ``inf`` when the reference has zero error but the
    summary does not, and 1 when both are exact.
    """
    numerator = personalized_error(summary, weights)
    denominator = personalized_error(reference, weights)
    if denominator == 0.0:
        return 1.0 if numerator == 0.0 else float("inf")
    return numerator / denominator
