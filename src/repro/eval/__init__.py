"""Evaluation: the paper's accuracy measures and experiment harness."""

from repro.eval.metrics import (
    rankdata,
    relative_personalized_error,
    smape,
    spearman_correlation,
)
from repro.eval.harness import (
    QueryAccuracy,
    evaluate_query_accuracy,
    sample_query_nodes,
    time_call,
)

__all__ = [
    "rankdata",
    "relative_personalized_error",
    "smape",
    "spearman_correlation",
    "QueryAccuracy",
    "evaluate_query_accuracy",
    "sample_query_nodes",
    "time_call",
]
