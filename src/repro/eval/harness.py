"""Experiment harness: query-accuracy evaluation shared by Figs. 7, 9–12.

The recurring experiment shape in the paper's evaluation is

    sample query nodes → answer each query exactly on ``G`` and
    approximately on a summary → average SMAPE / Spearman over queries

packaged here as :func:`evaluate_query_accuracy` so every benchmark and
example reports numbers the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from repro._util import ensure_rng
from repro.errors import QueryError
from repro.eval.metrics import smape, spearman_correlation
from repro.graph.graph import Graph
from repro.queries.hop import hop_distances
from repro.queries.operator import QuerySource, ReconstructedOperator
from repro.queries.php import php_scores
from repro.queries.rwr import rwr_scores

QUERY_TYPES = ("rwr", "hop", "php")


@dataclass
class QueryAccuracy:
    """Averaged accuracy of one (summary, query type) combination."""

    query_type: str
    smape: float
    spearman: float
    num_queries: int


def sample_query_nodes(
    graph: Graph, count: int, *, seed: "int | np.random.Generator | None" = 0
) -> np.ndarray:
    """*count* query nodes sampled uniformly without replacement (Sect. V-D)."""
    rng = ensure_rng(seed)
    count = min(count, graph.num_nodes)
    return np.sort(rng.choice(graph.num_nodes, size=count, replace=False))


def _answer(source: QuerySource, query_type: str, node: int, operator: "ReconstructedOperator | None") -> np.ndarray:
    if query_type == "rwr":
        return rwr_scores(source, node, operator=operator)
    if query_type == "hop":
        return hop_distances(source, node).astype(np.float64)
    if query_type == "php":
        return php_scores(source, node, operator=operator)
    raise QueryError(f"unknown query type {query_type!r}; choose from {QUERY_TYPES}")


def evaluate_query_accuracy(
    graph: Graph,
    summary: QuerySource,
    query_nodes: Iterable[int],
    *,
    query_types: Tuple[str, ...] = QUERY_TYPES,
    answer_on: "Callable[[int, str], np.ndarray] | None" = None,
) -> Dict[str, QueryAccuracy]:
    """SMAPE and Spearman of summary answers vs exact answers, per query type.

    Parameters
    ----------
    graph:
        Ground-truth graph.
    summary:
        The approximate source (summary graph, or any
        :class:`~repro.queries.operator.QuerySource`).  Ignored when
        *answer_on* is given.
    query_nodes:
        Query nodes; results are averaged over them (Sect. V-A).
    query_types:
        Subset of ``("rwr", "hop", "php")``.
    answer_on:
        Optional override ``(node, query_type) -> score vector`` for
        settings where different queries hit different sources (the
        distributed application, Alg. 3).
    """
    nodes = [int(q) for q in query_nodes]
    exact_operator = ReconstructedOperator(graph)
    summary_operator = None
    if answer_on is None and not isinstance(summary, Graph):
        summary_operator = ReconstructedOperator(summary)

    results: Dict[str, QueryAccuracy] = {}
    for query_type in query_types:
        if query_type not in QUERY_TYPES:
            raise QueryError(f"unknown query type {query_type!r}")
        smape_values: List[float] = []
        spearman_values: List[float] = []
        for node in nodes:
            exact = _answer(graph, query_type, node, exact_operator)
            if answer_on is not None:
                approximate = answer_on(node, query_type)
            else:
                approximate = _answer(summary, query_type, node, summary_operator)
            smape_values.append(smape(exact, approximate))
            spearman_values.append(spearman_correlation(exact, approximate))
        results[query_type] = QueryAccuracy(
            query_type=query_type,
            smape=float(np.mean(smape_values)) if smape_values else 0.0,
            spearman=float(np.mean(spearman_values)) if spearman_values else 0.0,
            num_queries=len(nodes),
        )
    return results


def time_call(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run *fn* and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
