"""The network-facing serving tier: asyncio TCP in front of the tenants.

:class:`NetServer` binds a TCP socket and speaks the length-prefixed
protocol of :mod:`repro.serving.protocol` in front of a
:class:`~repro.serving.tenancy.TenantHost`:

* **Handshake** — the first frame of every connection is a JSON hello
  ``{"op": "hello", "encodings": [...]}``; the server picks the message
  encoding (msgpack when both sides have it, JSON otherwise), answers
  with the chosen encoding and the tenant directory, and the connection
  switches to it.
* **Pipelining** — query frames carry a client-chosen ``id`` and are
  answered concurrently, possibly out of order; the client matches
  replies by id.  One slow query never blocks the connection.
* **Faults** — a *corrupt frame* gets a typed error reply (best effort)
  and the connection is closed (the stream position is unrecoverable);
  other connections and tenants are unaffected.  A *dropped connection*
  cancels that connection's in-flight requests — the per-tenant ledger
  counts them under ``cancelled`` and still balances.  Worker deaths
  and slow machines are handled below the wire by the tenant servers'
  failover and hedging, invisibly to the client.

Replies are byte-exact: answers cross the wire via
:func:`~repro.serving.protocol.pack_array`, so a
:class:`NetClient` receives arrays byte-identical to
``cluster.answer(node, query_type)`` on the server — the same contract
as in-process serving, now pinned under injected faults by the chaos
suite in ``tests/serving/``.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from typing import Any, Dict, List, Optional, Set

import numpy as np

from repro import errors as _errors
from repro.errors import CodecError, FrameError, ProtocolError, ReproError, ServingError
from repro.obs import ObsConfig
from repro.resilience.policy import Deadline, RetryPolicy
from repro.serving.protocol import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    MessageCodec,
    PROTOCOL_VERSION,
    available_encodings,
    decode_hello,
    encode_frame,
    negotiate_encoding,
    pack_array,
    unpack_array,
)
from repro.serving.tenancy import TenantHost

_READ_CHUNK = 65536


class _Connection:
    """Server-side per-connection state: codec, writer lock, live tasks."""

    def __init__(self, writer: asyncio.StreamWriter, max_frame: int):
        self.writer = writer
        self.codec = MessageCodec("json")
        self.decoder = FrameDecoder(max_frame=max_frame)
        self.max_frame = max_frame
        self.lock = asyncio.Lock()
        self.tasks: "Set[asyncio.Task]" = set()
        self.greeted = False

    async def send(self, message: Dict[str, Any]) -> None:
        frame = encode_frame(self.codec.encode(message), max_frame=self.max_frame)
        async with self.lock:
            self.writer.write(frame)
            await self.writer.drain()


class NetServer:
    """Serve a :class:`TenantHost` over TCP (loopback by default).

    Parameters
    ----------
    host_tenants:
        The started tenant host to answer from.  The server never owns
        it: start/stop it yourself (or let the CLI do both).
    host / port:
        Bind address; port ``0`` picks a free one (read :attr:`port`
        after :meth:`start`).
    max_frame:
        Per-frame byte cap enforced on both directions.
    deadline_ms:
        Default per-query deadline budget minted **here, at ingress**,
        and tightened by the client's optional per-query ``deadline_ms``
        field (neither side can extend the other).  The budget travels
        with the request through the tenant host into the batch payload;
        expired work is shed with a typed ``DeadlineExceeded`` error
        frame instead of computed.  ``None`` = unbounded.
    idle_timeout_ms:
        Per-connection mid-frame read deadline (the slow-loris bound).
        The clock arms when a partial frame starts buffering and re-arms
        only when a **complete frame** arrives — a peer trickling one
        byte at a time through a 16 MiB header never resets it and is
        closed with a typed fatal error frame; other connections are
        unaffected.  A connection idling *between* frames (a quiescent
        pipelined client) is never touched: holding an empty-buffered
        connection open costs nothing, holding megabytes of a
        never-finished frame does.  ``None`` (default) disables the
        bound.
    obs:
        Optional :class:`~repro.obs.ObsConfig`.  With a tracer, this is
        the **ingress edge**: every query frame mints a trace here, the
        id follows the request through the tenant host, the lanes, and
        the worker compute, and the answer-frame write is recorded as
        the ``reply`` span before the trace's ``total`` closes.  With a
        registry, the ``metrics`` wire op exposes it (Prometheus text or
        JSON snapshot) beside the ``stats`` op.  Normally the same
        config object the tenant host was built with.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.
    """

    def __init__(
        self,
        host_tenants: TenantHost,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME_BYTES,
        deadline_ms: "float | None" = None,
        idle_timeout_ms: "float | None" = None,
        obs: "ObsConfig | None" = None,
    ):
        self._tenants = host_tenants
        self._host = host
        self._requested_port = int(port)
        self._max_frame = int(max_frame)
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServingError(f"deadline_ms must be positive, got {deadline_ms}")
        if idle_timeout_ms is not None and idle_timeout_ms <= 0:
            raise ServingError(
                f"idle_timeout_ms must be positive, got {idle_timeout_ms}"
            )
        self._deadline_ms = None if deadline_ms is None else float(deadline_ms)
        self._idle_timeout = (
            None if idle_timeout_ms is None else float(idle_timeout_ms) / 1000.0
        )
        self._obs = obs if obs is not None and obs.enabled else None
        self._tracer = self._obs.tracer if self._obs is not None else None
        self._server: "asyncio.AbstractServer | None" = None
        self._connections: "Set[_Connection]" = set()
        #: Connections that ever completed a handshake (monotone).
        self.connections_accepted = 0
        #: Connections torn down because of a protocol violation.
        self.protocol_errors = 0

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServingError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def serving(self) -> bool:
        """Whether the TCP listener is up."""
        return self._server is not None

    async def start(self) -> "NetServer":
        if self._server is not None:
            raise ServingError("net server already started")
        if not self._tenants.started:
            raise ServingError("start the tenant host before the net server")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        return self

    async def stop(self) -> None:
        """Close the listener and every live connection."""
        server, self._server = self._server, None
        if server is None:
            return
        server.close()
        await server.wait_closed()
        for connection in tuple(self._connections):
            await self._close_connection(connection)

    async def __aenter__(self) -> "NetServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _close_connection(self, connection: _Connection) -> None:
        self._connections.discard(connection)
        for task in tuple(connection.tasks):
            # Cancelling the task cancels the request future it awaits,
            # so the tenant ledger counts the request as cancelled.
            task.cancel()
        if connection.tasks:
            await asyncio.gather(*tuple(connection.tasks), return_exceptions=True)
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer, self._max_frame)
        self._connections.add(connection)
        loop = asyncio.get_running_loop()
        idle = self._idle_timeout
        read_deadline: "float | None" = None  # armed only mid-frame
        try:
            while True:
                if read_deadline is None:
                    data = await reader.read(_READ_CHUNK)
                else:
                    try:
                        data = await asyncio.wait_for(
                            reader.read(_READ_CHUNK),
                            max(0.0, read_deadline - loop.time()),
                        )
                    except asyncio.TimeoutError:
                        raise ProtocolError(
                            f"connection stalled mid-frame "
                            f"({connection.decoder.pending_bytes} byte(s) buffered, "
                            f"no complete frame in {idle * 1000:.0f} ms)"
                        ) from None
                if not data:
                    connection.decoder.assert_drained()
                    break
                frames = connection.decoder.feed(data)
                if idle is not None:
                    if connection.decoder.pending_bytes == 0:
                        read_deadline = None  # between frames: no clock
                    elif frames or read_deadline is None:
                        # A partial frame just started (or real progress
                        # — a completed frame — was made): (re-)arm.
                        # Mere trickled bytes never reach this branch.
                        read_deadline = loop.time() + idle
                for payload in frames:
                    await self._handle_frame(connection, payload)
        except ProtocolError as error:
            self.protocol_errors += 1
            await self._send_protocol_error(connection, error)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away; request cancellation happens below
        finally:
            await self._close_connection(connection)

    async def _send_protocol_error(self, connection: _Connection, error: ProtocolError) -> None:
        """Best-effort typed error before closing a corrupted connection."""
        try:
            await connection.send(
                {
                    "op": "error",
                    "id": None,
                    "kind": type(error).__name__,
                    "message": str(error),
                    "fatal": True,
                }
            )
        except (ConnectionError, OSError, ProtocolError):
            pass

    async def _handle_frame(self, connection: _Connection, payload: bytes) -> None:
        if not connection.greeted:
            await self._handshake(connection, payload)
            return
        message = connection.codec.decode(payload)
        op = message.get("op")
        if op == "query":
            task = asyncio.create_task(self._serve_query(connection, message))
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)
        elif op == "stats":
            await self._reply_stats(connection, message)
        elif op == "metrics":
            await self._reply_metrics(connection, message)
        elif op == "tenants":
            await connection.send(
                {"op": "tenants", "id": message.get("id"), "tenants": self._tenants.tenants()}
            )
        elif op == "health":
            await self._reply_health(connection, message)
        elif op == "ping":
            await connection.send({"op": "pong", "id": message.get("id")})
        else:
            raise CodecError(f"unknown or missing op {op!r}")

    async def _handshake(self, connection: _Connection, payload: bytes) -> None:
        hello = decode_hello(payload)
        if hello.get("op") != "hello":
            raise CodecError(f"first frame must be a hello, got op {hello.get('op')!r}")
        offered = hello.get("encodings", ["json"])
        if not isinstance(offered, list):
            raise CodecError("hello 'encodings' must be a list")
        encoding = negotiate_encoding(offered)
        # The hello reply is still JSON (the client only switches after
        # reading it); every later frame uses the negotiated codec.
        await connection.send(
            {
                "op": "hello",
                "protocol": PROTOCOL_VERSION,
                "encoding": encoding,
                "tenants": self._tenants.tenants(),
            }
        )
        connection.codec = MessageCodec(encoding)
        connection.greeted = True
        self.connections_accepted += 1

    async def _reply_stats(self, connection: _Connection, message: Dict[str, Any]) -> None:
        """Ledger snapshots over the wire (fields: ``STATS_FIELDS``).

        ``tenant`` picks one tenant's full ledger — every
        :class:`~repro.serving.server.ServingStats` field, hedging and
        failover counters included, plus host-level ``inflight`` /
        ``quota_rejections``.  ``tenant: "*"`` answers the host-wide
        aggregate (:meth:`~repro.serving.tenancy.TenantHost.aggregate_stats`);
        omitting it answers every tenant keyed by name.
        """
        name = message.get("tenant")
        try:
            if name is None:
                stats: Any = self._tenants.all_stats()
            elif name == "*":
                stats = self._tenants.aggregate_stats()
            else:
                stats = self._tenants.all_stats()[str(name)]
        except KeyError:
            await self._reply_error(
                connection, message, _errors.TenantError(f"unknown tenant {name!r}")
            )
            return
        await connection.send({"op": "stats", "id": message.get("id"), "stats": stats})

    async def _reply_metrics(self, connection: _Connection, message: Dict[str, Any]) -> None:
        """The ``metrics`` wire op: the server's registry, rendered.

        ``format: "json"`` (default) ships the mergeable snapshot dict;
        ``format: "prometheus"`` ships the text exposition.  A server
        running without a metrics registry answers a non-fatal error.
        """
        registry = self._obs.registry if self._obs is not None else None
        if registry is None:
            await self._reply_error(
                connection,
                message,
                ServingError("metrics are not enabled on this server"),
            )
            return
        fmt = message.get("format", "json")
        if fmt == "prometheus":
            await connection.send(
                {
                    "op": "metrics",
                    "id": message.get("id"),
                    "format": "prometheus",
                    "text": registry.render_prometheus(),
                }
            )
        elif fmt == "json":
            await connection.send(
                {
                    "op": "metrics",
                    "id": message.get("id"),
                    "format": "json",
                    "snapshot": registry.snapshot(),
                }
            )
        else:
            await self._reply_error(
                connection,
                message,
                _errors.CodecError(f"unknown metrics format {fmt!r}"),
            )

    async def _reply_health(self, connection: _Connection, message: Dict[str, Any]) -> None:
        """The ``health`` wire op: lane liveness, breakers, supervisor.

        The payload is :meth:`~repro.serving.tenancy.TenantHost.health`
        — supervisor snapshot (or a direct lane probe), the shared lane
        breaker board, and every tenant's deadline-burn breaker — plus
        this server's connection count.
        """
        payload = dict(self._tenants.health())
        payload["connections"] = len(self._connections)
        await connection.send(
            {"op": "health", "id": message.get("id"), "health": payload}
        )

    async def _reply_error(
        self, connection: _Connection, message: Dict[str, Any], error: BaseException
    ) -> None:
        reply = {
            "op": "error",
            "id": message.get("id"),
            "kind": type(error).__name__,
            "message": str(error),
            "fatal": False,
        }
        # Overloaded / CircuitOpen sheds carry their cooldown hint so a
        # resilient client backs off for the right amount of time.
        hint = getattr(error, "retry_after_ms", None)
        if hint:
            reply["retry_after_ms"] = float(hint)
        await connection.send(reply)

    async def _serve_query(self, connection: _Connection, message: Dict[str, Any]) -> None:
        handle = None
        try:
            tenant = message.get("tenant")
            node = message.get("node")
            query_type = message.get("type")
            if not isinstance(tenant, str) or not isinstance(node, int) or isinstance(node, bool):
                raise _errors.QueryError(
                    "query needs a string 'tenant' and an integer 'node'"
                )
            if not isinstance(query_type, str):
                raise _errors.QueryError("query needs a string 'type'")
            budget = message.get("deadline_ms")
            if budget is not None and (
                not isinstance(budget, (int, float)) or isinstance(budget, bool)
            ):
                raise _errors.QueryError("query 'deadline_ms' must be a number")
            deadline = None
            if self._deadline_ms is not None or budget is not None:
                # Ingress minting: the server's default budget tightened
                # by the client's hint — neither side can extend the other.
                deadline = Deadline.after_ms(self._deadline_ms).tighten(
                    None if budget is None else float(budget)
                )
            if self._tracer is not None:
                # The ingress edge: the trace is minted here and its id
                # follows the request through the tenant host, the lane
                # dispatch, and the worker's compute span.
                handle = self._tracer.begin(
                    "query",
                    tenant=tenant,
                    node=node,
                    query_type=query_type,
                    transport="tcp",
                )
            answer = await self._tenants.submit(
                tenant, node, query_type, trace=handle, deadline=deadline
            )
        except asyncio.CancelledError:
            if handle is not None:
                handle.finish(status="cancelled")
            raise
        except ReproError as error:
            if handle is not None:
                handle.finish(status=type(error).__name__)
            try:
                await self._reply_error(connection, message, error)
            except (ConnectionError, OSError):
                pass
            return
        try:
            t_reply = time.perf_counter()
            await connection.send(
                {"op": "answer", "id": message.get("id"), "answer": pack_array(answer)}
            )
            if handle is not None:
                self._tracer.record(
                    handle.trace_id,
                    "reply",
                    time.perf_counter() - t_reply,
                    values=int(answer.size),
                )
                handle.finish(status="ok")
        except (ConnectionError, OSError):
            # Client disconnected between answer and delivery.
            if handle is not None:
                handle.finish(status="lost")


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class NetClient:
    """Asyncio client for :class:`NetServer` (pipelined, id-matched).

    Build with :meth:`connect`; use as an async context manager or call
    :meth:`close` explicitly.  Error frames raise the server-side
    exception type re-mapped locally (``kind`` → :mod:`repro.errors`),
    so ``QueryError`` over the wire is ``QueryError`` here.

    ``request_timeout_ms`` bounds every request's wait for a reply *on
    the client's own clock*.  This matters beyond slow servers: when a
    serving process forked lane workers after accepting this connection,
    the workers hold duplicates of the socket fd — SIGKILL the server
    and the TCP connection stays open, so the read loop never sees EOF
    and an unbounded ``await`` would hang forever.  The local bound
    turns that into a typed :class:`~repro.errors.ProtocolError` (and a
    per-query ``deadline_ms`` bounds that query at its budget plus a
    small grace for the server's own shed reply to arrive first).
    """

    #: Extra client-side wait beyond a query's deadline budget, so the
    #: server's typed DeadlineExceeded reply wins the race against the
    #: local timeout when both fire.
    DEADLINE_GRACE_MS = 250.0

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int = MAX_FRAME_BYTES,
        request_timeout_ms: "float | None" = None,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame = int(max_frame)
        if request_timeout_ms is not None and request_timeout_ms <= 0:
            raise ServingError(
                f"request_timeout_ms must be positive, got {request_timeout_ms}"
            )
        self._request_timeout_ms = (
            None if request_timeout_ms is None else float(request_timeout_ms)
        )
        self._codec = MessageCodec("json")
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._ids = itertools.count(1)
        self._replies: "Dict[Any, asyncio.Future]" = {}
        self._reader_task: "asyncio.Task | None" = None
        self._closed = False
        self._broken: "BaseException | None" = None
        self.encoding = "json"
        self.tenants: List[str] = []

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        encodings: "List[str] | None" = None,
        max_frame: int = MAX_FRAME_BYTES,
        request_timeout_ms: "float | None" = None,
    ) -> "NetClient":
        """Open a connection and complete the hello handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(
            reader, writer, max_frame=max_frame, request_timeout_ms=request_timeout_ms
        )
        try:
            await client._handshake(encodings or list(available_encodings()))
        except BaseException:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            raise
        return client

    async def _handshake(self, encodings: List[str]) -> None:
        await self._send(
            {"op": "hello", "protocol": PROTOCOL_VERSION, "encodings": encodings}
        )
        reply = await self._read_message()
        if reply.get("op") == "error":
            raise self._map_error(reply)
        if reply.get("op") != "hello":
            raise ProtocolError(f"expected hello reply, got op {reply.get('op')!r}")
        encoding = reply.get("encoding")
        self._codec = MessageCodec(str(encoding))
        self.encoding = str(encoding)
        self.tenants = [str(t) for t in reply.get("tenants", [])]
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _send(self, message: Dict[str, Any]) -> None:
        self._writer.write(
            encode_frame(self._codec.encode(message), max_frame=self._max_frame)
        )
        await self._writer.drain()

    async def _read_message(self) -> Dict[str, Any]:
        """One decoded message, for the pre-pipelining handshake phase."""
        while True:
            frames = self._decoder.feed(b"")
            if not frames:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    raise ProtocolError("connection closed during handshake")
                frames = self._decoder.feed(data)
            if frames:
                message = self._codec.decode(frames[0])
                for extra in frames[1:]:
                    self._dispatch(self._codec.decode(extra))
                return message

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break
                for payload in self._decoder.feed(data):
                    self._dispatch(self._codec.decode(payload))
        except (ConnectionError, OSError, ProtocolError) as error:
            self._fail_all(error)
            return
        self._fail_all(ProtocolError("server closed the connection"))

    def _dispatch(self, message: Dict[str, Any]) -> None:
        message_id = message.get("id")
        future = self._replies.pop(message_id, None)
        if future is None or future.done():
            if message.get("op") == "error" and message.get("fatal"):
                self._fail_all(self._map_error(message))
            return
        future.set_result(message)

    def _fail_all(self, error: BaseException) -> None:
        # Once the connection is dead, later requests must fail fast
        # instead of registering reply futures nothing will resolve.
        if self._broken is None:
            self._broken = error
        replies, self._replies = self._replies, {}
        for future in replies.values():
            if not future.done():
                future.set_exception(error)

    @staticmethod
    def _map_error(message: Dict[str, Any]) -> ReproError:
        kind = str(message.get("kind", "ServingError"))
        text = str(message.get("message", "remote error"))
        exc_type = getattr(_errors, kind, None)
        if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
            hint = message.get("retry_after_ms")
            if hint is not None:
                try:
                    return exc_type(text, retry_after_ms=float(hint))
                except TypeError:
                    pass  # error type without a retry_after_ms keyword
            return exc_type(text)
        return ServingError(f"{kind}: {text}")

    async def _request(
        self, message: Dict[str, Any], *, timeout_ms: "float | None" = None
    ) -> Dict[str, Any]:
        if self._closed:
            raise ServingError("client is closed")
        if self._broken is not None:
            raise self._broken
        if timeout_ms is None:
            timeout_ms = self._request_timeout_ms
        message_id = next(self._ids)
        message["id"] = message_id
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        self._replies[message_id] = future
        try:
            await self._send(message)
        except BaseException:
            self._replies.pop(message_id, None)
            raise
        if timeout_ms is None:
            reply = await future
        else:
            try:
                reply = await asyncio.wait_for(future, timeout_ms / 1000.0)
            except asyncio.TimeoutError:
                # The reply may never come (dead server behind a TCP
                # connection kept open by forked-worker fd duplicates):
                # surface a typed local error instead of hanging.
                self._replies.pop(message_id, None)
                raise ProtocolError(
                    f"no reply to request {message_id} within {timeout_ms:.0f} ms"
                ) from None
        if reply.get("op") == "error":
            raise self._map_error(reply)
        return reply

    async def query(
        self,
        tenant: str,
        node: int,
        query_type: str,
        *,
        deadline_ms: "float | None" = None,
    ) -> np.ndarray:
        """Answer one query over the wire; byte-identical to the cluster's.

        *deadline_ms* ships with the request — the server tightens its
        own budget with it and sheds expired work with a typed
        ``DeadlineExceeded`` — and also bounds the local wait at the
        budget plus :data:`DEADLINE_GRACE_MS`.
        """
        message: "Dict[str, Any]" = {
            "op": "query",
            "tenant": tenant,
            "node": int(node),
            "type": query_type,
        }
        timeout_ms = None
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
            timeout_ms = float(deadline_ms) + self.DEADLINE_GRACE_MS
            if self._request_timeout_ms is not None:
                timeout_ms = min(timeout_ms, self._request_timeout_ms)
        reply = await self._request(message, timeout_ms=timeout_ms)
        if reply.get("op") != "answer":
            raise ProtocolError(f"expected an answer, got op {reply.get('op')!r}")
        return unpack_array(reply.get("answer"))

    async def stats(self, tenant: "str | None" = None) -> Dict[str, Any]:
        """One tenant's ledger snapshot, or every tenant's when ``None``.

        ``tenant="*"`` answers the host-wide aggregate instead.  Field
        meanings: :data:`~repro.serving.server.STATS_FIELDS`.
        """
        reply = await self._request({"op": "stats", "tenant": tenant})
        stats = reply.get("stats")
        if not isinstance(stats, dict):
            raise ProtocolError("malformed stats reply")
        return stats

    async def aggregate_stats(self) -> Dict[str, Any]:
        """The host-wide ledger: every tenant's counters folded together."""
        return await self.stats("*")

    async def metrics(self, format: str = "json") -> Any:
        """The server's metrics registry, rendered.

        ``format="json"`` returns the snapshot dict (mergeable via
        :meth:`~repro.obs.MetricsRegistry.merge_snapshot`);
        ``format="prometheus"`` returns the text exposition as a string.
        Raises :class:`~repro.errors.ServingError` when the server runs
        without a registry.
        """
        reply = await self._request({"op": "metrics", "format": format})
        if reply.get("op") != "metrics":
            raise ProtocolError(f"expected a metrics reply, got op {reply.get('op')!r}")
        if format == "prometheus":
            return str(reply.get("text", ""))
        snapshot = reply.get("snapshot")
        if not isinstance(snapshot, dict):
            raise ProtocolError("malformed metrics reply")
        return snapshot

    async def health(self) -> Dict[str, Any]:
        """The server's resilience snapshot (the ``health`` wire op).

        Lane liveness (supervisor snapshot when one runs), the shared
        lane breaker board, every tenant's deadline-burn breaker, and
        the live connection count.
        """
        reply = await self._request({"op": "health"})
        payload = reply.get("health")
        if not isinstance(payload, dict):
            raise ProtocolError("malformed health reply")
        return payload

    async def list_tenants(self) -> List[str]:
        """The server's current tenant directory."""
        reply = await self._request({"op": "tenants"})
        return [str(t) for t in reply.get("tenants", [])]

    async def ping(self) -> bool:
        """Round-trip liveness probe."""
        reply = await self._request({"op": "ping"})
        return reply.get("op") == "pong"

    async def send_raw(self, data: bytes) -> None:
        """Ship raw bytes down the socket (chaos harness: corrupt frames)."""
        self._writer.write(data)
        await self._writer.drain()

    def _shutdown_socket(self) -> None:
        # OS-level shutdown, not just fd close: if this process forked
        # (e.g. serving-lane workers) after connecting, children hold
        # duplicates of this fd and a plain close would leave the TCP
        # connection alive — the server would never see the disconnect.
        # shutdown() tears the connection down regardless of dup'd fds.
        sock = self._writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def abort(self) -> None:
        """Hard-drop the connection without a goodbye (chaos harness)."""
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
        self._fail_all(ServingError("connection aborted"))
        self._shutdown_socket()
        self._writer.transport.abort()

    async def close(self) -> None:
        """Graceful shutdown: stop reading, close the socket."""
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
        self._fail_all(ServingError("client closed"))
        self._shutdown_socket()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


class ResilientClient:
    """A :class:`NetClient` that reconnects and retries under faults.

    Queries are idempotent (pure reads against an immutable-at-answer
    cluster state) and replies are id-matched, so a query that died with
    its connection can safely be re-sent on a fresh one.  The retry loop
    is driven by a :class:`~repro.resilience.policy.RetryPolicy`
    (deterministic capped backoff):

    * **connection-level faults** — refused connects, dropped
      connections, local request timeouts (``ProtocolError`` /
      ``ConnectionError`` / ``OSError``) — drop the connection,
      back off, reconnect, and re-send;
    * **server sheds** — :class:`~repro.errors.Overloaded` /
      :class:`~repro.errors.CircuitOpen` error frames — back off by at
      least the server's ``retry_after_ms`` hint, on the same
      connection;
    * everything else (``QueryError``, ``TenantError``,
      ``DeadlineExceeded``, …) is not retried: the request itself is
      wrong or its budget is spent, and a retry would just repeat that.

    Build with :meth:`connect`; use as an async context manager.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: "RetryPolicy | None" = None,
        request_timeout_ms: "float | None" = None,
        encodings: "List[str] | None" = None,
        max_frame: int = MAX_FRAME_BYTES,
    ):
        self._host = host
        self._port = int(port)
        self._retry = retry if retry is not None else RetryPolicy()
        self._request_timeout_ms = request_timeout_ms
        self._encodings = encodings
        self._max_frame = int(max_frame)
        self._client: "NetClient | None" = None
        self._closed = False
        #: Fresh connections established (first connect included).
        self.connects = 0
        #: Requests re-sent after a fault or shed.
        self.retries = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retry: "RetryPolicy | None" = None,
        request_timeout_ms: "float | None" = None,
        encodings: "List[str] | None" = None,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> "ResilientClient":
        """Open the first connection (retried under the policy) and return."""
        client = cls(
            host,
            port,
            retry=retry,
            request_timeout_ms=request_timeout_ms,
            encodings=encodings,
            max_frame=max_frame,
        )
        await client._ensure_connected(attempt=1)
        return client

    @property
    def client(self) -> "NetClient | None":
        """The live underlying :class:`NetClient` (``None`` when down)."""
        return self._client

    async def _ensure_connected(self, *, attempt: int) -> NetClient:
        """The live client, (re)connecting with backoff as needed."""
        if self._closed:
            raise ServingError("client is closed")
        if self._client is not None and self._client._broken is None:
            return self._client
        await self._drop_connection()
        last: "BaseException | None" = None
        while True:
            try:
                self._client = await NetClient.connect(
                    self._host,
                    self._port,
                    encodings=self._encodings,
                    max_frame=self._max_frame,
                    request_timeout_ms=self._request_timeout_ms,
                )
                self.connects += 1
                return self._client
            except (ConnectionError, OSError, ProtocolError) as error:
                last = error
                if not self._retry.should_retry(attempt):
                    raise ProtocolError(
                        f"could not connect to {self._host}:{self._port} "
                        f"after {attempt} attempt(s): {last}"
                    ) from last
                await asyncio.sleep(
                    self._retry.backoff_ms(attempt, key="connect") / 1000.0
                )
                attempt += 1

    async def _drop_connection(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    async def _call(self, op: str, method: str, *args, **kwargs):
        """Run one idempotent client method under the retry policy."""
        attempt = 1
        while True:
            try:
                client = await self._ensure_connected(attempt=attempt)
                return await getattr(client, method)(*args, **kwargs)
            except (_errors.Overloaded, _errors.CircuitOpen) as error:
                # Explicit shed: the connection is fine, the server just
                # wants us to wait — honor its hint over our own backoff.
                if not self._retry.should_retry(attempt):
                    raise
                delay_ms = max(
                    self._retry.backoff_ms(attempt, key=op), error.retry_after_ms
                )
                self.retries += 1
                attempt += 1
                await asyncio.sleep(delay_ms / 1000.0)
            except (ConnectionError, OSError, ProtocolError):
                await self._drop_connection()
                if not self._retry.should_retry(attempt):
                    raise
                delay_ms = self._retry.backoff_ms(attempt, key=op)
                self.retries += 1
                attempt += 1
                await asyncio.sleep(delay_ms / 1000.0)

    async def query(
        self,
        tenant: str,
        node: int,
        query_type: str,
        *,
        deadline_ms: "float | None" = None,
    ) -> np.ndarray:
        """One query, retried across reconnects; byte-identical answers."""
        return await self._call(
            f"query:{tenant}:{node}",
            "query",
            tenant,
            int(node),
            query_type,
            deadline_ms=deadline_ms,
        )

    async def stats(self, tenant: "str | None" = None) -> Dict[str, Any]:
        """Ledger snapshot(s), retried across reconnects."""
        return await self._call("stats", "stats", tenant)

    async def health(self) -> Dict[str, Any]:
        """The server's resilience snapshot, retried across reconnects."""
        return await self._call("health", "health")

    async def ping(self) -> bool:
        """Liveness probe, retried across reconnects."""
        return await self._call("ping", "ping")

    async def close(self) -> None:
        """Close the underlying connection and refuse further requests."""
        self._closed = True
        await self._drop_connection()

    async def __aenter__(self) -> "ResilientClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
