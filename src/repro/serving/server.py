"""The asyncio query-serving front end (the Sect. IV workload, online).

:class:`QueryServer` turns the batch boundary of
:meth:`~repro.distributed.cluster.DistributedCluster.answer_batch` into a
continuously admitting service:

* **Admission** — ``await submit(node, qt)`` routes the query to its
  owning machine and parks it in a bounded queue.  A full queue makes
  ``submit`` wait (backpressure) and ``submit_nowait`` raise
  :class:`~repro.errors.ServingError` (load shedding); either way the
  server's memory footprint is bounded.
* **Micro-batching** — a dispatcher coroutine drains the queue and groups
  requests per owning machine.  A machine's batch is flushed when it
  reaches ``max_batch`` requests or when its oldest request has waited
  ``max_wait_ms`` — the classic latency/throughput dial.
* **Execution** — flushed batches go to a
  :class:`~repro.parallel.lanes.LaneExecutor` whose workers hold the
  cluster's machines rebuilt from shared memory
  (:mod:`repro.serving.blueprint`), so answering overlaps with admission
  and nothing large is pickled per batch.  ``workers=1`` answers inline
  in the event loop — the byte-identical reference path.
* **Sticky affinity** — a machine's batches always land on the same lane
  (``lane = lane_offset + machine_id mod lanes``), so each machine's
  reconstruction operator is cached on exactly one worker instead of
  being rebuilt wherever the pool scheduler happens to place a batch.
* **Hedging** — with ``hedge_ms`` set, a batch that has not returned
  within the deadline is *duplicated* onto the neighboring lane.  The
  first copy to finish delivers; the loser is cancelled and its result
  discarded — every request resolves exactly once (dedup is pinned by
  the chaos suite), so a slow machine stops dragging the p99 tail.
* **Failover** — a worker dying mid-batch surfaces as
  ``BrokenProcessPool`` on that batch's future.  The server re-dispatches
  the batch (up to ``max_redispatch`` times) onto a freshly re-spawned
  lane; clients never see the death, only the answer.
* **Per-request futures** — every submission gets its own future, so
  duplicate query nodes receive one answer *each* (``answer_batch``'s
  dict return collapses duplicates; the serving layer must not).
* **Hot swap** — :meth:`QueryServer.swap_machine` replaces one machine's
  query source between micro-batches (the streaming layer's refresh
  path): updates are versioned, in-flight batches keep the generation
  they were flushed against, and nothing restarts.

Every answer is byte-identical to ``cluster.answer(node, query_type)``,
for any arrival interleaving, batch window, worker count, storage
backend, hedging policy, and injected fault, and serving is
communication-free: a query only ever touches the machine that owns its
node.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.distributed.cluster import DistributedCluster, Machine
from repro.errors import DeadlineExceeded, QueryError, ServingError
from repro.obs import DEFAULT_SIZE_BOUNDS, ObsConfig, TraceHandle
from repro.parallel.lanes import LaneExecutor
from repro.resilience.breaker import BreakerBoard
from repro.resilience.policy import Deadline, RetryPolicy
from repro.serving.blueprint import ClusterBlueprint, release_session, serve_batch_task

QUERY_TYPES = ("rwr", "hop", "php")

#: Queue sentinel that tells the dispatcher to flush everything and exit.
_STOP = object()


@dataclass
class ServingStats:
    """Counters exposed by :attr:`QueryServer.stats` (monotone per session).

    ``answered`` and ``failed`` count **actual resolutions** — requests
    whose future this server resolved with a result or an error.  A future
    the client already cancelled (or otherwise resolved) before delivery
    is counted under ``cancelled`` instead, so the admission ledger
    balances exactly::

        admitted == answered + failed + cancelled + shed + still-pending

    (``still-pending`` being requests admitted but not yet resolved).
    Hedged duplicates and failover re-dispatches never double-count:
    a request resolves exactly once no matter how many batch copies ran.
    ``shed`` counts deadline-expired requests dropped *explicitly* with
    :class:`~repro.errors.DeadlineExceeded` — before dispatch when the
    budget ran out in the queue, or after a worker skipped the expired
    item instead of computing it.
    """

    admitted: int = 0
    rejected: int = 0
    answered: int = 0
    failed: int = 0
    cancelled: int = 0
    batches: int = 0
    max_batch_size: int = 0
    max_queue_depth: int = 0
    swaps: int = 0
    #: Batches duplicated onto another lane after the hedge deadline.
    hedged: int = 0
    #: Hedged duplicates that delivered before the primary copy.
    hedge_wins: int = 0
    #: Batches re-dispatched after a worker died mid-flight.
    redispatches: int = 0
    #: Requests dropped with ``DeadlineExceeded`` because their budget
    #: expired before (or inside) compute — explicit, typed shedding.
    shed: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Delivered-or-failed requests per flushed batch."""
        done = self.answered + self.failed + self.cancelled
        return done / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (what the wire protocol ships)."""
        from dataclasses import asdict

        return asdict(self)


#: Every field a ``stats`` wire-op reply can carry, documented in one
#: place.  The per-tenant reply ships every :class:`ServingStats` field
#: plus the host-level ``inflight``/``quota_rejections``; the aggregate
#: reply (tenant ``"*"`` or omitted) sums the summable ones across
#: tenants.  ``repro top`` and the docs table both render from this.
STATS_FIELDS: Dict[str, str] = {
    "admitted": "Queries accepted into the admission queue.",
    "rejected": "Queries shed because the admission queue was full.",
    "answered": "Request futures resolved with an answer.",
    "failed": "Request futures resolved with an error.",
    "cancelled": "Requests whose future was already done (client cancel/timeout) when their batch resolved.",
    "batches": "Micro-batches flushed to the serving lanes.",
    "max_batch_size": "Largest flushed batch so far.",
    "max_queue_depth": "Deepest the admission queue has been.",
    "swaps": "Hot machine-source swaps applied (streaming refresh path).",
    "hedged": "Batches duplicated onto the neighboring lane after the hedge deadline.",
    "hedge_wins": "Hedged duplicates that delivered before the primary copy.",
    "redispatches": "Batches re-sent after a lane worker died mid-flight.",
    "shed": "Requests dropped with DeadlineExceeded because their deadline budget expired.",
    "inflight": "Host-level: requests admitted but not yet resolved (counts against the tenant quota).",
    "quota_rejections": "Host-level: submissions refused because the tenant was at its inflight quota.",
    "breaker_rejections": "Host-level: submissions shed because a tenant breaker was open (Overloaded).",
}


@dataclass(eq=False)  # identity semantics: requests live in the outstanding set
class _Request:
    node: int
    query_type: str
    machine_id: int
    future: "asyncio.Future[np.ndarray]" = field(repr=False)
    # Observability (all unset when the server runs without an ObsConfig):
    # the trace this request reports under, whether this server minted it
    # (and must finish it), and the admission instant for queue-wait and
    # end-to-end latency measurements.
    trace: "TraceHandle | None" = field(default=None, repr=False)
    owns_trace: bool = False
    admitted_at: float = 0.0
    # Deadline budget (None = unbounded): minted at network ingress or
    # from the server's default budget, carried into the batch payload.
    deadline: "Deadline | None" = None


@dataclass
class _BatchJob:
    """One flushed micro-batch and every in-flight copy of it.

    ``delivered`` is the exactly-once gate: whichever copy (primary,
    hedge, or re-dispatch) completes first flips it and resolves the
    requests; every later completion returns without touching them.
    """

    machine_id: int
    batch: List[_Request]
    # 2-tuples ``(node, query_type)`` on the legacy path; 3-tuples
    # ``(node, query_type, expires_at)`` when any request in the batch
    # carries a bounded deadline (workers skip expired items).
    items: "List[Tuple]"
    update: "Dict | None"
    attempts: int = 0
    delivered: bool = False
    pending: "Set[asyncio.Future]" = field(default_factory=set)
    hedge_timer: "asyncio.TimerHandle | None" = None


class QueryServer:
    """Micro-batched asyncio serving over a :class:`DistributedCluster`.

    Parameters
    ----------
    cluster:
        The cluster to serve; its routing table and machines are used
        as-is.  Answers match ``cluster.answer`` byte for byte.
    workers:
        Serving-lane count (:func:`~repro.parallel.executor.resolve_workers`
        rules: ``1`` = inline reference path, ``0`` = all cores).
        Ignored when *executor* is given.
    max_batch:
        Flush a machine's batch at this many requests.
    max_wait_ms:
        Flush a machine's batch when its oldest request has waited this
        long (the micro-batch arrival window).  ``0`` flushes every
        dispatch cycle — minimum latency, minimum batching.
    max_pending:
        Bound on admitted-but-undispatched requests (the admission
        queue).  Full queue ⇒ ``submit`` backpressures, ``submit_nowait``
        raises.
    use_shared_memory:
        Ship machine arrays via ``multiprocessing.shared_memory``
        (default) or by pickling once per worker (``False``).
    mp_context:
        Optional multiprocessing context for the serving lanes.
    executor:
        Optional **external, already started**
        :class:`~repro.parallel.lanes.LaneExecutor` shared with other
        servers (the multi-tenant host).  The server then ships its
        blueprint payload per batch instead of installing it at pool
        start, and never shuts the executor down.
    lane_offset:
        Rotation applied to the machine→lane mapping, so co-hosted
        tenants spread across a shared executor's lanes instead of all
        pinning machine 0 to lane 0.
    hedge_ms:
        Latency deadline after which an unanswered batch is duplicated
        onto the neighboring lane (``None`` disables hedging).
    max_redispatch:
        How many times a batch whose worker died mid-flight is re-sent
        before its requests are failed.  Shorthand for
        ``retry_policy=RetryPolicy(max_attempts=max_redispatch + 1,
        base_ms=0, jitter=0)`` — immediate re-dispatch, the pre-retry
        behavior.  Ignored when *retry_policy* is given.
    retry_policy:
        Optional :class:`~repro.resilience.policy.RetryPolicy` driving
        server-side batch re-dispatch after a worker death: capped
        exponential backoff with deterministic jitter between attempts
        instead of immediate re-sends.
    deadline_ms:
        Default per-request deadline budget, minted at :meth:`submit`
        when the caller does not pass an explicit
        :class:`~repro.resilience.policy.Deadline`.  Expired requests
        are shed with :class:`~repro.errors.DeadlineExceeded` before
        dispatch (and skipped inside workers) rather than computed.
        ``None`` (default) = unbounded.
    breakers:
        Optional per-lane
        :class:`~repro.resilience.breaker.BreakerBoard` (typically
        shared host-wide).  Dispatch walks past lanes whose breaker is
        open, and every batch copy's outcome feeds its lane's breaker.
    chaos:
        Optional fault-injection spec dict, shipped to workers inside
        the blueprint payload and applied by
        :func:`~repro.serving.blueprint.serve_batch_task` before each
        batch (see ``tests/_chaos.py``).  ``None`` in production.
    obs:
        Optional :class:`~repro.obs.ObsConfig`.  With a registry, the
        server records the ``repro_*`` serving metric families (request
        outcomes, queue wait, end-to-end latency, batch sizes, per-lane
        worker compute, hedge/redispatch counts) labeled with the
        config's tenant; with a tracer, every request gets a trace —
        minted here at :meth:`submit`, or adopted from the network
        ingress via the ``trace=`` argument — whose spans cover queue,
        assembly, lane dispatch, worker compute (recorded with the
        *worker's* pid), hedge/redispatch events, and total.  ``None``
        (the default) keeps the task tuples, result shapes, and costs of
        the uninstrumented server.

    Use as an async context manager::

        async with QueryServer(cluster, workers=4) as server:
            answer = await server.submit(node, "rwr")
    """

    def __init__(
        self,
        cluster: DistributedCluster,
        *,
        workers: "int | None" = 1,
        max_batch: int = 16,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
        use_shared_memory: bool = True,
        mp_context=None,
        executor: "LaneExecutor | None" = None,
        lane_offset: int = 0,
        hedge_ms: "float | None" = None,
        max_redispatch: int = 2,
        retry_policy: "RetryPolicy | None" = None,
        deadline_ms: "float | None" = None,
        breakers: "BreakerBoard | None" = None,
        chaos: "Dict | None" = None,
        obs: "ObsConfig | None" = None,
    ):
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ServingError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_pending < 1:
            raise ServingError(f"max_pending must be >= 1, got {max_pending}")
        if hedge_ms is not None and hedge_ms < 0:
            raise ServingError(f"hedge_ms must be >= 0, got {hedge_ms}")
        if max_redispatch < 0:
            raise ServingError(f"max_redispatch must be >= 0, got {max_redispatch}")
        self._cluster = cluster
        self._workers = workers
        self._max_batch = int(max_batch)
        self._max_wait = float(max_wait_ms) / 1000.0
        self._max_pending = int(max_pending)
        self._use_shared_memory = use_shared_memory
        self._mp_context = mp_context
        self._external_executor = executor
        self._lane_offset = int(lane_offset)
        self._hedge = None if hedge_ms is None else float(hedge_ms) / 1000.0
        self._max_redispatch = int(max_redispatch)
        # max_redispatch=N maps onto an immediate-redispatch policy, so
        # the legacy knob and the new one share a single retry path.
        self._retry = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=self._max_redispatch + 1, base_ms=0.0, jitter=0.0
            )
        )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServingError(f"deadline_ms must be positive, got {deadline_ms}")
        self._deadline_ms = None if deadline_ms is None else float(deadline_ms)
        self._breakers = breakers
        self._chaos = chaos
        self._obs = obs if obs is not None and obs.enabled else None
        self._tracer = self._obs.tracer if self._obs is not None else None
        # Shipped as the batch task's 4th element when observability is
        # on; its presence is also what makes serve_batch_task return the
        # (answers, obs) pair instead of the legacy bare answer list.
        self._ospec: "Dict[str, Any] | None" = None
        if self._obs is not None:
            self._ospec = {
                "ppid": os.getpid(),
                "profile": bool(self._obs.profile_workers),
            }
        self._metrics: "Dict[str, Any] | None" = None
        if self._obs is not None and self._obs.registry is not None:
            self._metrics = self._build_metrics(self._obs)
        self.stats = ServingStats()
        self._running = False
        self._accepting = False
        self._queue: "asyncio.Queue[object] | None" = None
        self._dispatcher: "asyncio.Task | None" = None
        self._executor: "LaneExecutor | None" = None
        self._owns_executor = True
        self._blueprint: "ClusterBlueprint | None" = None
        self._inflight: "set[asyncio.Future]" = set()
        self._outstanding: "Set[_Request]" = set()
        self._updates: Dict[int, Dict] = {}
        # In-flight batch copies per (machine_id, version): a superseded
        # update's shm block is retired when its count returns to zero.
        self._update_refs: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _build_metrics(obs: ObsConfig) -> "Dict[str, Any]":
        """Pre-resolve this server's instruments (one dict per tenant label)."""
        reg = obs.registry
        tenant = obs.tenant
        outcome = {
            o: reg.counter(
                "repro_requests_total",
                "Query requests by final outcome",
                tenant=tenant,
                outcome=o,
            )
            for o in ("answered", "failed", "cancelled", "rejected", "shed")
        }
        return {
            "outcome": outcome,
            "admitted": reg.counter(
                "repro_admitted_total", "Queries admitted to the queue", tenant=tenant
            ),
            "batches": reg.counter(
                "repro_batches_total", "Micro-batches flushed", tenant=tenant
            ),
            "hedges": reg.counter(
                "repro_hedges_total", "Batches hedged onto a second lane", tenant=tenant
            ),
            "hedge_wins": reg.counter(
                "repro_hedge_wins_total", "Hedged copies that delivered first", tenant=tenant
            ),
            "redispatches": reg.counter(
                "repro_redispatches_total", "Batches re-sent after worker death", tenant=tenant
            ),
            "swaps": reg.counter(
                "repro_swaps_total", "Hot machine-source swaps", tenant=tenant
            ),
            "queue_wait": reg.histogram(
                "repro_queue_wait_seconds",
                "Admission-to-flush wait per request",
                tenant=tenant,
            ),
            "latency": reg.histogram(
                "repro_request_latency_seconds",
                "Admission-to-resolution latency per request",
                tenant=tenant,
            ),
            "batch_size": reg.histogram(
                "repro_batch_size",
                "Requests per flushed micro-batch",
                bounds=DEFAULT_SIZE_BOUNDS,
                tenant=tenant,
            ),
            "queue_depth": reg.gauge(
                "repro_queue_depth", "Admitted-but-undispatched requests", tenant=tenant
            ),
        }

    def _worker_compute_hist(self, lane: int):
        """The per-lane worker-compute histogram (lanes appear dynamically)."""
        return self._obs.registry.histogram(
            "repro_worker_compute_seconds",
            "Batch compute time inside a lane worker",
            tenant=self._obs.tenant,
            lane=str(lane),
        )

    def _trace_each(self, batch: "List[_Request]", name: str, duration_s: float, **meta: Any) -> None:
        """Record one span under every traced request of a batch."""
        for request in batch:
            if request.trace is not None:
                self._tracer.record(request.trace.trace_id, name, duration_s, **meta)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the server is started and accepting submissions."""
        return self._running

    @property
    def cluster(self) -> DistributedCluster:
        """The cluster this server answers for."""
        return self._cluster

    @property
    def uses_shared_memory(self) -> bool:
        """Whether machine arrays actually live in shared memory."""
        return self._blueprint is not None and self._blueprint.uses_shared_memory

    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet resolved (the ledger's pending)."""
        return len(self._outstanding)

    async def start(self) -> "QueryServer":
        """Export the cluster, start the serving lanes and the dispatcher."""
        if self._running:
            raise ServingError("server already started")
        self._blueprint = ClusterBlueprint(
            self._cluster, use_shared_memory=self._use_shared_memory
        )
        payload = self._blueprint.payload
        if self._chaos is not None:
            payload["chaos"] = dict(self._chaos)
        if self._external_executor is not None:
            if not self._external_executor.started:
                self._blueprint.close()
                self._blueprint = None
                raise ServingError("external executor must be started before the server")
            self._executor = self._external_executor
            self._owns_executor = False
        else:
            try:
                self._executor = LaneExecutor(
                    self._workers, mp_context=self._mp_context, shared=payload
                ).start()
            except BaseException:
                # A failed pool start must not leak the shared-memory block.
                self._blueprint.close()
                self._blueprint = None
                raise
            self._owns_executor = True
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self.stats = ServingStats()
        self._updates = {}
        self._update_refs = {}
        self._outstanding = set()
        self._running = True
        self._accepting = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    def swap_machine(self, machine: Machine) -> None:
        """Hot-swap one machine's query source without a restart.

        Exports the machine's *current* source (typically just refreshed
        or residual-extended by the streaming layer) as a versioned
        update that rides along with every subsequent batch flushed for
        that machine.  In-flight batches are untouched — they carry the
        version that was live when they were flushed, so no request is
        dropped or re-answered — and batches flushed from now on are
        answered against the new source, byte-identically to
        ``cluster.answer`` after the same swap.
        """
        if not self._running:
            raise ServingError("server is not running")
        previous = self._updates.get(machine.machine_id)
        self._updates[machine.machine_id] = self._blueprint.export_update(machine)
        self.stats.swaps += 1
        if self._metrics is not None:
            self._metrics["swaps"].inc()
        if previous is not None:
            # The superseded generation can be reclaimed as soon as no
            # in-flight batch carries it (possibly right now).
            key = (machine.machine_id, previous["version"])
            if self._update_refs.get(key, 0) == 0:
                self._blueprint.retire_update(*key)

    def cancel_pending(self) -> int:
        """Cancel every admitted-but-unresolved request future.

        The tenant-eviction path: clients see ``CancelledError``, the
        ledger counts each such request under ``cancelled`` when its
        batch drains, and :meth:`stop` afterwards leaves
        ``admitted == answered + failed + cancelled``.  Returns how many
        futures this call cancelled.
        """
        count = 0
        for request in tuple(self._outstanding):
            if not request.future.done():
                request.future.cancel()
                count += 1
        return count

    async def stop(self) -> None:
        """Drain in-flight work, stop the dispatcher, release the lanes.

        Teardown is unconditional: even if the dispatcher died on an
        unexpected error, the pool is shut down, the shared-memory block
        unlinked, and every unresolved request failed rather than left
        hanging.
        """
        if not self._running:
            return
        self._accepting = False
        try:
            # A plain ``await queue.put(_STOP)`` deadlocks when the
            # admission queue is full and the dispatcher has already
            # crashed: nothing will ever drain the queue, so the put —
            # and with it the whole teardown — blocks forever.  Race the
            # put against dispatcher completion instead: a live
            # dispatcher makes room and receives the sentinel; a dead
            # one completes the wait immediately and the sentinel is
            # abandoned (the drain below rejects the stranded requests).
            put_stop = asyncio.ensure_future(self._queue.put(_STOP))
            await asyncio.wait(
                {put_stop, self._dispatcher}, return_when=asyncio.FIRST_COMPLETED
            )
            if not put_stop.done():
                put_stop.cancel()
            await asyncio.gather(put_stop, return_exceptions=True)
            await asyncio.gather(self._dispatcher, return_exceptions=True)
            # Submissions that slipped past the STOP sentinel (admission
            # races resolve in queue order) — or that were stranded by a
            # dispatcher crash — are rejected rather than left hanging.
            while True:
                try:
                    leftover = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if leftover is not _STOP:
                    self._fail_request(leftover, ServingError("server stopped"))
            # Re-dispatches and hedges can add new in-flight futures
            # while the drain awaits the old ones, so loop to quiescence.
            while self._inflight:
                await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        finally:
            self._running = False
            if self._metrics is not None:
                self._metrics["queue_depth"].set(0)
            if self._owns_executor and self._executor is not None:
                self._executor.shutdown()
            release_session(self._blueprint.payload)  # inline-path caches
            self._blueprint.close()
            self._dispatcher = None
            self._queue = None

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _make_request(
        self,
        node: int,
        query_type: str,
        trace: "TraceHandle | None" = None,
        deadline: "Deadline | None" = None,
    ) -> _Request:
        if not self._accepting:
            raise ServingError("server is not accepting queries")
        if query_type not in QUERY_TYPES:
            raise QueryError(f"unknown query type {query_type!r}")
        machine = self._cluster.machine_for(int(node))  # validates the node
        future: "asyncio.Future[np.ndarray]" = asyncio.get_running_loop().create_future()
        request = _Request(int(node), query_type, machine.machine_id, future)
        if deadline is None and self._deadline_ms is not None:
            deadline = Deadline.after_ms(self._deadline_ms)
        if deadline is not None and not deadline.unbounded:
            request.deadline = deadline
        if self._obs is not None:
            request.admitted_at = time.perf_counter()
            if self._tracer is not None:
                if trace is None:
                    # In-process caller: this server is the ingress edge.
                    request.trace = self._tracer.begin(
                        "query",
                        tenant=self._obs.tenant,
                        node=request.node,
                        query_type=query_type,
                    )
                    request.owns_trace = True
                else:
                    request.trace = trace
        return request

    def _note_admitted(self, request: _Request) -> None:
        self.stats.admitted += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, self._queue.qsize())
        self._outstanding.add(request)
        if self._metrics is not None:
            self._metrics["admitted"].inc()
            self._metrics["queue_depth"].set(self._queue.qsize())

    def _note_rejected(self, request: _Request) -> None:
        self.stats.rejected += 1
        if self._metrics is not None:
            self._metrics["outcome"]["rejected"].inc()
        if request.owns_trace:
            request.trace.finish(status="rejected")

    def submit_nowait(
        self,
        node: int,
        query_type: str,
        *,
        trace: "TraceHandle | None" = None,
        deadline: "Deadline | None" = None,
    ) -> "asyncio.Future[np.ndarray]":
        """Admit one query without waiting; returns its answer future.

        Raises :class:`ServingError` when the admission queue is full
        (load shedding) or the server is not running, and
        :class:`~repro.errors.QueryError` for invalid nodes/query types —
        the same validation surface as ``cluster.answer``.  *trace* lets
        an upstream ingress (the network tier) attach the trace it
        already minted for this request; *deadline* the budget it minted
        (defaulting to the server's ``deadline_ms``, or unbounded).
        """
        request = self._make_request(node, query_type, trace, deadline)
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self._note_rejected(request)
            raise ServingError(
                f"admission queue full ({self._max_pending} pending); retry or back off"
            ) from None
        self._note_admitted(request)
        return request.future

    async def submit(
        self,
        node: int,
        query_type: str,
        *,
        trace: "TraceHandle | None" = None,
        deadline: "Deadline | None" = None,
    ) -> np.ndarray:
        """Admit one query (waiting for queue space if needed) and await it.

        This is the backpressure path: a saturated server slows its
        clients down instead of growing without bound.
        """
        request = self._make_request(node, query_type, trace, deadline)
        await self._queue.put(request)
        self._note_admitted(request)
        return await request.future

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        pending: Dict[int, List[_Request]] = {}
        try:
            await self._dispatch(pending)
        except BaseException as error:
            # The dispatcher must never die silently with requests parked
            # in its buffers: fail them so clients unblock, then let
            # stop() handle teardown.
            for batch in pending.values():
                for request in batch:
                    self._fail_request(request, error)
            pending.clear()
            raise

    async def _dispatch(self, pending: Dict[int, List[_Request]]) -> None:
        loop = asyncio.get_running_loop()
        deadlines: Dict[int, float] = {}
        stopping = False
        while True:
            timeout: "float | None" = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - loop.time())
            try:
                item = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                item = None
            # Drain whatever arrived in the same wakeup: batches form from
            # genuinely concurrent arrivals, not one queue item per cycle.
            while item is not None:
                if item is _STOP:
                    stopping = True
                else:
                    request = item
                    batch = pending.setdefault(request.machine_id, [])
                    batch.append(request)
                    if len(batch) == 1:
                        deadlines[request.machine_id] = loop.time() + self._max_wait
                    if len(batch) >= self._max_batch:
                        self._flush(request.machine_id, pending, deadlines)
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            now = loop.time()
            for machine_id in [m for m, d in deadlines.items() if d <= now or stopping]:
                self._flush(machine_id, pending, deadlines)
            if stopping:
                for machine_id in list(pending):
                    self._flush(machine_id, pending, deadlines)
                return

    def _flush(
        self,
        machine_id: int,
        pending: Dict[int, List[_Request]],
        deadlines: Dict[int, float],
    ) -> None:
        batch = pending.pop(machine_id, None)
        deadlines.pop(machine_id, None)
        if not batch:
            return
        # Shed work whose budget already ran out in the queue: the
        # client gets a typed DeadlineExceeded now instead of an answer
        # it stopped waiting for after the batch computes.
        expired = [r for r in batch if r.deadline is not None and r.deadline.expired()]
        if expired:
            batch = [r for r in batch if r.deadline is None or not r.deadline.expired()]
            for request in expired:
                self._shed_request(request)
            if not batch:
                return
        self.stats.batches += 1
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(batch))
        t_assemble = time.perf_counter() if self._obs is not None else 0.0
        if any(request.deadline is not None for request in batch):
            # Deadlines ride into the worker as a 3rd item element so
            # compute skips anything that expired in flight.
            items: "List[Tuple]" = [
                (
                    request.node,
                    request.query_type,
                    None if request.deadline is None else request.deadline.expires_at,
                )
                for request in batch
            ]
        else:
            items = [(request.node, request.query_type) for request in batch]
        job = _BatchJob(
            machine_id=machine_id,
            batch=batch,
            items=items,
            update=self._updates.get(machine_id),
        )
        if self._obs is not None:
            now = time.perf_counter()
            if self._metrics is not None:
                self._metrics["batches"].inc()
                self._metrics["batch_size"].observe(len(batch))
                self._metrics["queue_depth"].set(self._queue.qsize())
                queue_wait = self._metrics["queue_wait"]
                for request in batch:
                    queue_wait.observe(now - request.admitted_at)
            if self._tracer is not None:
                for request in batch:
                    if request.trace is not None:
                        self._tracer.record(
                            request.trace.trace_id,
                            "queue",
                            now - request.admitted_at,
                            machine=machine_id,
                        )
                self._trace_each(
                    batch, "assemble", now - t_assemble, machine=machine_id, size=len(batch)
                )
        self._dispatch_job(job)
        if self._hedge is not None and not job.delivered:
            job.hedge_timer = asyncio.get_running_loop().call_later(
                self._hedge, self._fire_hedge, job
            )

    def _lane_for(self, machine_id: int, *, hedged: bool) -> int:
        # Sticky affinity: one lane per machine, so its operator cache
        # lives on exactly one worker.  The hedge copy goes next door.
        preferred = self._lane_offset + machine_id + (1 if hedged else 0)
        if self._breakers is None or self._executor is None or self._executor.inline:
            return preferred
        # Breaker-aware: walk past lanes whose breaker is open (flapping
        # workers) to the nearest admitting lane.  All-open falls back to
        # the preferred lane — total outage beats refusing everything.
        lanes = self._executor.lanes
        for step in range(lanes):
            candidate = (preferred + step) % lanes
            if self._breakers.allow(candidate):
                return candidate
        return preferred % lanes

    def _dispatch_job(self, job: _BatchJob, *, hedged: bool = False) -> None:
        """Submit one copy of a batch to its lane (primary, hedge, retry)."""
        update = job.update
        if self._ospec is not None:
            # Observability on: ship the observation spec as the task's
            # 4th element; the worker then returns (answers, obs).
            task = (job.machine_id, job.items, update, self._ospec)
        elif update is None:
            task = (job.machine_id, job.items)
        else:
            task = (job.machine_id, job.items, update)
        key = None if update is None else (job.machine_id, update["version"])
        if key is not None:
            self._update_refs[key] = self._update_refs.get(key, 0) + 1
        lane = self._lane_for(job.machine_id, hedged=hedged)
        attempt = job.attempts
        t_dispatch = time.perf_counter() if self._obs is not None else 0.0
        try:
            if self._owns_executor:
                pool_future = self._executor.submit(serve_batch_task, task, lane=lane)
            else:
                # Shared executor (multi-tenant host): this server's
                # payload rides with the task instead of living as the
                # pool's session value.
                pool_future = self._executor.submit(
                    serve_batch_task, task, lane=lane, shared=self._blueprint.payload
                )
        except BaseException as error:  # e.g. executor already shut down
            self._release_update(key)
            if not job.delivered and not job.pending:
                job.delivered = True
                self._cancel_hedge(job)
                for request in job.batch:
                    self._fail_request(request, error)
            return
        wrapped = asyncio.ensure_future(asyncio.wrap_future(pool_future))
        self._inflight.add(wrapped)
        job.pending.add(wrapped)
        wrapped.add_done_callback(
            lambda done, job=job, key=key, hedged=hedged: self._on_batch_done(
                done, job, key, hedged, lane=lane, attempt=attempt, t_dispatch=t_dispatch
            )
        )

    def _fire_hedge(self, job: _BatchJob) -> None:
        """Hedge deadline passed: duplicate the batch onto the next lane."""
        job.hedge_timer = None
        if job.delivered or not job.pending or not self._running:
            return
        self.stats.hedged += 1
        if self._metrics is not None:
            self._metrics["hedges"].inc()
        if self._tracer is not None:
            for request in job.batch:
                if request.trace is not None:
                    self._tracer.event(
                        request.trace.trace_id,
                        "hedge",
                        machine=job.machine_id,
                        lane=self._lane_for(job.machine_id, hedged=True),
                    )
        self._dispatch_job(job, hedged=True)

    def _cancel_hedge(self, job: _BatchJob) -> None:
        if job.hedge_timer is not None:
            job.hedge_timer.cancel()
            job.hedge_timer = None

    @staticmethod
    def _retryable(error: BaseException) -> bool:
        """Worker-death errors — the batch is intact, only its lane died."""
        return isinstance(error, BrokenProcessPool)

    def _on_batch_done(
        self,
        done: "asyncio.Future",
        job: _BatchJob,
        key: "Tuple[int, int] | None",
        hedged: bool,
        *,
        lane: int = 0,
        attempt: int = 0,
        t_dispatch: float = 0.0,
    ) -> None:
        self._release_update(key)
        self._inflight.discard(done)
        job.pending.discard(done)
        won = not job.delivered
        if done.cancelled():
            error: "BaseException | None" = asyncio.CancelledError("batch copy cancelled")
        else:
            error = done.exception()
        answers = done.result() if error is None and not done.cancelled() else None
        obs_payload = None
        if answers is not None and self._ospec is not None:
            answers, obs_payload = answers
        if self._breakers is not None and not done.cancelled():
            # Feed the lane's breaker: worker deaths are lane failures;
            # application errors are not (the lane computed fine).
            breaker = self._breakers.get(lane % max(1, self._executor.lanes))
            if error is None:
                breaker.record_success()
            elif self._retryable(error):
                breaker.record_failure()
        if self._obs is not None:
            self._note_copy_done(
                job,
                obs_payload,
                lane=lane,
                attempt=attempt,
                hedged=hedged,
                t_dispatch=t_dispatch,
                outcome=(
                    "cancelled"
                    if done.cancelled()
                    else "error"
                    if error is not None
                    else "delivered"
                    if won
                    else "late"
                ),
            )
        if not won:
            # A sibling copy already resolved every request — the
            # exactly-once gate that pins hedge dedup.
            return
        if error is None:
            job.delivered = True
            self._cancel_hedge(job)
            for loser in tuple(job.pending):
                loser.cancel()
            if hedged:
                self.stats.hedge_wins += 1
                if self._metrics is not None:
                    self._metrics["hedge_wins"].inc()
            for request, answer in zip(job.batch, answers):
                if answer is None:
                    # The worker skipped this item: its shipped deadline
                    # expired before compute.  Typed shed, not a failure.
                    self._shed_request(request)
                else:
                    self._resolve_request(request, answer)
            return
        if job.pending:
            # Another copy of this batch is still in flight; it will
            # deliver, or its own completion will drive the retry below.
            return
        if (
            self._retryable(error)
            and self._retry.should_retry(job.attempts + 1)
            and self._running
        ):
            # The worker died mid-batch.  The lane is re-spawned lazily
            # by the next submit; re-dispatch this batch onto it after
            # the policy's backoff (immediate for the legacy
            # max_redispatch mapping).
            job.attempts += 1
            self.stats.redispatches += 1
            if self._metrics is not None:
                self._metrics["redispatches"].inc()
            if self._tracer is not None:
                for request in job.batch:
                    if request.trace is not None:
                        self._tracer.event(
                            request.trace.trace_id,
                            "redispatch",
                            machine=job.machine_id,
                            attempt=job.attempts,
                        )
            delay_ms = self._retry.backoff_ms(job.attempts, key=f"m{job.machine_id}")
            if delay_ms <= 0:
                self._dispatch_job(job)
            else:
                self._schedule_retry(job, delay_ms / 1000.0)
            return
        job.delivered = True
        self._cancel_hedge(job)
        for request in job.batch:
            self._fail_request(request, error)

    def _schedule_retry(self, job: _BatchJob, delay_s: float) -> None:
        """Re-dispatch *job* after a backoff sleep.

        The sleep rides in ``_inflight`` (and the job's ``pending`` set)
        like a batch copy, so ``stop()``'s drain loop waits it out and
        hedge delivery cancels it — no copy is ever orphaned behind a
        timer.
        """
        timer = asyncio.get_running_loop().create_task(asyncio.sleep(delay_s))
        self._inflight.add(timer)
        job.pending.add(timer)
        timer.add_done_callback(lambda done, job=job: self._on_retry_timer(done, job))

    def _on_retry_timer(self, done: "asyncio.Future", job: _BatchJob) -> None:
        self._inflight.discard(done)
        job.pending.discard(done)
        if job.delivered or done.cancelled():
            return
        self._dispatch_job(job)

    def _note_copy_done(
        self,
        job: _BatchJob,
        obs_payload: "Dict[str, Any] | None",
        *,
        lane: int,
        attempt: int,
        hedged: bool,
        t_dispatch: float,
        outcome: str,
    ) -> None:
        """Record one batch copy's round trip: dispatch span, compute span
        (with the worker's pid — the cross-process proof), worker compute
        histogram, and the harvested worker-registry delta."""
        if self._tracer is not None:
            round_trip = time.perf_counter() - t_dispatch
            self._trace_each(
                job.batch,
                "dispatch",
                round_trip,
                machine=job.machine_id,
                lane=lane,
                hedged=hedged,
                attempt=attempt,
                outcome=outcome,
            )
        if obs_payload is None:
            return
        compute_s = obs_payload.get("compute_s", 0.0)
        if self._tracer is not None:
            self._trace_each(
                job.batch,
                "compute",
                compute_s,
                pid=obs_payload.get("pid"),
                machine=job.machine_id,
                lane=lane,
                hedged=hedged,
            )
        if self._metrics is not None:
            self._worker_compute_hist(lane).observe(compute_s)
            harvest = obs_payload.get("metrics")
            if harvest:
                self._obs.registry.merge_snapshot(harvest)

    def _release_update(self, key: "Tuple[int, int] | None") -> None:
        """Drop one in-flight reference; retire superseded generations."""
        if key is None:
            return
        remaining = self._update_refs.get(key, 0) - 1
        if remaining > 0:
            self._update_refs[key] = remaining
            return
        self._update_refs.pop(key, None)
        machine_id, version = key
        current = self._updates.get(machine_id)
        if self._blueprint is not None and (
            current is None or current["version"] != version
        ):
            self._blueprint.retire_update(machine_id, version)

    def _resolve_request(self, request: _Request, answer: np.ndarray) -> None:
        # Count only futures this server actually resolves: a client
        # may have cancelled (or timed out) its request while the
        # batch was in flight, and blindly bumping ``answered`` for
        # those would drift the counters away from answers delivered.
        self._outstanding.discard(request)
        if request.future.done():
            self.stats.cancelled += 1
            self._note_resolved(request, "cancelled")
        else:
            request.future.set_result(answer)
            self.stats.answered += 1
            self._note_resolved(request, "answered")

    def _fail_request(self, request: _Request, error: BaseException) -> None:
        self._outstanding.discard(request)
        if request.future.done():
            self.stats.cancelled += 1
            self._note_resolved(request, "cancelled")
        else:
            request.future.set_exception(error)
            self.stats.failed += 1
            self._note_resolved(request, "failed")

    def _shed_request(self, request: _Request) -> None:
        """Drop a deadline-expired request with a typed error (ledger: shed)."""
        self._outstanding.discard(request)
        if request.future.done():
            self.stats.cancelled += 1
            self._note_resolved(request, "cancelled")
        else:
            request.future.set_exception(
                DeadlineExceeded(
                    f"deadline expired before compute for node {request.node}"
                )
            )
            self.stats.shed += 1
            self._note_resolved(request, "shed")

    def _note_resolved(self, request: _Request, outcome: str) -> None:
        """Request reached its final state: outcome metrics + trace total."""
        if self._obs is None:
            return
        if self._metrics is not None:
            self._metrics["outcome"][outcome].inc()
            self._metrics["latency"].observe(time.perf_counter() - request.admitted_at)
        if request.owns_trace and request.trace is not None:
            request.trace.finish(status="ok" if outcome == "answered" else outcome)


def serve_queries(
    cluster: DistributedCluster,
    queries: Sequence[Tuple[int, str]],
    *,
    workers: "int | None" = 1,
    **server_kwargs,
) -> List[np.ndarray]:
    """Serve a fixed query stream and return the answers in request order.

    Synchronous convenience over :class:`QueryServer` for scripts and
    tests: all queries are submitted concurrently (arrival order =
    sequence order), duplicates included, and each gets its own answer.
    """

    async def _run() -> List[np.ndarray]:
        async with QueryServer(cluster, workers=workers, **server_kwargs) as server:
            return list(
                await asyncio.gather(
                    *(server.submit(node, query_type) for node, query_type in queries)
                )
            )

    return asyncio.run(_run())
