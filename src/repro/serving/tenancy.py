"""Multi-tenant hosting: several clusters served by one process.

The ROADMAP's serving tier must host *several* clusters in one server —
one per **tenant** — with tenant → cluster routing, per-tenant admission
quotas, and a per-tenant ledger.  :class:`TenantHost` is that layer:

* one shared :class:`~repro.parallel.lanes.LaneExecutor` serves every
  tenant (each tenant's blueprint payload rides with its batches, and
  workers cache attached clusters per payload token, so co-hosted
  tenants never share or clobber each other's machine rebuilds);
* each tenant gets its **own** :class:`~repro.serving.server.QueryServer`
  — its own admission queue, micro-batcher, hedging policy, and
  :class:`~repro.serving.server.ServingStats` ledger — with a distinct
  ``lane_offset`` so tenants spread over the lanes instead of all
  pinning their machine 0 to lane 0;
* :meth:`TenantHost.submit` routes ``(tenant, node, query_type)`` and
  enforces the tenant's ``max_inflight`` admission quota on top of the
  server's bounded queue;
* :meth:`TenantHost.evict` removes a tenant mid-flight: either draining
  (every admitted request still answers) or cancelling (unresolved
  futures are cancelled, the batch results are discarded on arrival),
  and in both cases the tenant's ledger balances
  ``admitted == answered + failed + cancelled`` afterwards.

Isolation contract: a tenant's answers are byte-identical to *its own*
``cluster.answer`` — never another tenant's — for any interleaving of
tenants, faults, hedges, and evictions.  The chaos suite pins this.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.distributed.cluster import DistributedCluster
from repro.errors import DeadlineExceeded, Overloaded, TenantError
from repro.obs import ObsConfig, TraceHandle
from repro.parallel.lanes import LaneExecutor
from repro.resilience.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.resilience.health import LaneSupervisor
from repro.resilience.policy import Deadline, RetryPolicy
from repro.serving.blueprint import release_session_task
from repro.serving.server import QueryServer, ServingStats


@dataclass
class TenantConfig:
    """Per-tenant serving knobs (defaults match a bare ``QueryServer``).

    ``max_inflight`` is the admission **quota**: the number of requests a
    tenant may have in service at once.  ``None`` means unbounded (the
    server's ``max_pending`` queue bound still applies); exceeding it
    raises :class:`~repro.errors.TenantError` immediately — quota
    rejections shed load, they do not backpressure.

    ``deadline_ms`` / ``retry_policy`` flow through to the tenant's
    server (deadline budgets minted at submit; backoff-driven batch
    re-dispatch).  ``breaker`` arms a per-tenant **deadline-burn
    breaker**: deadline sheds count as failures, answers as successes,
    and while the breaker is open the tenant's submissions are shed at
    admission with :class:`~repro.errors.Overloaded` (carrying a
    ``retry_after_ms`` hint) instead of burning more budget.
    """

    max_pending: int = 1024
    max_inflight: "int | None" = None
    max_batch: int = 16
    max_wait_ms: float = 2.0
    hedge_ms: "float | None" = None
    max_redispatch: int = 2
    retry_policy: "RetryPolicy | None" = None
    deadline_ms: "float | None" = None
    breaker: "BreakerConfig | None" = None


@dataclass
class _Tenant:
    name: str
    server: QueryServer
    config: TenantConfig
    inflight: int = 0
    quota_rejections: int = 0
    lane_offset: int = 0
    breaker: "CircuitBreaker | None" = None
    breaker_rejections: int = 0


class TenantHost:
    """Route queries to per-tenant servers over one shared lane pool.

    Parameters
    ----------
    workers:
        Lane count of the shared executor (``1`` = inline reference
        path; every tenant then answers in the event loop).
    use_shared_memory:
        Per-tenant blueprint shipping mode (see ``QueryServer``).
        Shared memory is strongly preferred here: without it a tenant's
        full arrays are re-pickled with **every** batch, because a
        shared executor cannot install any single tenant's payload as
        its session value.
    mp_context:
        Optional multiprocessing context for the shared lanes.
    chaos:
        Optional fault-injection spec applied to every tenant's batches
        (see :func:`~repro.serving.blueprint.serve_batch_task`).
    obs:
        Optional :class:`~repro.obs.ObsConfig`.  Each tenant's server
        gets a copy labeled with the tenant's name
        (``ObsConfig.for_tenant``), so every metric family carries a
        ``tenant`` label and traces note which tenant they served.

    Usage::

        async with TenantHost(workers=4) as host:
            await host.add_tenant("acme", acme_cluster)
            await host.add_tenant("globex", globex_cluster)
            answer = await host.submit("acme", node, "rwr")
    """

    def __init__(
        self,
        *,
        workers: "int | None" = 1,
        use_shared_memory: bool = True,
        mp_context=None,
        chaos: "Dict | None" = None,
        obs: "ObsConfig | None" = None,
        lane_breaker: "BreakerConfig | None" = None,
        supervise_ms: "float | None" = None,
        standby: bool = False,
    ):
        self._workers = workers
        self._use_shared_memory = use_shared_memory
        self._mp_context = mp_context
        self._chaos = chaos
        self._obs = obs
        self._executor: "LaneExecutor | None" = None
        self._tenants: "Dict[str, _Tenant]" = {}
        self._offsets = 0
        self._started = False
        registry = obs.registry if obs is not None and obs.enabled else None
        self._registry = registry
        # One lane breaker board shared by every tenant's server: a
        # flapping lane trips for all tenants at once, and recovery
        # probes are host-wide rather than per-tenant.
        self._lane_breakers = (
            None
            if lane_breaker is None
            else BreakerBoard("lane", lane_breaker, metrics=registry)
        )
        self._supervise_ms = supervise_ms
        self._standby = bool(standby)
        self._supervisor: "LaneSupervisor | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the shared lanes are up."""
        return self._started

    @property
    def executor(self) -> "LaneExecutor | None":
        """The shared lane executor (``None`` before :meth:`start`)."""
        return self._executor

    @property
    def supervisor(self) -> "LaneSupervisor | None":
        """The lane supervisor (``None`` unless ``supervise_ms`` was set)."""
        return self._supervisor

    @property
    def lane_breakers(self) -> "BreakerBoard | None":
        """The shared per-lane breaker board (``None`` when disabled)."""
        return self._lane_breakers

    async def start(self) -> "TenantHost":
        """Spawn the shared lanes; tenants are added afterwards."""
        if self._started:
            raise TenantError("tenant host already started")
        self._executor = LaneExecutor(
            self._workers, mp_context=self._mp_context, standby=self._standby
        ).start()
        self._started = True
        if self._supervise_ms is not None:
            self._supervisor = LaneSupervisor(
                self._executor, interval_ms=self._supervise_ms, metrics=self._registry
            )
            await self._supervisor.start()
        return self

    async def close(self) -> None:
        """Evict every tenant (draining) and release the shared lanes."""
        if not self._started:
            return
        try:
            if self._supervisor is not None:
                await self._supervisor.stop()
                self._supervisor = None
            for name in list(self._tenants):
                await self.evict(name, drain=True)
        finally:
            self._started = False
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None

    async def __aenter__(self) -> "TenantHost":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # tenant directory
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        """Registered tenant names, registration-ordered."""
        return list(self._tenants)

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise TenantError(
                f"unknown tenant {name!r}; registered: {', '.join(self._tenants) or '(none)'}"
            )
        return tenant

    def server(self, name: str) -> QueryServer:
        """The tenant's dedicated :class:`QueryServer` (routing target)."""
        return self._tenant(name).server

    def cluster(self, name: str) -> DistributedCluster:
        """The cluster a tenant's queries are answered against."""
        return self._tenant(name).server.cluster

    async def add_tenant(
        self,
        name: str,
        cluster: DistributedCluster,
        *,
        config: "TenantConfig | None" = None,
    ) -> QueryServer:
        """Register a tenant and start serving its cluster.

        Tenant names are unique; re-registering one raises
        :class:`~repro.errors.TenantError` (evict first).  Returns the
        tenant's server so callers can reach its stats and hot-swap
        surface directly.
        """
        if not self._started:
            raise TenantError("start the tenant host before adding tenants")
        if not name or not isinstance(name, str):
            raise TenantError(f"tenant name must be a non-empty string, got {name!r}")
        if name in self._tenants:
            raise TenantError(f"tenant {name!r} is already registered")
        config = config or TenantConfig()
        lane_offset = self._offsets
        self._offsets += 1
        server = QueryServer(
            cluster,
            executor=self._executor,
            lane_offset=lane_offset,
            max_pending=config.max_pending,
            max_batch=config.max_batch,
            max_wait_ms=config.max_wait_ms,
            hedge_ms=config.hedge_ms,
            max_redispatch=config.max_redispatch,
            retry_policy=config.retry_policy,
            deadline_ms=config.deadline_ms,
            breakers=self._lane_breakers,
            use_shared_memory=self._use_shared_memory,
            chaos=self._chaos,
            obs=self._obs.for_tenant(name) if self._obs is not None else None,
        )
        await server.start()
        breaker = None
        if config.breaker is not None:
            breaker = CircuitBreaker(config.breaker)
        self._tenants[name] = _Tenant(
            name=name,
            server=server,
            config=config,
            lane_offset=lane_offset,
            breaker=breaker,
        )
        return server

    async def evict(self, name: str, *, drain: bool = True) -> ServingStats:
        """Remove a tenant; returns its final (balanced) ledger.

        ``drain=True`` answers everything already admitted before the
        teardown; ``drain=False`` cancels every unresolved request first
        — clients see ``CancelledError``, in-flight batch results are
        discarded on arrival, and the ledger still balances
        (``admitted == answered + failed + cancelled``).  Worker-side
        caches for the tenant's session are evicted on every lane.
        """
        tenant = self._tenant(name)
        server = tenant.server
        payload = server._blueprint.payload if server._blueprint is not None else None
        if not drain:
            server.cancel_pending()
        await server.stop()
        del self._tenants[name]
        # Long-lived lane workers would otherwise keep the evicted
        # tenant's rebuilt machines and shm mappings until pool death.
        if payload is not None and self._executor is not None and not self._executor.inline:
            futures = [
                self._executor.submit(release_session_task, payload, lane=lane)
                for lane in range(self._executor.lanes)
            ]
            await asyncio.gather(
                *(asyncio.wrap_future(f) for f in futures), return_exceptions=True
            )
        return server.stats

    # ------------------------------------------------------------------
    # routed serving
    # ------------------------------------------------------------------
    async def submit(
        self,
        name: str,
        node: int,
        query_type: str,
        *,
        trace: "TraceHandle | None" = None,
        deadline: "Deadline | None" = None,
    ) -> np.ndarray:
        """Answer one query for one tenant (quota-checked, backpressured).

        Raises :class:`~repro.errors.TenantError` for unknown tenants
        and quota violations, and :class:`~repro.errors.Overloaded`
        (with a ``retry_after_ms`` hint) while the tenant's deadline-burn
        breaker is open; everything else matches the tenant server's
        ``submit`` surface.  *trace* is passed through to the tenant
        server, so a network-ingress-minted trace follows the request
        through this tenant's queue, lanes, and workers; *deadline*
        likewise (the ingress-minted budget).
        """
        tenant = self._tenant(name)
        quota = tenant.config.max_inflight
        if quota is not None and tenant.inflight >= quota:
            tenant.quota_rejections += 1
            tenant.server.stats.rejected += 1
            if self._obs is not None and self._obs.registry is not None:
                self._obs.registry.counter(
                    "repro_quota_rejections_total",
                    "Submissions refused at the tenant inflight quota",
                    tenant=name,
                ).inc()
            raise TenantError(
                f"tenant {name!r} admission quota exceeded "
                f"({tenant.inflight}/{quota} in flight); retry or back off"
            )
        if tenant.breaker is not None and not tenant.breaker.allow():
            # Open deadline-burn breaker: shed at admission with a typed,
            # hinted error instead of queueing work that will expire.
            tenant.breaker_rejections += 1
            if self._obs is not None and self._obs.registry is not None:
                self._obs.registry.counter(
                    "repro_breaker_rejections_total",
                    "Submissions shed while the tenant breaker was open",
                    tenant=name,
                ).inc()
            raise Overloaded(
                f"tenant {name!r} is shedding load (deadline-burn breaker open)",
                retry_after_ms=tenant.breaker.retry_after_ms(),
            )
        tenant.inflight += 1
        try:
            answer = await tenant.server.submit(
                node, query_type, trace=trace, deadline=deadline
            )
        except DeadlineExceeded:
            # The tenant burned a full deadline budget: a breaker signal.
            if tenant.breaker is not None:
                tenant.breaker.record_failure()
            raise
        else:
            if tenant.breaker is not None:
                tenant.breaker.record_success()
            return answer
        finally:
            tenant.inflight -= 1

    def stats(self, name: str) -> ServingStats:
        """One tenant's ledger (live object; snapshot with ``as_dict``)."""
        return self._tenant(name).server.stats

    def all_stats(self) -> "Dict[str, Dict[str, int]]":
        """Snapshot of every tenant's ledger plus host-level quota counts.

        Every key is documented in
        :data:`~repro.serving.server.STATS_FIELDS`.
        """
        out: "Dict[str, Dict[str, int]]" = {}
        for name, tenant in self._tenants.items():
            snapshot = tenant.server.stats.as_dict()
            snapshot["inflight"] = tenant.inflight
            snapshot["quota_rejections"] = tenant.quota_rejections
            snapshot["breaker_rejections"] = tenant.breaker_rejections
            out[name] = snapshot
        return out

    def health(self) -> "Dict[str, object]":
        """Liveness/breaker snapshot behind the ``health`` wire op.

        Lane health comes from the supervisor when one runs (its cached
        view plus respawn counters) or a direct executor probe
        otherwise; breaker snapshots cover the shared lane board and
        every tenant's deadline-burn breaker.
        """
        executor = self._executor
        payload: "Dict[str, object]" = {
            "started": self._started,
            "tenants": list(self._tenants),
        }
        if self._supervisor is not None:
            payload["supervisor"] = self._supervisor.snapshot()
        elif executor is not None:
            payload["lanes"] = executor.lane_health()
        if self._lane_breakers is not None:
            payload["lane_breakers"] = self._lane_breakers.snapshot()
        tenant_breakers = {
            name: tenant.breaker.snapshot()
            for name, tenant in self._tenants.items()
            if tenant.breaker is not None
        }
        if tenant_breakers:
            payload["tenant_breakers"] = tenant_breakers
        return payload

    def aggregate_stats(self) -> "Dict[str, int]":
        """Host-wide ledger: every tenant's counters summed.

        Monotone fields (including ``hedged``/``hedge_wins``/
        ``redispatches``) and the live ``inflight`` gauge add across
        tenants; ``max_batch_size``/``max_queue_depth`` take the max —
        a per-tenant extreme is still the host's extreme.
        """
        total: "Dict[str, int]" = {field: 0 for field in _AGGREGATE_FIELDS}
        for snapshot in self.all_stats().values():
            for field in _AGGREGATE_FIELDS:
                value = snapshot.get(field, 0)
                if field in ("max_batch_size", "max_queue_depth"):
                    total[field] = max(total[field], value)
                else:
                    total[field] += value
        total["tenants"] = len(self._tenants)
        return total


#: Fields :meth:`TenantHost.aggregate_stats` folds across tenants (see
#: :data:`~repro.serving.server.STATS_FIELDS` for their meaning).
_AGGREGATE_FIELDS = (
    "admitted",
    "rejected",
    "answered",
    "failed",
    "cancelled",
    "batches",
    "max_batch_size",
    "max_queue_depth",
    "swaps",
    "hedged",
    "hedge_wins",
    "redispatches",
    "shed",
    "inflight",
    "quota_rejections",
    "breaker_rejections",
)
