"""Shipping a cluster's per-machine query sources to serving workers.

A :class:`~repro.distributed.cluster.DistributedCluster` holds one query
source per machine — a personalized :class:`~repro.core.summary.SummaryGraph`
or a budgeted :class:`~repro.graph.graph.Graph` subgraph.  Serving workers
must answer against *exactly* those sources, for thousands of
micro-batches, without re-pickling them per batch.

:class:`ClusterBlueprint` solves this by reducing every source to the flat
arrays that fully determine its query behavior:

* summary source → ``(supernode_of, lo, hi[, weights])`` — the same
  lexsorted columnar export that already makes query answers
  backend-identical (``SummaryGraph.superedge_arrays``);
* graph source → its CSR ``(indptr, indices)``.

The arrays are packed once into a :class:`~repro.parallel.shm.SharedArrayPack`
(zero-copy attach in each worker; set ``use_shared_memory=False`` to fall
back to pickling the arrays once per worker through the pool initializer).
Workers rebuild a :class:`~repro.distributed.cluster.Machine` per machine
id on first use and cache it for the life of the process, so the
reconstruction operator — the expensive part of RWR/PHP answering — is
built **once per worker per machine**, not once per batch.

Determinism: the rebuilt summary reproduces the original's
``supernode_of`` and lexsorted superedge arrays bit for bit, and every
query answer is a pure function of those arrays (pinned by the
cross-backend equivalence suite), so served answers are byte-identical to
``DistributedCluster.answer`` regardless of worker count, start method,
or storage backend.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.summary import SummaryGraph
from repro.distributed.cluster import DistributedCluster, Machine
from repro.errors import ServingError
from repro.graph.graph import Graph
from repro.parallel.shm import SharedArrayPack, attach_arrays, detach_arrays


def _export_machine(machine: Machine, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Reduce one machine's source to flat arrays plus a small spec."""
    prefix = f"m{machine.machine_id}."
    source = machine.source
    if isinstance(source, SummaryGraph):
        lo, hi, weights = source.superedge_arrays()
        arrays[prefix + "supernode_of"] = source.supernode_of
        arrays[prefix + "lo"] = lo
        arrays[prefix + "hi"] = hi
        if weights is not None:
            arrays[prefix + "weights"] = weights
        return {
            "machine_id": machine.machine_id,
            "kind": "summary",
            "weighted": source.is_weighted,
            "num_nodes": source.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    if isinstance(source, Graph):
        arrays[prefix + "indptr"] = source.indptr
        arrays[prefix + "indices"] = source.indices
        return {
            "machine_id": machine.machine_id,
            "kind": "graph",
            "num_nodes": source.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    raise ServingError(f"cannot serve source of type {type(source).__name__}")


class ClusterBlueprint:
    """Parent-side export of a cluster's machines for serving workers.

    Parameters
    ----------
    cluster:
        The cluster whose machines will answer served queries.
    use_shared_memory:
        Pack the arrays into one ``multiprocessing.shared_memory`` block
        (default; workers attach zero-copy).  ``False`` ships the arrays
        by pickle once per worker instead — the answers are identical,
        only the shipping cost differs.  If the platform cannot create
        shared memory the pickle path is used automatically.

    The :attr:`payload` is what the serving pool installs as its session
    shared value.  Call :meth:`close` when the serving session ends to
    unlink the shared-memory block.
    """

    def __init__(self, cluster: DistributedCluster, *, use_shared_memory: bool = True):
        arrays: Dict[str, np.ndarray] = {}
        specs = [_export_machine(machine, arrays) for machine in cluster.machines]
        self._pack: "SharedArrayPack | None" = None
        payload: Dict[str, Any] = {
            # Workers cache attached clusters by token; uuid keeps two
            # concurrent servers in one process from colliding.
            "token": uuid.uuid4().hex,
            "specs": specs,
        }
        if use_shared_memory:
            try:
                self._pack = SharedArrayPack(arrays)
            except OSError:  # pragma: no cover - no /dev/shm on this platform
                self._pack = None
        if self._pack is not None:
            payload["descriptor"] = self._pack.descriptor
        else:
            payload["arrays"] = {key: np.ascontiguousarray(a) for key, a in arrays.items()}
        self.payload = payload

    @property
    def uses_shared_memory(self) -> bool:
        """Whether the arrays actually live in a shared-memory block."""
        return self._pack is not None

    def close(self) -> None:
        """Unlink the shared-memory block (idempotent)."""
        if self._pack is not None:
            self._pack.close()

    def __enter__(self) -> "ClusterBlueprint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _AttachedCluster:
    """Worker-side lazily rebuilt machines for one serving session."""

    def __init__(self, payload: Dict[str, Any]):
        if "descriptor" in payload:
            self._arrays: Any = attach_arrays(payload["descriptor"])
        else:
            self._arrays = payload["arrays"]
        self._specs = {spec["machine_id"]: spec for spec in payload["specs"]}
        self._machines: Dict[int, Machine] = {}

    def _rebuild_source(self, spec: Dict[str, Any]):
        prefix = f"m{spec['machine_id']}."
        num_nodes = spec["num_nodes"]
        if spec["kind"] == "graph":
            return Graph(num_nodes, self._arrays[prefix + "indptr"], self._arrays[prefix + "indices"])
        lo = self._arrays[prefix + "lo"]
        hi = self._arrays[prefix + "hi"]
        weighted = spec["weighted"]
        if weighted:
            weights = self._arrays[prefix + "weights"]
            superedges = zip(lo.tolist(), hi.tolist(), weights.tolist())
        else:
            superedges = ((a, b, None) for a, b in zip(lo.tolist(), hi.tolist()))
        # Query answering never reads the summary's input graph beyond its
        # node count, so an edgeless stand-in keeps the rebuild cheap.
        return SummaryGraph.from_parts(
            Graph.empty(num_nodes),
            self._arrays[prefix + "supernode_of"],
            superedges,
            weighted=weighted,
        )

    def machine(self, machine_id: int) -> Machine:
        """The rebuilt machine (cached; its operator cache lives with it)."""
        machine = self._machines.get(machine_id)
        if machine is None:
            spec = self._specs.get(machine_id)
            if spec is None:
                raise ServingError(f"machine {machine_id} is not part of this blueprint")
            machine = Machine(
                machine_id=machine_id,
                part_nodes=np.empty(0, dtype=np.int64),  # routing stays in the parent
                source=self._rebuild_source(spec),
                memory_bits=spec["memory_bits"],
            )
            self._machines[machine_id] = machine
        return machine


#: Per-process cache of attached serving sessions, keyed by payload token.
_SESSIONS: Dict[str, _AttachedCluster] = {}


def attached_cluster(payload: Dict[str, Any]) -> _AttachedCluster:
    """The (cached) worker-side view of a serving session's machines."""
    session = _SESSIONS.get(payload["token"])
    if session is None:
        session = _AttachedCluster(payload)
        _SESSIONS[payload["token"]] = session
    return session


def release_session(payload: Dict[str, Any]) -> None:
    """Evict this process's cache for one serving session (no-op if absent).

    Pool workers die with their pool, but the ``workers=1`` inline path
    caches the rebuilt machines — and the shm mapping — in the *parent*;
    ``QueryServer.stop`` calls this so repeated start/stop cycles in one
    process do not accumulate dead sessions.
    """
    _SESSIONS.pop(payload["token"], None)
    descriptor = payload.get("descriptor")
    if descriptor is not None:
        detach_arrays(descriptor.name)


def serve_batch_task(shared: Dict[str, Any], task: Tuple[int, List[Tuple[int, str]]]) -> List[np.ndarray]:
    """Answer one machine's micro-batch (runs in a pool worker).

    ``task`` is ``(machine_id, [(node, query_type), ...])``; the answers
    come back in batch order.  Mixed query types share the machine's
    cached reconstruction operator.
    """
    machine_id, items = task
    machine = attached_cluster(shared).machine(machine_id)
    return [machine.answer(node, query_type) for node, query_type in items]
