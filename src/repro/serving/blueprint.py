"""Shipping a cluster's per-machine query sources to serving workers.

A :class:`~repro.distributed.cluster.DistributedCluster` holds one query
source per machine — a personalized :class:`~repro.core.summary.SummaryGraph`
or a budgeted :class:`~repro.graph.graph.Graph` subgraph.  Serving workers
must answer against *exactly* those sources, for thousands of
micro-batches, without re-pickling them per batch.

:class:`ClusterBlueprint` solves this by reducing every source to the flat
arrays that fully determine its query behavior:

* summary source → ``(supernode_of, lo, hi[, weights])`` — the same
  lexsorted columnar export that already makes query answers
  backend-identical (``SummaryGraph.superedge_arrays``);
* graph source → its CSR ``(indptr, indices)``.

The arrays are packed once into a :class:`~repro.parallel.shm.SharedArrayPack`
(zero-copy attach in each worker; set ``use_shared_memory=False`` to fall
back to pickling the arrays once per worker through the pool initializer).
Sources whose arrays already live on disk — the memory-mapped
:class:`~repro.store.MappedSummary` / :class:`~repro.store.MappedGraph`
produced by ``pipeline(spill_dir=...)`` or :func:`repro.store.load_graph`
— skip shared memory entirely: the blueprint ships only the store *path*
and each worker memory-maps the same checksummed file, so a cluster
larger than RAM is served without ever materializing it in any process.
Workers rebuild a :class:`~repro.distributed.cluster.Machine` per machine
id on first use and cache it for the life of the process, so the
reconstruction operator — the expensive part of RWR/PHP answering — is
built **once per worker per machine**, not once per batch.

Determinism: the rebuilt summary reproduces the original's
``supernode_of`` and lexsorted superedge arrays bit for bit, and every
query answer is a pure function of those arrays (pinned by the
cross-backend equivalence suite), so served answers are byte-identical to
``DistributedCluster.answer`` regardless of worker count, start method,
or storage backend.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.summary import SummaryGraph
from repro.distributed.cluster import DistributedCluster, Machine
from repro.errors import ServingError
from repro.graph.graph import Graph
from repro.parallel.shm import SharedArrayPack, attach_arrays, detach_arrays
from repro.queries.operator import as_residual_source


def _export_summary(summary: SummaryGraph, prefix: str, arrays: Dict[str, np.ndarray]) -> None:
    lo, hi, weights = summary.superedge_arrays()
    arrays[prefix + "supernode_of"] = summary.supernode_of
    arrays[prefix + "lo"] = lo
    arrays[prefix + "hi"] = hi
    if weights is not None:
        arrays[prefix + "weights"] = weights


def _export_machine(machine: Machine, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Reduce one machine's source to flat arrays plus a small spec.

    Memory-mapped sources are special-cased *before* their in-RAM base
    classes: their arrays are already durable and checksummed on disk, so
    the spec carries only the store path and workers memmap it themselves.
    """
    from repro.store.mapped import MappedGraph, MappedSummary

    prefix = f"m{machine.machine_id}."
    source = machine.source
    if isinstance(source, MappedSummary):
        return {
            "machine_id": machine.machine_id,
            "kind": "summary_store",
            "path": source.store_path,
            "num_nodes": source.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    if isinstance(source, MappedGraph):
        return {
            "machine_id": machine.machine_id,
            "kind": "graph_store",
            "path": source.store_path,
            "num_nodes": source.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    if isinstance(source, SummaryGraph):
        _export_summary(source, prefix, arrays)
        return {
            "machine_id": machine.machine_id,
            "kind": "summary",
            "weighted": source.is_weighted,
            "num_nodes": source.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    if isinstance(source, Graph):
        arrays[prefix + "indptr"] = source.indptr
        arrays[prefix + "indices"] = source.indices
        return {
            "machine_id": machine.machine_id,
            "kind": "graph",
            "num_nodes": source.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    residual = as_residual_source(source)
    if residual is not None:
        _export_summary(residual.summary, prefix, arrays)
        arrays[prefix + "extra"] = residual.extra_edge_array()
        return {
            "machine_id": machine.machine_id,
            "kind": "residual",
            "weighted": residual.summary.is_weighted,
            "num_nodes": residual.num_nodes,
            "memory_bits": machine.memory_bits,
        }
    raise ServingError(f"cannot serve source of type {type(source).__name__}")


class ClusterBlueprint:
    """Parent-side export of a cluster's machines for serving workers.

    Parameters
    ----------
    cluster:
        The cluster whose machines will answer served queries.
    use_shared_memory:
        Pack the arrays into one ``multiprocessing.shared_memory`` block
        (default; workers attach zero-copy).  ``False`` ships the arrays
        by pickle once per worker instead — the answers are identical,
        only the shipping cost differs.  If the platform cannot create
        shared memory the pickle path is used automatically.

    The :attr:`payload` is what the serving pool installs as its session
    shared value.  Call :meth:`close` when the serving session ends to
    unlink the shared-memory block.
    """

    def __init__(self, cluster: DistributedCluster, *, use_shared_memory: bool = True):
        arrays: Dict[str, np.ndarray] = {}
        specs = [_export_machine(machine, arrays) for machine in cluster.machines]
        self._pack: "SharedArrayPack | None" = None
        self._use_shared_memory = use_shared_memory
        self._update_packs: Dict[Tuple[int, int], SharedArrayPack] = {}
        self._latest_version: Dict[int, int] = {}
        self._next_version = 1
        payload: Dict[str, Any] = {
            # Workers cache attached clusters by token; uuid keeps two
            # concurrent servers in one process from colliding.
            "token": uuid.uuid4().hex,
            "specs": specs,
        }
        if use_shared_memory and arrays:
            try:
                self._pack = SharedArrayPack(arrays)
            except OSError:  # pragma: no cover - no /dev/shm on this platform
                self._pack = None
        if self._pack is not None:
            payload["descriptor"] = self._pack.descriptor
        else:
            # Store-backed machines contribute no arrays (workers memmap
            # their files), so this may legitimately be empty.
            payload["arrays"] = {key: np.ascontiguousarray(a) for key, a in arrays.items()}
        self.payload = payload

    @property
    def uses_shared_memory(self) -> bool:
        """Whether the arrays actually live in a shared-memory block."""
        return self._pack is not None

    def export_update(self, machine: Machine) -> Dict[str, Any]:
        """Export one machine's *current* source as a hot-swap update.

        Returns a small picklable payload ``{"version", "spec",
        "descriptor" | "arrays"}`` that rides along with every subsequent
        batch task for this machine.  Versions are monotone per
        blueprint, so a worker serves each batch against exactly the
        source generation that was live when the batch was flushed —
        in-flight batches keep their pre-swap version, later ones the new
        one.  The backing shared-memory block (when used) stays alive
        until the version is superseded *and* no in-flight batch still
        references it (:meth:`retire_update`, driven by the server's
        per-batch refcounts), or until :meth:`close`.  Without shared
        memory the arrays ride inside the update payload itself, i.e.
        they are re-pickled per batch for a swapped machine — correct but
        heavier; prefer shared memory for long hot-swapping streams.
        """
        arrays: Dict[str, np.ndarray] = {}
        spec = _export_machine(machine, arrays)
        version = self._next_version
        self._next_version += 1
        update: Dict[str, Any] = {"version": version, "spec": spec}
        pack: "SharedArrayPack | None" = None
        if self._use_shared_memory and self._pack is not None and arrays:
            try:
                pack = SharedArrayPack(arrays)
            except OSError:  # pragma: no cover - no /dev/shm on this platform
                pack = None
        if pack is not None:
            self._update_packs[(machine.machine_id, version)] = pack
            update["descriptor"] = pack.descriptor
        else:
            update["arrays"] = {key: np.ascontiguousarray(a) for key, a in arrays.items()}
        self._latest_version[machine.machine_id] = version
        return update

    def retire_update(self, machine_id: int, version: int) -> None:
        """Unlink a *superseded* update's shared-memory block (idempotent).

        No-op while the version is still the machine's latest (future
        batches will carry it) and for pickle-shipped updates.  Safe even
        if some process still maps the block — unlinking only prevents
        *new* attaches, and the refcounting caller guarantees none will
        come.
        """
        if self._latest_version.get(machine_id) == version:
            return
        pack = self._update_packs.pop((machine_id, version), None)
        if pack is not None:
            pack.close()

    def close(self) -> None:
        """Unlink the shared-memory blocks (idempotent)."""
        if self._pack is not None:
            self._pack.close()
        for pack in self._update_packs.values():
            pack.close()
        self._update_packs = {}
        self._latest_version = {}

    def __enter__(self) -> "ClusterBlueprint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _AttachedCluster:
    """Worker-side lazily rebuilt machines for one serving session.

    Machines are cached per *version*: version 0 is the session's start
    blueprint; hot-swap updates (:meth:`ClusterBlueprint.export_update`)
    ride along with batch tasks and carry their own version plus array
    source, so any worker — regardless of which batches it happened to
    execute — can rebuild exactly the generation a batch was flushed
    against.  Per machine only the most recently used version is kept;
    rebuilding an evicted one from its update payload is always possible.
    """

    def __init__(self, payload: Dict[str, Any]):
        self._attached_names: List[str] = []
        self._containers: List[Any] = []  # opened store containers, for detach
        if "descriptor" in payload:
            self._arrays: Any = self._attach(payload["descriptor"])
        else:
            self._arrays = payload.get("arrays", {})
        self._specs = {spec["machine_id"]: spec for spec in payload["specs"]}
        self._machines: Dict[int, Tuple[int, Machine]] = {}

    def _attach(self, descriptor) -> Any:
        arrays = attach_arrays(descriptor)
        if descriptor.name not in self._attached_names:
            self._attached_names.append(descriptor.name)
        return arrays

    def _rebuild_source(self, spec: Dict[str, Any], arrays: Any):
        prefix = f"m{spec['machine_id']}."
        num_nodes = spec["num_nodes"]
        if spec["kind"] in ("summary_store", "graph_store"):
            # The source's arrays live in a checksummed store file; map it
            # (CRC-verified once per worker) instead of touching shm.
            from repro.store import load_graph, load_summary_binary

            if spec["kind"] == "summary_store":
                source = load_summary_binary(spec["path"])
            else:
                source = load_graph(spec["path"])
            if source.num_nodes != num_nodes:
                raise ServingError(
                    f"store {spec['path']!r} holds {source.num_nodes} nodes, "
                    f"blueprint expected {num_nodes}"
                )
            self._containers.append(source._container)
            return source
        if spec["kind"] == "graph":
            return Graph(num_nodes, arrays[prefix + "indptr"], arrays[prefix + "indices"])
        lo = arrays[prefix + "lo"]
        hi = arrays[prefix + "hi"]
        weighted = spec["weighted"]
        if weighted:
            weights = arrays[prefix + "weights"]
            superedges = zip(lo.tolist(), hi.tolist(), weights.tolist())
        else:
            superedges = ((a, b, None) for a, b in zip(lo.tolist(), hi.tolist()))
        # Query answering never reads the summary's input graph beyond its
        # node count, so an edgeless stand-in keeps the rebuild cheap.
        summary = SummaryGraph.from_parts(
            Graph.empty(num_nodes),
            arrays[prefix + "supernode_of"],
            superedges,
            weighted=weighted,
        )
        if spec["kind"] == "residual":
            from repro.streaming.residual import ResidualSource

            return ResidualSource(
                summary, arrays[prefix + "extra"], assume_filtered=True
            )
        return summary

    def machine(self, machine_id: int, update: "Dict[str, Any] | None" = None) -> Machine:
        """The rebuilt machine for one batch (cached; operator cache included).

        *update* names the source generation the batch was flushed
        against; ``None`` means the session's start blueprint (version 0).
        """
        version = 0 if update is None else update["version"]
        cached = self._machines.get(machine_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        if update is None:
            spec = self._specs.get(machine_id)
            if spec is None:
                raise ServingError(f"machine {machine_id} is not part of this blueprint")
            arrays = self._arrays
        else:
            spec = update["spec"]
            if "descriptor" in update:
                arrays = self._attach(update["descriptor"])
            else:
                arrays = update["arrays"]
        machine = Machine(
            machine_id=machine_id,
            part_nodes=np.empty(0, dtype=np.int64),  # routing stays in the parent
            source=self._rebuild_source(spec, arrays),
            memory_bits=spec["memory_bits"],
        )
        self._machines[machine_id] = (version, machine)
        return machine

    def detach(self) -> None:
        """Unmap every shared-memory block and store file this session opened."""
        self._machines.clear()
        for name in self._attached_names:
            detach_arrays(name)
        self._attached_names = []
        for container in self._containers:
            container.close()
        self._containers = []


#: Per-process cache of attached serving sessions, keyed by payload token.
_SESSIONS: Dict[str, _AttachedCluster] = {}


def attached_cluster(payload: Dict[str, Any]) -> _AttachedCluster:
    """The (cached) worker-side view of a serving session's machines."""
    session = _SESSIONS.get(payload["token"])
    if session is None:
        session = _AttachedCluster(payload)
        _SESSIONS[payload["token"]] = session
    return session


def release_session(payload: Dict[str, Any]) -> None:
    """Evict this process's cache for one serving session (no-op if absent).

    Pool workers die with their pool, but the ``workers=1`` inline path
    caches the rebuilt machines — and the shm mappings, hot-swap updates
    included — in the *parent*; ``QueryServer.stop`` calls this so
    repeated start/stop cycles in one process do not accumulate dead
    sessions.
    """
    session = _SESSIONS.pop(payload["token"], None)
    if session is not None:
        session.detach()
        return
    descriptor = payload.get("descriptor")
    if descriptor is not None:
        detach_arrays(descriptor.name)


def session_cached_task(shared: Dict[str, Any], token: str) -> bool:
    """Whether this worker still caches the session named by *token*.

    Introspection for the eviction tests and for operational probes: a
    tenant evicted from a :class:`~repro.serving.tenancy.TenantHost`
    must leave no cached machines on any lane.  ``shared`` is ignored.
    """
    return token in _SESSIONS


def _invoke_chaos(spec: Dict[str, Any], machine_id: int) -> None:
    """Run a fault-injection hook named by the payload's ``chaos`` spec.

    The spec's ``hook`` is a ``"module:function"`` path resolved in the
    worker process and called as ``hook(spec, machine_id)`` before the
    batch is answered.  This is the serving tier's fault-injection seam:
    the chaos test harness (``tests/_chaos.py``) uses it to kill a
    worker or stall a machine *inside* the real execution path, and it
    costs nothing when no spec is present.
    """
    import importlib

    module_name, _, function_name = str(spec.get("hook", "")).partition(":")
    if not module_name or not function_name:
        raise ServingError(f"malformed chaos hook {spec.get('hook')!r}")
    hook = getattr(importlib.import_module(module_name), function_name)
    hook(spec, machine_id)


def chaos_delay(spec: Dict[str, Any], machine_id: int) -> None:
    """Built-in chaos hook: stall the targeted machine's batches.

    The CLI's ``--chaos slow-lane`` names this hook (the test-only
    injectors in ``tests/_chaos.py`` are not importable from an
    installed CLI).  ``machine`` limits the stall to one machine's lane;
    ``delay_s`` is the per-batch sleep.
    """
    import time

    machine = spec.get("machine")
    if machine is None or int(machine) == machine_id:
        time.sleep(float(spec.get("delay_s", 0.05)))


def _answer_items(machine, items):
    """Answer a batch's items, skipping (→ ``None``) expired deadlines."""
    if items and len(items[0]) == 3:
        from repro.resilience.policy import deadline_expired

        return [
            None
            if deadline_expired(expires_at)
            else machine.answer(node, query_type)
            for node, query_type, expires_at in items
        ]
    return [machine.answer(node, query_type) for node, query_type in items]


def serve_batch_task(shared: Dict[str, Any], task):
    """Answer one machine's micro-batch (runs in a pool worker).

    ``task`` is ``(machine_id, [(node, query_type), ...])`` or, when the
    machine's source was hot-swapped mid-session, ``(machine_id, items,
    update)`` with the swap payload from
    :meth:`ClusterBlueprint.export_update`.  Answers come back in batch
    order; mixed query types share the machine's cached reconstruction
    operator.

    Deadline-carrying batches ship 3-element items ``(node, query_type,
    expires_at)`` (``expires_at`` a raw monotonic instant or ``None``).
    Items whose deadline already passed are skipped — their answer slot
    comes back as ``None`` and the parent sheds the request with a typed
    ``DeadlineExceeded`` instead of burning worker compute on an answer
    nobody is waiting for.

    An **observability-enabled** server appends a fourth element, the
    observation spec ``ospec = {"ppid", "profile"}``; the return value
    then becomes ``(answers, obs)`` where ``obs`` carries this process's
    pid, the batch compute time, and — when this is a *different*
    process than the dispatching parent — a harvested metrics delta from
    the worker's registry (the per-batch harvest is what lets lane
    compute metrics survive a later SIGKILL of the worker).  Without an
    ospec the task shape, the return shape, and the cost are exactly the
    legacy ones.
    """
    machine_id, items = task[0], task[1]
    update = task[2] if len(task) > 2 else None
    ospec = task[3] if len(task) > 3 else None
    chaos = shared.get("chaos") if isinstance(shared, dict) else None
    if chaos is not None:
        _invoke_chaos(chaos, machine_id)
    if ospec is None:
        machine = attached_cluster(shared).machine(machine_id, update)
        return _answer_items(machine, items)

    import os
    import time

    from repro import obs as _obs

    in_worker = os.getpid() != ospec.get("ppid")
    if ospec.get("profile") and in_worker and not _obs.profiling_enabled():
        # First instrumented batch on this (possibly respawned) worker:
        # turn the hot-path probes on so store loads and operator builds
        # below are captured and harvested back with the reply.
        _obs.enable_profiling()
    t0 = time.perf_counter()
    machine = attached_cluster(shared).machine(machine_id, update)
    answers = _answer_items(machine, items)
    payload: Dict[str, Any] = {
        "pid": os.getpid(),
        "compute_s": time.perf_counter() - t0,
    }
    if in_worker:
        # Inline path (workers=1) shares the parent's default registry;
        # harvesting there would double-count with the parent's own
        # bookkeeping, so only true child processes ship a delta.
        payload["metrics"] = _obs.harvest_worker_metrics()
    return answers, payload


def release_session_task(shared: Dict[str, Any], payload: Dict[str, Any]) -> bool:
    """Evict one serving session's cache in a pool worker (eviction path).

    The multi-tenant host fans this across every lane when a tenant is
    evicted, so long-lived workers do not accumulate rebuilt machines
    and shm mappings for tenants that no longer exist.  ``shared`` is
    ignored — the session to release rides in the task payload.
    """
    release_session(payload)
    return True
