"""Async query serving over the communication-free cluster (Sect. IV, online).

The batch pipeline answers a *fixed* query set
(:meth:`~repro.distributed.cluster.DistributedCluster.answer_batch`);
this package serves a *stream*: :class:`QueryServer` admits queries
continuously on an asyncio event loop, micro-batches them per owning
machine by arrival window, applies bounded-queue admission control, and
answers them on a persistent shared-memory worker pool — every answer
byte-identical to the synchronous ``cluster.answer`` path, every
submission getting its own per-request future (duplicate query nodes
included).

Entry points: :class:`QueryServer` (the async front end),
:func:`serve_queries` (synchronous convenience for fixed streams),
:class:`~repro.serving.blueprint.ClusterBlueprint` (the worker-side
shipping layer, reusable by other long-lived pools).
"""

from repro.serving.blueprint import ClusterBlueprint, serve_batch_task
from repro.serving.server import QUERY_TYPES, QueryServer, ServingStats, serve_queries

__all__ = [
    "QUERY_TYPES",
    "ClusterBlueprint",
    "QueryServer",
    "ServingStats",
    "serve_batch_task",
    "serve_queries",
]
