"""Async query serving over the communication-free cluster (Sect. IV, online).

The batch pipeline answers a *fixed* query set
(:meth:`~repro.distributed.cluster.DistributedCluster.answer_batch`);
this package serves a *stream*: :class:`QueryServer` admits queries
continuously on an asyncio event loop, micro-batches them per owning
machine by arrival window, applies bounded-queue admission control, and
answers them on a persistent shared-memory worker pool — every answer
byte-identical to the synchronous ``cluster.answer`` path, every
submission getting its own per-request future (duplicate query nodes
included).

Entry points: :class:`QueryServer` (the async front end),
:func:`serve_queries` (synchronous convenience for fixed streams),
:class:`~repro.serving.blueprint.ClusterBlueprint` (the worker-side
shipping layer, reusable by other long-lived pools),
:class:`~repro.serving.tenancy.TenantHost` (multi-tenant hosting with
per-tenant quotas and ledgers), and :class:`~repro.serving.net.NetServer`
/ :class:`~repro.serving.net.NetClient` (the TCP tier speaking the
length-prefixed codec of :mod:`repro.serving.protocol`).
"""

from repro.serving.blueprint import ClusterBlueprint, release_session_task, serve_batch_task
from repro.serving.net import NetClient, NetServer, ResilientClient
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    MessageCodec,
    available_encodings,
    encode_frame,
    negotiate_encoding,
    pack_array,
    unpack_array,
)
from repro.serving.server import QUERY_TYPES, QueryServer, ServingStats, serve_queries
from repro.serving.tenancy import TenantConfig, TenantHost

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "QUERY_TYPES",
    "ClusterBlueprint",
    "FrameDecoder",
    "MessageCodec",
    "NetClient",
    "NetServer",
    "QueryServer",
    "ResilientClient",
    "ServingStats",
    "TenantConfig",
    "TenantHost",
    "available_encodings",
    "encode_frame",
    "negotiate_encoding",
    "pack_array",
    "release_session_task",
    "serve_batch_task",
    "serve_queries",
    "unpack_array",
]
