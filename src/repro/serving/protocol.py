"""The network serving tier's framing and message codec.

Wire format: every message is one **frame** — a 4-byte big-endian
unsigned length prefix followed by exactly that many payload bytes.  The
payload is one encoded *message*: a JSON object by default, or a msgpack
map when both peers support it (negotiated by the hello exchange;
msgpack is optional and this module degrades to JSON-only when the
``msgpack`` package is absent).

Error discipline: the decoding surface raises **only** typed errors from
:mod:`repro.errors` — :class:`~repro.errors.FrameError` for framing
violations (zero/oversized lengths, stray trailing bytes at EOF) and
:class:`~repro.errors.CodecError` for payloads that are complete frames
but not valid messages.  Raw ``struct`` / ``json`` / ``UnicodeDecodeError``
/ msgpack exceptions never escape; the property suite in
``tests/serving/test_protocol.py`` feeds this layer arbitrary garbage to
pin that.

Query answers are NumPy arrays and must survive the wire **byte for
byte** (the serving tier's contract is byte-identity with
``cluster.answer``).  :func:`pack_array` therefore ships the raw little-
endian buffer base64-encoded together with dtype and shape;
:func:`unpack_array` reconstructs an identical array in both codecs.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CodecError, FrameError, ProtocolError

try:  # optional dependency; the protocol auto-negotiates down to JSON
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised where msgpack is absent
    msgpack = None

#: Frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: Default ceiling on a single frame's payload (16 MiB).  A peer that
#: announces a bigger frame is protocol-broken or hostile; the decoder
#: rejects the header before buffering anything.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Protocol revision carried in the hello exchange.
PROTOCOL_VERSION = 1


def available_encodings() -> Tuple[str, ...]:
    """Message encodings this process can speak, preference-ordered."""
    return ("msgpack", "json") if msgpack is not None else ("json",)


def negotiate_encoding(offered: Sequence[str]) -> str:
    """Pick the serving encoding from a peer's offered list.

    The first locally available encoding in *our* preference order that
    the peer also offers wins; a peer offering nothing we speak is a
    :class:`~repro.errors.ProtocolError` (JSON is mandatory, so a
    conforming peer always matches).
    """
    offers = [str(e) for e in offered]
    for encoding in available_encodings():
        if encoding in offers:
            return encoding
    raise ProtocolError(f"no common message encoding in offer {offers!r}")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(payload: bytes, *, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap encoded payload bytes in a length-prefixed frame."""
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise FrameError(f"frame payload must be bytes, got {type(payload).__name__}")
    payload = bytes(payload)
    if len(payload) == 0:
        raise FrameError("refusing to encode an empty frame")
    if len(payload) > max_frame:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the {max_frame}-byte cap")
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame splitter for a byte stream.

    Feed it whatever chunks arrive on the socket; it returns the payload
    of every frame completed so far and buffers the rest.  Violations —
    a zero-length frame, a length above *max_frame* — raise
    :class:`~repro.errors.FrameError` immediately (the stream position
    is unrecoverable after that; close the connection).
    :meth:`assert_drained` reports leftover bytes at EOF as the
    truncated frame they are.
    """

    def __init__(self, *, max_frame: int = MAX_FRAME_BYTES):
        self._max_frame = int(max_frame)
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Consume *data*; return every completed frame payload, in order."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while len(self._buffer) >= HEADER.size:
            (length,) = HEADER.unpack_from(self._buffer)
            if length == 0:
                raise FrameError("zero-length frame")
            if length > self._max_frame:
                raise FrameError(
                    f"announced frame of {length} bytes exceeds the "
                    f"{self._max_frame}-byte cap"
                )
            if len(self._buffer) < HEADER.size + length:
                break
            frames.append(bytes(self._buffer[HEADER.size : HEADER.size + length]))
            del self._buffer[: HEADER.size + length]
        return frames

    def assert_drained(self) -> None:
        """Raise :class:`~repro.errors.FrameError` if EOF split a frame."""
        if self._buffer:
            raise FrameError(
                f"stream ended mid-frame with {len(self._buffer)} buffered byte(s)"
            )


# ----------------------------------------------------------------------
# message codec
# ----------------------------------------------------------------------
class MessageCodec:
    """Encode/decode one message (a dict) to/from frame payload bytes."""

    def __init__(self, encoding: str = "json"):
        if encoding not in available_encodings():
            raise ProtocolError(
                f"encoding {encoding!r} is not available here "
                f"(have {', '.join(available_encodings())})"
            )
        self.encoding = encoding

    def encode(self, message: Dict[str, Any]) -> bytes:
        """Message dict → payload bytes (exceptions become CodecError)."""
        if not isinstance(message, dict):
            raise CodecError(f"message must be a dict, got {type(message).__name__}")
        try:
            if self.encoding == "msgpack":
                return msgpack.packb(message, use_bin_type=True)
            return json.dumps(message, separators=(",", ":"), allow_nan=False).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"message not encodable as {self.encoding}: {exc}") from exc

    def decode(self, payload: bytes) -> Dict[str, Any]:
        """Payload bytes → message dict; anything else is a CodecError."""
        try:
            if self.encoding == "msgpack":
                message = msgpack.unpackb(payload, raw=False, strict_map_key=False)
            else:
                message = json.loads(payload.decode("utf-8"))
        except Exception as exc:  # noqa: BLE001 - every decoder failure is typed here
            raise CodecError(f"undecodable {self.encoding} payload: {exc}") from exc
        if not isinstance(message, dict):
            raise CodecError(
                f"top-level message must be an object, got {type(message).__name__}"
            )
        return message


def decode_hello(payload: bytes) -> Dict[str, Any]:
    """Decode the handshake frame (always JSON, before negotiation)."""
    return MessageCodec("json").decode(payload)


# ----------------------------------------------------------------------
# array transport
# ----------------------------------------------------------------------
def pack_array(array: np.ndarray) -> Dict[str, Any]:
    """A NumPy array as a JSON/msgpack-safe dict, bytes preserved exactly."""
    # np.asarray, not ascontiguousarray: the latter promotes 0-d to 1-d
    # and would silently change the answer's shape.  tobytes() already
    # yields C-order bytes for any layout.
    array = np.asarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def unpack_array(obj: Any) -> np.ndarray:
    """Inverse of :func:`pack_array`; malformed input is a CodecError."""
    if not isinstance(obj, dict):
        raise CodecError(f"packed array must be a dict, got {type(obj).__name__}")
    if not isinstance(obj.get("dtype"), str):
        # np.dtype(None) silently means float64; require the explicit str.
        raise CodecError(f"packed array dtype must be a string, got {obj.get('dtype')!r}")
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(n) for n in obj["shape"])
        raw = base64.b64decode(obj["b64"], validate=True)
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise CodecError(f"malformed packed array: {exc}") from exc
    if any(n < 0 for n in shape):
        raise CodecError(f"negative dimension in packed array shape {shape}")
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if len(raw) != expected:
        raise CodecError(
            f"packed array carries {len(raw)} bytes, dtype/shape need {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
