"""Small internal helpers shared across subpackages."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share RNG state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_node_array(nodes: Iterable[int]) -> np.ndarray:
    """Convert an iterable of node ids into a sorted, deduplicated array."""
    arr = np.asarray(list(nodes) if not isinstance(nodes, np.ndarray) else nodes, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("node collection must be one-dimensional")
    return np.unique(arr)


def log2_capped(x: int) -> float:
    """``log2(x)`` with ``log2(1) = 0`` and a guard against ``x < 1``.

    The size model of the paper uses ``log2 |S|`` bits per supernode
    reference; with a single supernode that legitimately degenerates to 0.
    """
    if x < 1:
        raise ValueError(f"log2 argument must be >= 1, got {x}")
    return float(np.log2(x))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned ASCII table (used by benches and the CLI)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
