"""Sticky-affinity worker lanes with death detection and re-spawn.

The serving pool of PR 3 was one :class:`~concurrent.futures.ProcessPoolExecutor`
shared by every machine's micro-batches.  That shape has two production
problems the network serving tier must fix:

* **Cache duplication.**  The pool scheduler places batches on arbitrary
  workers, so over time *every* worker rebuilds *every* machine's
  reconstruction operator — ``workers × machines`` operator caches where
  ``machines`` would do.  :class:`LaneExecutor` carves the pool into
  single-worker **lanes** and lets the caller pin each machine's batches
  to one lane (``lane = machine_id % lanes``), so an operator cache is
  built once per machine, on the lane that owns it.
* **Blast radius and recovery.**  When a worker of a shared pool dies,
  the whole pool is broken and every in-flight batch fails.  With lanes,
  a death breaks exactly one lane; :meth:`submit` detects the broken
  lane and **re-spawns** it transparently (a fresh single-worker pool,
  session payload re-installed via the initializer), so the failover
  layer above only has to re-dispatch the batches that were actually
  lost.

``workers=1`` (or ``None``) is the inline reference path: no processes,
tasks run immediately in the caller, and submitted futures come back
already resolved — byte-identical to the pooled lanes by the same
argument as :class:`~repro.parallel.executor.ParallelExecutor`.

Futures returned by :meth:`submit` fail with
:class:`concurrent.futures.process.BrokenProcessPool` when their lane's
worker dies mid-task; the caller re-dispatches (the lane itself is
healed lazily by the next :meth:`submit`).  That division of labor keeps
this class free of retry policy: it only owns placement and lifecycle.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, List, Optional

from repro.parallel.executor import (
    TaskFn,
    _init_session_worker,
    _run_session_task,
    _UNSET,
    resolve_workers,
)


class LaneExecutor:
    """``n`` single-worker pools with caller-controlled task placement.

    Parameters
    ----------
    workers:
        Number of lanes, normalized by
        :func:`~repro.parallel.executor.resolve_workers` (``1``/``None``
        = inline, ``0``/negative = one lane per core).
    mp_context:
        Optional :mod:`multiprocessing` context shared by every lane.
    shared:
        Session payload installed in each lane worker at (re-)spawn via
        the pool initializer — exactly once per worker process, shipped
        again automatically when a dead lane is re-spawned.

    Use :meth:`start` / :meth:`shutdown` (or a ``with`` block) around a
    serving session.  :meth:`submit` places one task on one lane.
    """

    def __init__(
        self,
        workers: "int | None" = 1,
        *,
        mp_context=None,
        shared: Any = None,
        standby: bool = False,
    ):
        self.workers = resolve_workers(workers)
        self._mp_context = mp_context
        self._shared = shared
        self._pools: "List[Optional[ProcessPoolExecutor]]" = []
        self._standby: "Optional[ProcessPoolExecutor]" = None
        self._keep_standby = bool(standby)
        self._started = False
        self.respawns = 0
        self.standby_promotions = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the lanes are up (or the inline shell is active)."""
        return self._started

    @property
    def inline(self) -> bool:
        """``True`` when tasks run in the calling process (``workers=1``)."""
        return self.workers <= 1

    @property
    def lanes(self) -> int:
        """Number of placement lanes (1 when inline)."""
        return max(1, self.workers)

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        import multiprocessing

        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        return multiprocessing.get_context(method)

    def _spawn(self) -> ProcessPoolExecutor:
        pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context(),
            initializer=_init_session_worker,
            initargs=(self._shared,),
        )
        # Force the worker fork NOW rather than at first submit.  A lazy
        # fork in a serving process captures whatever socket fds exist at
        # that moment (accepted connections included), keeping those TCP
        # connections alive from the OS's view after the parent closes
        # them.  Eager spawning also front-loads the session install.
        pool.submit(os.getpid)
        return pool

    def start(self) -> "LaneExecutor":
        """Spawn every lane (no-op pools when inline); raises if started."""
        if self._started:
            raise RuntimeError("LaneExecutor already started")
        if not self.inline:
            self._pools = [self._spawn() for _ in range(self.workers)]
            if self._keep_standby:
                self._standby = self._spawn()
        self._started = True
        return self

    def shutdown(self, *, wait: bool = True) -> None:
        """Tear every lane down (idempotent)."""
        pools, self._pools = self._pools, []
        standby, self._standby = self._standby, None
        self._started = False
        if standby is not None:
            standby.shutdown(wait=wait)
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=wait)

    def __enter__(self) -> "LaneExecutor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _lane_pool(self, lane: int) -> ProcessPoolExecutor:
        """The live pool for *lane*, re-spawning a dead or broken one."""
        lane %= self.lanes
        pool = self._pools[lane]
        if pool is not None and not getattr(pool, "_broken", False):
            return pool
        if pool is not None:
            pool.shutdown(wait=False)
        self.respawns += 1
        pool = self._take_replacement()
        self._pools[lane] = pool
        return pool

    def _take_replacement(self) -> ProcessPoolExecutor:
        """A fresh pool for a dead lane: the warm standby when armed
        (zero-gap — the replacement worker is already forked and has the
        session installed), else a cold spawn.  Re-arms the standby
        eagerly either way when standby mode is on."""
        pool = self._standby
        if pool is not None and not getattr(pool, "_broken", False):
            self._standby = self._spawn() if self._keep_standby else None
            self.standby_promotions += 1
            return pool
        if self._keep_standby:
            self._standby = self._spawn()
        return self._spawn()

    def respawn_lane(self, lane: int) -> None:
        """Force-replace one lane's pool (used after a detected death)."""
        if self.inline or not self._started:
            return
        lane %= self.lanes
        pool = self._pools[lane]
        self._pools[lane] = None
        if pool is not None:
            pool.shutdown(wait=False)
        self._pools[lane] = self._take_replacement()
        self.respawns += 1

    def lane_health(self) -> "List[bool]":
        """Liveness per lane: pool up, not broken, worker pid responsive.

        The supervisor's heartbeat source.  Inline mode reports a single
        healthy lane (the caller itself).  A lane whose worker died
        while idle shows unhealthy *before* any submit trips over it —
        that is the whole point: proactive detection instead of paying a
        ``BrokenProcessPool`` on a live request.
        """
        if self.inline:
            return [True]
        health: "List[bool]" = []
        for pool in self._pools:
            if pool is None or getattr(pool, "_broken", False):
                health.append(False)
                continue
            processes = getattr(pool, "_processes", None) or {}
            alive = True
            for pid in list(processes.keys()):
                try:
                    os.kill(pid, 0)
                except (ProcessLookupError, PermissionError):
                    alive = False
                    break
            health.append(alive)
        return health

    def lane_pids(self) -> "List[List[int]]":
        """Best-effort worker pids per lane (empty sublists when inline).

        Exposed for fault injection: chaos tests SIGKILL a real worker
        process and assert the tier above recovers.
        """
        pids: "List[List[int]]" = []
        for pool in self._pools:
            processes = getattr(pool, "_processes", None) if pool is not None else None
            pids.append(sorted(processes.keys()) if processes else [])
        return pids

    def submit(
        self, fn: TaskFn, task: Any, *, lane: int = 0, shared: Any = _UNSET
    ) -> "Future":
        """Run ``fn(shared, task)`` on one lane; returns its future.

        *lane* is taken modulo the lane count, so callers can pass a
        stable key (a machine id) directly.  Omitting *shared* uses the
        session payload installed in the lane's worker (shipped once per
        worker process); an explicit *shared* is shipped with this task —
        the multi-tenant path, where one executor serves several
        blueprints and each batch names its own.  A lane found broken at
        submission time is re-spawned first; a worker dying *after*
        submission surfaces as ``BrokenProcessPool`` on the returned
        future, and re-dispatching is the caller's call.
        """
        if not self._started:
            raise RuntimeError("LaneExecutor is not started")
        use_session = shared is _UNSET
        payload = None if use_session else shared
        if self.inline:
            future: "Future" = Future()
            try:
                future.set_result(fn(self._shared if use_session else payload, task))
            except BaseException as exc:  # noqa: BLE001 - mirrored into the future
                future.set_exception(exc)
            return future
        item = (fn, use_session, payload, task)
        try:
            return self._lane_pool(lane).submit(_run_session_task, item)
        except BrokenProcessPool:
            # The lane broke between the health check and the submit
            # (worker died while idle); heal once and retry.
            self.respawn_lane(lane)
            return self._pools[lane % self.lanes].submit(_run_session_task, item)
