"""Process-parallel execution for the reproduction's fan-out stages.

One class, one contract: :class:`ParallelExecutor` runs independent
deterministic tasks over a worker pool with ordered result collection, so
any consumer's output is byte-identical at any worker count (``workers=1``
runs inline and is the reference path).  Consumers:

* :func:`repro.distributed.pipeline.build_summary_cluster` /
  :func:`~repro.distributed.pipeline.build_subgraph_cluster` — the ``m``
  per-machine artifacts of Alg. 3 build concurrently;
* :meth:`repro.distributed.cluster.DistributedCluster.answer_batch` —
  batch query serving with per-machine batching;
* :func:`repro.experiments.common.sweep` — experiment points of
  Figs. 5/6/8/9/11/12 fan out across datasets × methods × parameters;
* :class:`repro.serving.QueryServer` — the asyncio serving front end
  holds a *session* pool (``with executor: ...``) and ships the
  per-machine arrays once per worker via :mod:`repro.parallel.shm`.

The build-path consumers additionally ship the immutable input graph
zero-copy through :mod:`repro.parallel.graphship`, so ``spawn`` workers
attach one shared CSR instead of unpickling their own copy.
"""

from repro.parallel.executor import ParallelExecutor, derive_seed, resolve_workers
from repro.parallel.graphship import GraphShipment, ShippedGraph, restore_graphs
from repro.parallel.lanes import LaneExecutor
from repro.parallel.shm import AttachedArrays, SharedArrayPack, ShmDescriptor, attach_arrays

__all__ = [
    "AttachedArrays",
    "GraphShipment",
    "LaneExecutor",
    "ParallelExecutor",
    "SharedArrayPack",
    "ShippedGraph",
    "ShmDescriptor",
    "attach_arrays",
    "derive_seed",
    "resolve_workers",
]
