"""Zero-copy array shipping through ``multiprocessing.shared_memory``.

The serving path (and any long-lived pool) must not re-pickle the
per-machine summary/operator arrays on every micro-batch.  This module
packs a set of named NumPy arrays into **one** shared-memory block on the
parent side and hands workers a tiny picklable descriptor; each worker
attaches the block once and maps the arrays back as read-only views — no
copies, no per-batch serialization, identical bytes by construction.

Parent side::

    pack = SharedArrayPack({"indptr": indptr, "indices": indices})
    payload = pack.descriptor          # small, picklable
    ...ship payload through a pool initializer...
    pack.close()                       # when the session ends

Worker side::

    attached = attach_arrays(descriptor)   # cached per process by name
    indptr = attached["indptr"]            # read-only view into the block

The pack owner is responsible for unlinking (``close``); workers only
ever attach.  Attachment is untracked (the semantics of 3.13's
``track=False``, emulated on older CPython) so the resource tracker never
tears a block out from under the parent or double-counts its cleanup.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np


def _align(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) // alignment * alignment


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    The pack owner handles unlinking; an attaching worker must not enroll
    the segment in the resource tracker (under ``fork`` the tracker is
    shared with the parent, so a tracked attach corrupts the parent's
    bookkeeping).  Python 3.13 exposes this as ``track=False``; on older
    versions the registration hook is suppressed for the attach call.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    original = resource_tracker.register

    def _register_except_shm(res_name, rtype):
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ShmDescriptor:
    """A picklable handle to one packed shared-memory block.

    ``entries`` maps array name → ``(dtype string, shape, byte offset)``
    inside the block called ``name``.  ``token`` is unique per pack: OS
    segment *names* can be recycled after an unlink, so worker-side
    caches must key their liveness check on the token, never on the name
    alone (see :func:`attach_arrays`).
    """

    name: str
    entries: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    token: str = field(default_factory=lambda: uuid.uuid4().hex)


class SharedArrayPack:
    """Parent-side owner of one shared-memory block holding named arrays.

    Arrays are copied into the block once at construction; the pack's
    :attr:`descriptor` is what ships to workers.  The owner must call
    :meth:`close` (which also unlinks) when the session ends — typically
    from ``QueryServer.stop`` or an executor ``finally`` block.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        entries = []
        offset = 0
        prepared: Dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            prepared[key] = array
            offset = _align(offset)
            entries.append((key, array.dtype.str, tuple(array.shape), offset))
            offset += array.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (key, _dtype, _shape, start) in entries:
            array = prepared[key]
            if array.nbytes:
                self._shm.buf[start : start + array.nbytes] = array.tobytes()
        self.descriptor = ShmDescriptor(name=self._shm.name, entries=tuple(entries))
        self._closed = False

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AttachedArrays:
    """Worker-side read-only views into an attached shared-memory block.

    Behaves as a mapping from array name to view.  Keeps the underlying
    :class:`~multiprocessing.shared_memory.SharedMemory` referenced for as
    long as the views are alive.
    """

    def __init__(self, descriptor: ShmDescriptor):
        self._shm = _attach_untracked(descriptor.name)
        self.token = descriptor.token
        self._views: Dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in descriptor.entries:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset)
            view.setflags(write=False)
            self._views[key] = view

    def __getitem__(self, key: str) -> np.ndarray:
        return self._views[key]

    def __contains__(self, key: str) -> bool:
        return key in self._views

    def keys(self):
        return self._views.keys()

    def close(self) -> None:
        """Drop the views and unmap the block (invalidates the views)."""
        self._views.clear()
        self._shm.close()


#: Per-process cache of attached blocks, keyed by segment name — a worker
#: serving thousands of micro-batches attaches each session's block once.
#: A cache hit is honored only if the descriptor's pack token matches the
#: cached attachment's: the kernel may hand a recycled name to a *new*
#: pack after the old one is unlinked, and a name-only cache would then
#: serve stale views of the dead session's block.
_ATTACHED: Dict[str, AttachedArrays] = {}


def attach_arrays(descriptor: ShmDescriptor) -> AttachedArrays:
    """Attach (or fetch the cached attachment of) a packed block.

    The per-process cache validates the descriptor's unique pack token on
    every hit; a token mismatch means the OS recycled the segment name
    for a different pack, so the stale attachment is evicted, unmapped,
    and replaced by a fresh attach of the current block.
    """
    attached = _ATTACHED.get(descriptor.name)
    if attached is not None and attached.token != descriptor.token:
        detach_arrays(descriptor.name)
        attached = None
    if attached is None:
        attached = AttachedArrays(descriptor)
        _ATTACHED[descriptor.name] = attached
    return attached


def detach_arrays(name: str) -> None:
    """Evict and unmap a cached attachment (no-op if never attached).

    Long-lived processes that attach many sessions over time (the
    ``workers=1`` inline serving path attaches in the *parent*) call this
    at session end so finished sessions do not pin their pages forever.
    """
    attached = _ATTACHED.pop(name, None)
    if attached is not None:
        attached.close()
