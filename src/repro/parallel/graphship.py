"""Zero-copy input-graph shipping for build-path fan-outs.

The cluster builders (:func:`repro.distributed.pipeline.build_summary_cluster`
/ ``build_subgraph_cluster``) and the experiment sweep runner
(:func:`repro.experiments.common.sweep`) fan independent tasks out over a
:class:`~repro.parallel.ParallelExecutor`.  Under the ``spawn`` start
method every worker used to receive its own pickled copy of the input
:class:`~repro.graph.graph.Graph` — the largest object in the payload by
orders of magnitude — through the pool initializer (and the Fig. 6 sweep
even pickled one subgraph *per task*).

:class:`GraphShipment` removes that copy: a :class:`Graph` is immutable
and fully determined by its CSR arrays, so the parent packs every graph
found in a payload into **one** :class:`~repro.parallel.shm.SharedArrayPack`
and substitutes a tiny picklable :class:`ShippedGraph` placeholder.
Workers call :func:`restore_graphs` on whatever payload they receive;
placeholders are resolved by attaching the shared block (zero-copy,
cached per process) and rebuilding the graph around read-only views,
while any other value passes through untouched — so task functions can
apply :func:`restore_graphs` unconditionally, whether or not the caller
shipped through shared memory.

The replacement walks tuples, lists, and dict values; other objects ship
as before.  Where shared memory is unavailable the payload is left
untouched (the pickle fallback, mirroring
:mod:`repro.serving.blueprint`), and callers keep the ``workers=1``
inline path entirely shipment-free.

Determinism: an attached graph is ``==`` to the original (same node
count, byte-identical CSR), so builds and sweeps remain byte-identical at
any worker count, start method, or shipping mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.shm import ShmDescriptor, SharedArrayPack, attach_arrays


@dataclass(frozen=True)
class ShippedGraph:
    """Picklable placeholder for one graph inside a shared-memory pack.

    ``descriptor`` names the pack; the graph's CSR lives at entries
    ``g{index}.indptr`` / ``g{index}.indices``.
    """

    descriptor: ShmDescriptor
    index: int
    num_nodes: int


def _walk_replace(value: Any, replace) -> Any:
    """Structurally copy tuples/lists/dicts, mapping leaves through *replace*."""
    swapped = replace(value)
    if swapped is not None:
        return swapped
    if isinstance(value, tuple):
        return tuple(_walk_replace(item, replace) for item in value)
    if isinstance(value, list):
        return [_walk_replace(item, replace) for item in value]
    if isinstance(value, dict):
        return {key: _walk_replace(item, replace) for key, item in value.items()}
    return value


class GraphShipment:
    """Parent-side substitution of payload graphs with shm placeholders.

    Parameters
    ----------
    payload:
        Arbitrary task/shared payload; every :class:`Graph` reachable
        through tuples, lists, and dict values is packed (each distinct
        graph object once) and replaced in :attr:`payload`.
    use_shared_memory:
        ``False`` skips the substitution entirely — :attr:`payload` is
        the original object and workers receive pickled graphs as before.
        If the platform cannot create shared memory the same fallback is
        chosen automatically.

    Keep the shipment open until every worker has finished its tasks
    (workers attach lazily, on first task), then :meth:`close` it —
    typically via ``with GraphShipment(...) as shipment:`` around the
    ``executor.map`` call.
    """

    def __init__(self, payload: Any, *, use_shared_memory: bool = True):
        self.payload = payload
        self._pack: "SharedArrayPack | None" = None
        self.num_graphs = 0
        if not use_shared_memory:
            return
        graphs: List[Graph] = []
        indices: Dict[int, int] = {}
        arrays: Dict[str, np.ndarray] = {}

        def collect(value: Any):
            if isinstance(value, Graph) and id(value) not in indices:
                index = len(graphs)
                indices[id(value)] = index
                graphs.append(value)
                arrays[f"g{index}.indptr"] = value.indptr
                arrays[f"g{index}.indices"] = value.indices
            return None  # first pass only collects; nothing is replaced

        _walk_replace(payload, collect)
        if not graphs:
            return
        try:
            pack = SharedArrayPack(arrays)
        except OSError:  # pragma: no cover - no /dev/shm on this platform
            return
        self._pack = pack
        self.num_graphs = len(graphs)

        def materialize(value: Any):
            if isinstance(value, Graph):
                return ShippedGraph(
                    descriptor=pack.descriptor,
                    index=indices[id(value)],
                    num_nodes=value.num_nodes,
                )
            return None

        self.payload = _walk_replace(payload, materialize)

    @property
    def uses_shared_memory(self) -> bool:
        """Whether payload graphs actually live in a shared-memory block."""
        return self._pack is not None

    def close(self) -> None:
        """Unlink the shared-memory block (idempotent)."""
        if self._pack is not None:
            self._pack.close()

    def __enter__(self) -> "GraphShipment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: Per-process cache of graphs rebuilt from shared memory, keyed by
#: (pack token, index) — a worker building many machines/sweep points
#: attaches and validates each shipped graph once.  Keyed by the pack's
#: unique token rather than the OS segment name: names can be recycled
#: after an unlink, and a name-keyed cache would serve a dead session's
#: graph (same staleness bug as the name-keyed shm cache).
_ATTACHED_GRAPHS: Dict[Tuple[str, int], Graph] = {}


def _attach_graph(ref: ShippedGraph) -> Graph:
    key = (ref.descriptor.token, ref.index)
    graph = _ATTACHED_GRAPHS.get(key)
    if graph is None:
        arrays = attach_arrays(ref.descriptor)
        graph = Graph(
            ref.num_nodes,
            arrays[f"g{ref.index}.indptr"],
            arrays[f"g{ref.index}.indices"],
        )
        _ATTACHED_GRAPHS[key] = graph
    return graph


def restore_graphs(payload: Any) -> Any:
    """Resolve every :class:`ShippedGraph` placeholder in *payload*.

    The inverse of :class:`GraphShipment`: placeholders become live
    :class:`Graph` objects backed by zero-copy shared-memory views
    (attached once per process); everything else — including payloads
    that were never shipped — passes through structurally unchanged, so
    worker task functions call this unconditionally.
    """

    def resolve(value: Any):
        if isinstance(value, ShippedGraph):
            return _attach_graph(value)
        return None

    return _walk_replace(payload, resolve)
