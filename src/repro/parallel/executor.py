"""A seed-stable process pool for embarrassingly parallel stages.

The reproduction's biggest runtime sinks — the per-machine personalized
summaries of Alg. 3, batch query serving, and the experiment sweeps behind
Figs. 5–12 — are all fan-outs of *independent, deterministic* tasks.
:class:`ParallelExecutor` runs such a fan-out over a ``multiprocessing``
pool under one contract:

**Determinism.**  ``executor.map(fn, tasks, shared=...)`` returns results
in task order, and each task sees only ``(shared, task)`` — no global
mutable state, no pool-scheduling dependence.  Provided ``fn`` itself is
deterministic (every summarizer here is, given a seed), the output list is
*byte-identical at any worker count*, including ``workers=1``, which runs
the tasks inline in the calling process without touching
``multiprocessing`` at all.

**Graph shipping.**  The *shared* payload (typically the input graph plus
a config) is shipped to each worker **once**, through the pool
initializer, instead of once per task.  Under the ``fork`` start method
the payload is inherited copy-on-write and never pickled; under ``spawn``
it is pickled exactly ``workers`` times.  Task payloads and results are
pickled per task, so keep them small (node arrays, configs, summaries).

**RNG derivation.**  Tasks that need their own randomness derive it with
:func:`derive_seed`, which folds ``(base_seed, task_index)`` through
:class:`numpy.random.SeedSequence` — stable across worker counts, Python
processes, and platforms, and decorrelated across indices.

**Pool lifetime.**  A bare ``executor.map(...)`` builds a throwaway pool
per call — fine for the one-shot fan-outs of the experiment sweeps, fatal
for serving, where fork/spawn cost would dominate every micro-batch.
Entering the executor as a context manager switches it to *session mode*:
one persistent pool, started once, reused by every :meth:`map` /
:meth:`submit` until exit.  The session payload (``shared=`` at
construction) is installed in each worker exactly once, at pool start;
per-call work then ships only the task function (pickled by reference)
and the task payload.  ``repro.serving.QueryServer`` is the canonical
session-mode consumer.

Worker functions must be module-level (picklable by reference) so the
pool works under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

#: A task function: ``fn(shared, task) -> result``.  Must be defined at
#: module level so it pickles by reference under the spawn start method.
TaskFn = Callable[[Any, Any], Any]

# Per-worker-process state installed by the pool initializer.  Plain
# module globals: each worker process has its own copy of this module.
_WORKER_FN: "TaskFn | None" = None
_WORKER_SHARED: Any = None

# Session-mode worker state: the session payload, installed once at pool
# start; task functions arrive per task (pickled by reference, tiny).
_SESSION_SHARED: Any = None

#: Sentinel distinguishing "no shared= argument" from an explicit ``None``.
_UNSET = object()


def resolve_workers(workers: "int | None") -> int:
    """Normalize a ``workers`` knob to a concrete pool size.

    ``None`` or ``1`` mean *sequential* (run inline, spawn nothing);
    ``0`` or any negative value mean *all cores* (``os.cpu_count()``);
    any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def derive_seed(base_seed: "int | None", task_index: int) -> "int | None":
    """A per-task seed that is stable at any worker count.

    Folds ``(base_seed, task_index)`` through
    :class:`numpy.random.SeedSequence`, so consecutive task indices get
    decorrelated streams (unlike ``base_seed + index``, whose nearby
    states can correlate under some bit-generators).  ``None`` stays
    ``None`` (fresh entropy per task, explicitly non-reproducible).
    """
    if base_seed is None:
        return None
    sequence = np.random.SeedSequence([int(base_seed) & 0xFFFFFFFF, int(task_index)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def _init_worker(fn: TaskFn, shared: Any) -> None:
    """Pool initializer: install the task function and shared payload."""
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = shared


def _run_task(task: Any) -> Any:
    """Top-level trampoline executed in the worker for each task."""
    return _WORKER_FN(_WORKER_SHARED, task)


def _init_session_worker(shared: Any) -> None:
    """Session-pool initializer: install the session payload once."""
    global _SESSION_SHARED
    _SESSION_SHARED = shared


def _run_session_task(item: Any) -> Any:
    """Session-pool trampoline: ``(fn, use_session, shared, task)``."""
    fn, use_session, shared, task = item
    return fn(_SESSION_SHARED if use_session else shared, task)


class ParallelExecutor:
    """Ordered fan-out of independent tasks over a process pool.

    Parameters
    ----------
    workers:
        Pool size, normalized by :func:`resolve_workers` (``1``/``None``
        = inline sequential, ``0``/negative = all cores).
    mp_context:
        Optional :mod:`multiprocessing` context.  Defaults to ``fork``
        where available (cheap, inherits the graph copy-on-write) and
        ``spawn`` elsewhere; everything shipped is spawn-safe either way.
    shared:
        Optional *session payload*: the default ``shared`` value for every
        :meth:`map` / :meth:`submit` call that does not pass its own.  In
        session mode (see below) it is installed in each worker exactly
        once, when the pool starts — the natural place for large
        read-only state such as shared-memory descriptors.

    Session mode
    ------------
    Used as a context manager, the executor keeps **one persistent pool**
    alive across calls instead of building a throwaway pool per
    :meth:`map`::

        with ParallelExecutor(workers=4, shared=payload) as executor:
            executor.map(fn_a, tasks)      # both calls reuse the same
            executor.map(fn_b, more_tasks) # worker processes

    A task that raises propagates its exception to the caller and leaves
    the pool usable for subsequent calls.  With ``workers=1`` the session
    is a no-op shell around the inline reference path.  :meth:`shutdown`
    (or leaving the ``with`` block) returns the executor to one-shot
    mode; it can be started again afterwards.

    Example
    -------
    >>> from repro.parallel import ParallelExecutor
    >>> def square(shared, task):
    ...     return shared * task * task
    >>> ParallelExecutor(workers=1).map(square, [1, 2, 3], shared=10)
    [10, 40, 90]
    """

    def __init__(self, workers: "int | None" = 1, *, mp_context=None, shared: Any = _UNSET):
        self.workers = resolve_workers(workers)
        self._mp_context = mp_context
        self._session_shared = None if shared is _UNSET else shared
        self._pool: "ProcessPoolExecutor | None" = None
        self._started = False

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        return multiprocessing.get_context(method)

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether a session is active (persistent pool or inline shell)."""
        return self._started

    def start(self) -> "ParallelExecutor":
        """Start session mode: one persistent pool reused across calls.

        Idempotent-hostile by design: starting an already started session
        raises, so lifetime bugs surface instead of leaking pools.  With
        ``workers=1`` no processes are spawned; the session is purely the
        inline reference path.
        """
        if self._started:
            raise RuntimeError("ParallelExecutor session already started")
        if self.workers > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._context(),
                initializer=_init_session_worker,
                initargs=(self._session_shared,),
            )
        self._started = True
        return self

    def shutdown(self, *, wait: bool = True) -> None:
        """End the session and release the pool (no-op when not started)."""
        pool, self._pool = self._pool, None
        self._started = False
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "ParallelExecutor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _resolve_shared(self, shared: Any) -> Any:
        return self._session_shared if shared is _UNSET else shared

    def map(
        self,
        fn: TaskFn,
        tasks: "Iterable[Any] | Sequence[Any]",
        *,
        shared: Any = _UNSET,
    ) -> List[Any]:
        """Run ``fn(shared, task)`` for every task; results in task order.

        With an effective pool size of 1 (or, outside a session, a single
        task) the tasks run inline — no processes, no pickling — which is
        also the reference path the parallel path must match byte for
        byte.  A task that raises propagates its exception to the caller
        either way.  Omitting *shared* falls back to the session payload;
        inside a session, an explicit per-call *shared* is shipped with
        every task, so keep it small there.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self._pool is not None:
            use_session = shared is _UNSET
            payload = None if use_session else shared
            items = [(fn, use_session, payload, task) for task in tasks]
            return list(self._pool.map(_run_session_task, items))
        resolved = self._resolve_shared(shared)
        workers = min(self.workers, len(tasks))
        if workers <= 1:
            return [fn(resolved, task) for task in tasks]
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._context(),
            initializer=_init_worker,
            initargs=(fn, resolved),
        ) as pool:
            return list(pool.map(_run_task, tasks))

    def submit(self, fn: TaskFn, task: Any, *, shared: Any = _UNSET) -> "Future":
        """Run one task asynchronously; returns a :class:`~concurrent.futures.Future`.

        In a session with ``workers > 1`` the task is dispatched to the
        persistent pool.  Otherwise it runs inline, immediately, and the
        returned future is already resolved — same code path, same bytes,
        as the pooled variant.  This is the serving layer's primitive:
        micro-batches overlap in the pool while the event loop keeps
        admitting queries.
        """
        if self._pool is not None:
            use_session = shared is _UNSET
            payload = None if use_session else shared
            return self._pool.submit(_run_session_task, (fn, use_session, payload, task))
        future: "Future" = Future()
        try:
            future.set_result(fn(self._resolve_shared(shared), task))
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future
