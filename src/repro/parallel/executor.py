"""A seed-stable process pool for embarrassingly parallel stages.

The reproduction's biggest runtime sinks — the per-machine personalized
summaries of Alg. 3, batch query serving, and the experiment sweeps behind
Figs. 5–12 — are all fan-outs of *independent, deterministic* tasks.
:class:`ParallelExecutor` runs such a fan-out over a ``multiprocessing``
pool under one contract:

**Determinism.**  ``executor.map(fn, tasks, shared=...)`` returns results
in task order, and each task sees only ``(shared, task)`` — no global
mutable state, no pool-scheduling dependence.  Provided ``fn`` itself is
deterministic (every summarizer here is, given a seed), the output list is
*byte-identical at any worker count*, including ``workers=1``, which runs
the tasks inline in the calling process without touching
``multiprocessing`` at all.

**Graph shipping.**  The *shared* payload (typically the input graph plus
a config) is shipped to each worker **once**, through the pool
initializer, instead of once per task.  Under the ``fork`` start method
the payload is inherited copy-on-write and never pickled; under ``spawn``
it is pickled exactly ``workers`` times.  Task payloads and results are
pickled per task, so keep them small (node arrays, configs, summaries).

**RNG derivation.**  Tasks that need their own randomness derive it with
:func:`derive_seed`, which folds ``(base_seed, task_index)`` through
:class:`numpy.random.SeedSequence` — stable across worker counts, Python
processes, and platforms, and decorrelated across indices.

Worker functions must be module-level (picklable by reference) so the
pool works under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

#: A task function: ``fn(shared, task) -> result``.  Must be defined at
#: module level so it pickles by reference under the spawn start method.
TaskFn = Callable[[Any, Any], Any]

# Per-worker-process state installed by the pool initializer.  Plain
# module globals: each worker process has its own copy of this module.
_WORKER_FN: "TaskFn | None" = None
_WORKER_SHARED: Any = None


def resolve_workers(workers: "int | None") -> int:
    """Normalize a ``workers`` knob to a concrete pool size.

    ``None`` or ``1`` mean *sequential* (run inline, spawn nothing);
    ``0`` or any negative value mean *all cores* (``os.cpu_count()``);
    any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def derive_seed(base_seed: "int | None", task_index: int) -> "int | None":
    """A per-task seed that is stable at any worker count.

    Folds ``(base_seed, task_index)`` through
    :class:`numpy.random.SeedSequence`, so consecutive task indices get
    decorrelated streams (unlike ``base_seed + index``, whose nearby
    states can correlate under some bit-generators).  ``None`` stays
    ``None`` (fresh entropy per task, explicitly non-reproducible).
    """
    if base_seed is None:
        return None
    sequence = np.random.SeedSequence([int(base_seed) & 0xFFFFFFFF, int(task_index)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def _init_worker(fn: TaskFn, shared: Any) -> None:
    """Pool initializer: install the task function and shared payload."""
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = shared


def _run_task(task: Any) -> Any:
    """Top-level trampoline executed in the worker for each task."""
    return _WORKER_FN(_WORKER_SHARED, task)


class ParallelExecutor:
    """Ordered fan-out of independent tasks over a process pool.

    Parameters
    ----------
    workers:
        Pool size, normalized by :func:`resolve_workers` (``1``/``None``
        = inline sequential, ``0``/negative = all cores).
    mp_context:
        Optional :mod:`multiprocessing` context.  Defaults to ``fork``
        where available (cheap, inherits the graph copy-on-write) and
        ``spawn`` elsewhere; everything shipped is spawn-safe either way.

    Example
    -------
    >>> from repro.parallel import ParallelExecutor
    >>> def square(shared, task):
    ...     return shared * task * task
    >>> ParallelExecutor(workers=1).map(square, [1, 2, 3], shared=10)
    [10, 40, 90]
    """

    def __init__(self, workers: "int | None" = 1, *, mp_context=None):
        self.workers = resolve_workers(workers)
        self._mp_context = mp_context

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        return multiprocessing.get_context(method)

    def map(
        self,
        fn: TaskFn,
        tasks: "Iterable[Any] | Sequence[Any]",
        *,
        shared: Any = None,
    ) -> List[Any]:
        """Run ``fn(shared, task)`` for every task; results in task order.

        With an effective pool size of 1 (or a single task) the tasks run
        inline — no processes, no pickling — which is also the reference
        path the parallel path must match byte for byte.  A task that
        raises propagates its exception to the caller either way.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        workers = min(self.workers, len(tasks))
        if workers <= 1:
            return [fn(shared, task) for task in tasks]
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._context(),
            initializer=_init_worker,
            initargs=(fn, shared),
        ) as pool:
            return list(pool.map(_run_task, tasks))
