"""The core graph type: an immutable undirected simple graph in CSR form.

The paper (Sect. II-A) assumes an undirected graph without self-loops whose
nodes are ``{0, 1, ..., |V|-1}``.  :class:`Graph` enforces exactly that:

* edges are stored once per direction in a compressed-sparse-row structure
  (``indptr``/``indices``), with each adjacency row sorted so membership
  tests are binary searches;
* self-loops are dropped and duplicate edges collapsed at construction;
* the object is immutable — algorithms that "modify" graphs (summarizers,
  partitioners) build their own overlay structures instead.

The input-graph size in bits (Eq. 4 of the paper) is exposed as
:meth:`Graph.size_in_bits`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro._util import log2_capped
from repro.errors import GraphFormatError

#: Largest node count for which the packed dedup key ``u * num_nodes + v``
#: is exact in int64: with ``num_nodes <= 2**31`` the key is bounded by
#: ``2**62``, comfortably inside int64.  Beyond it the multiplication can
#: wrap, so dedup falls back to the overflow-safe lexsort path.
_PACKED_KEY_MAX_NODES = np.int64(2) ** 31


def dedup_canonical_edges(u: np.ndarray, v: np.ndarray, num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate canonical edge endpoints (``u < v``), sorted lexicographically.

    For ``num_nodes <= 2**31`` the pair is packed into one int64 key
    (``u * num_nodes + v``), which a single :func:`numpy.unique` both
    dedups and sorts.  Larger node counts would overflow the key and
    silently merge distinct edges, so they take an overflow-safe lexsort
    with consecutive-duplicate elimination instead.  Both paths return
    identical arrays for any input where the packed key is exact.
    """
    if u.size == 0:
        return u, v
    if num_nodes <= _PACKED_KEY_MAX_NODES:
        key = u * np.int64(num_nodes) + v
        _, unique_idx = np.unique(key, return_index=True)
        return u[unique_idx], v[unique_idx]
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    keep = np.empty(u.shape[0], dtype=bool)
    keep[0] = True
    np.logical_or(u[1:] != u[:-1], v[1:] != v[:-1], out=keep[1:])
    return u[keep], v[keep]


class Graph:
    """An immutable undirected simple graph on nodes ``0..num_nodes-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``|V|``.  Isolated nodes are allowed.
    indptr, indices:
        CSR adjacency: the neighbors of node ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``, sorted ascending.  Each
        undirected edge appears in both endpoint rows.

    Most callers should use :meth:`Graph.from_edges` instead of the raw
    constructor; the constructor validates but does not repair its input.
    """

    __slots__ = ("_num_nodes", "_indptr", "_indices")

    def __init__(self, num_nodes: int, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if num_nodes < 0:
            raise GraphFormatError(f"num_nodes must be >= 0, got {num_nodes}")
        if indptr.shape != (num_nodes + 1,):
            raise GraphFormatError(
                f"indptr must have length num_nodes+1={num_nodes + 1}, got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise GraphFormatError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= num_nodes):
            raise GraphFormatError("indices contain out-of-range node ids")
        self._num_nodes = int(num_nodes)
        self._indptr = indptr
        self._indices = indices
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: "Iterable[Tuple[int, int]] | np.ndarray",
        *,
        validate: bool = True,
    ) -> "Graph":
        """Build a graph from an iterable (or ``(m, 2)`` array) of edges.

        Self-loops are discarded and duplicate/reversed edges collapsed, so
        any edge soup yields a simple undirected graph.
        """
        arr = np.asarray(edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(f"edges must be of shape (m, 2), got {arr.shape}")
        if validate and arr.size and (arr.min() < 0 or arr.max() >= num_nodes):
            raise GraphFormatError("edge endpoints out of range for num_nodes")
        u = np.minimum(arr[:, 0], arr[:, 1])
        v = np.maximum(arr[:, 0], arr[:, 1])
        keep = u != v  # drop self-loops
        u, v = u[keep], v[keep]
        u, v = dedup_canonical_edges(u, v, num_nodes)
        return cls._from_canonical_edges(num_nodes, u, v)

    @classmethod
    def _from_canonical_edges(cls, num_nodes: int, u: np.ndarray, v: np.ndarray) -> "Graph":
        """Build CSR from deduplicated edges with ``u < v``."""
        heads = np.concatenate([u, v])
        tails = np.concatenate([v, u])
        order = np.lexsort((tails, heads))
        heads, tails = heads[order], tails[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, heads + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(num_nodes, indptr, tails)

    @classmethod
    def empty(cls, num_nodes: int = 0) -> "Graph":
        """An edgeless graph on *num_nodes* nodes."""
        return cls(num_nodes, np.zeros(num_nodes + 1, dtype=np.int64), np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._indices.shape[0] // 2

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view)."""
        return self._indices

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted array of neighbors of node *u* (read-only view)."""
        if not 0 <= u < self._num_nodes:
            raise GraphFormatError(f"node {u} out of range [0, {self._num_nodes})")
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of node *u*."""
        if not 0 <= u < self._num_nodes:
            raise GraphFormatError(f"node {u} out of range [0, {self._num_nodes})")
        return int(self._indptr[u + 1] - self._indptr[u])

    def degrees(self) -> np.ndarray:
        """Array of all node degrees."""
        return np.diff(self._indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists (binary search)."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.shape[0] and row[pos] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self._num_nodes):
            row = self.neighbors(u)
            for v in row[np.searchsorted(row, u, side="right") :]:
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(|E|, 2)`` array with ``u < v``."""
        heads = np.repeat(np.arange(self._num_nodes, dtype=np.int64), self.degrees())
        mask = heads < self._indices
        return np.column_stack([heads[mask], self._indices[mask]])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: "Iterable[int] | np.ndarray") -> Tuple["Graph", np.ndarray]:
        """Subgraph induced by *nodes*, with nodes relabeled to ``0..n'-1``.

        Returns ``(subgraph, originals)`` where ``originals[new_id]`` is the
        id the node had in ``self``.  Node order is preserved (sorted by
        original id).
        """
        keep = np.unique(np.asarray(list(nodes) if not isinstance(nodes, np.ndarray) else nodes, dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self._num_nodes):
            raise GraphFormatError("induced_subgraph: node ids out of range")
        new_id = np.full(self._num_nodes, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size, dtype=np.int64)
        edges = self.edge_array()
        if edges.size:
            mask = (new_id[edges[:, 0]] >= 0) & (new_id[edges[:, 1]] >= 0)
            edges = new_id[edges[mask]]
        return Graph.from_edges(keep.size, edges, validate=False), keep

    # ------------------------------------------------------------------
    # size model (Eq. 4)
    # ------------------------------------------------------------------
    def size_in_bits(self) -> float:
        """Input-graph size ``2 |E| log2 |V|`` in bits (Eq. 4 of the paper)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges * log2_capped(self._num_nodes)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # Graphs are immutable, allow set membership.
        return hash((self._num_nodes, self._indices.tobytes()))
