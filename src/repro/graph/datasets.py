"""Synthetic stand-ins for the paper's datasets (Table II).

The paper evaluates on six real-world graphs plus one synthetic
Barabási–Albert graph:

===============  ==========  ============  =============
Name             # Nodes     # Edges       Summary
===============  ==========  ============  =============
LastFM-Asia (LA) 7,624       27,806        Social
Caida (CA)       26,475      53,381        Internet
DBLP (DB)        317,080     1,049,866     Collaboration
Amazon0601 (A6)  403,364     2,443,311     Co-purchase
Skitter (SK)     1,694,616   11,094,209    Internet
Wikipedia (WK)   3,174,745   103,310,688   Hyperlinks
Synthetic (ST)   10,000,000  1,000,000,000 BA Model
===============  ==========  ============  =============

Those files are not available offline, so each dataset is replaced by a
deterministic synthetic analogue from the same structural family (DESIGN.md
Sect. 3).  Absolute sizes are scaled to laptop-friendly defaults; the
``scale`` parameter grows or shrinks them while keeping average degree and
family parameters fixed, so experiment *shapes* (who wins at which
compression ratio, scaling slopes) carry over.

Every stand-in is restricted to its largest connected component, exactly as
the paper preprocesses its data (Sect. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro._util import ensure_rng
from repro.errors import GraphFormatError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import largest_connected_component


@dataclass(frozen=True)
class Dataset:
    """A named graph with its provenance.

    Attributes
    ----------
    name:
        Short key, e.g. ``"lastfm_asia"``.
    display_name:
        The paper's label, e.g. ``"LastFM-Asia (LA)"``.
    kind:
        The family column of Table II (Social, Internet, ...).
    graph:
        The loaded (synthetic, LCC-restricted) graph.
    """

    name: str
    display_name: str
    kind: str
    graph: Graph


def _lastfm_asia(scale: float, rng: np.random.Generator) -> Graph:
    """Social network: strong communities + hubs (SBM with BA overlay)."""
    n = max(int(1200 * scale), 60)
    base = generators.planted_partition(
        n, max(n // 75, 4), avg_degree_in=6.0, avg_degree_out=0.6, seed=rng
    )
    hubs = generators.barabasi_albert(n, 1, seed=rng)
    return _union(base, hubs)


def _caida(scale: float, rng: np.random.Generator) -> Graph:
    """Internet AS topology: tree-like with a dense core (BA, m=2)."""
    n = max(int(1600 * scale), 60)
    return generators.barabasi_albert(n, 2, seed=rng)


def _dblp(scale: float, rng: np.random.Generator) -> Graph:
    """Collaboration network: many small cliques loosely connected."""
    n_target = max(int(1800 * scale), 80)
    clique = 6
    cliques = max(n_target // clique, 4)
    base = generators.connected_caveman(cliques, clique)
    extra = generators.erdos_renyi(base.num_nodes, base.num_nodes // 2, seed=rng)
    return _union(base, extra)


def _amazon0601(scale: float, rng: np.random.Generator) -> Graph:
    """Co-purchase network: moderate-degree SBM with local clustering."""
    n = max(int(2200 * scale), 80)
    return generators.planted_partition(
        n, max(n // 40, 6), avg_degree_in=8.0, avg_degree_out=1.5, seed=rng
    )


def _skitter(scale: float, rng: np.random.Generator) -> Graph:
    """Traceroute internet topology: heavier-tailed BA (m=4)."""
    n = max(int(2600 * scale), 80)
    return generators.barabasi_albert(n, 4, seed=rng)


def _wikipedia(scale: float, rng: np.random.Generator) -> Graph:
    """Hyperlink network: dense, small effective diameter (BA, m=8)."""
    n = max(int(3000 * scale), 100)
    return generators.barabasi_albert(n, 8, seed=rng)


def _synthetic_ba(scale: float, rng: np.random.Generator) -> Graph:
    """The paper's Fig. 6 synthetic graph family (BA, avg degree ~100 scaled to ~10)."""
    n = max(int(4000 * scale), 120)
    return generators.barabasi_albert(n, 5, seed=rng)


def _synthetic_dense(scale: float, rng: np.random.Generator) -> Graph:
    """The paper's synthetic graph at its true density class (BA, m=20).

    The paper's ST graph averages ~200 edges per node; the laptop-scale
    ``synthetic_ba`` stand-in keeps only ~10.  This denser sibling restores
    the long-block-row regime (where the batched merge engine and the
    incremental caches earn their keep) at a node count that still runs in
    seconds.
    """
    n = max(int(2000 * scale), 120)
    return generators.barabasi_albert(n, 20, seed=rng)


def _union(a: Graph, b: Graph) -> Graph:
    """Union of two graphs on the same node set."""
    if a.num_nodes != b.num_nodes:
        raise GraphFormatError("graph union requires identical node sets")
    edges = [e for e in (a.edge_array(), b.edge_array()) if e.size]
    if not edges:
        return Graph.empty(a.num_nodes)
    return Graph.from_edges(a.num_nodes, np.vstack(edges), validate=False)


_BUILDERS: Dict[str, Tuple[str, str, Callable[[float, np.random.Generator], Graph]]] = {
    "lastfm_asia": ("LastFM-Asia (LA)", "Social", _lastfm_asia),
    "caida": ("Caida (CA)", "Internet", _caida),
    "dblp": ("DBLP (DB)", "Collaboration", _dblp),
    "amazon0601": ("Amazon0601 (A6)", "Co-purchase", _amazon0601),
    "skitter": ("Skitter (SK)", "Internet", _skitter),
    "wikipedia": ("Wikipedia (WK)", "Hyperlinks", _wikipedia),
    "synthetic_ba": ("Synthetic (ST)", "BA Model", _synthetic_ba),
    "synthetic_dense": ("Synthetic-dense (SD)", "BA Model", _synthetic_dense),
}


def dataset_names(*, include_synthetic: bool = True) -> List[str]:
    """Names accepted by :func:`load_dataset`, in Table II order."""
    names = list(_BUILDERS)
    if not include_synthetic:
        names.remove("synthetic_ba")
        names.remove("synthetic_dense")
    return names


def load_dataset(name: str, *, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Build the synthetic stand-in for dataset *name*.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Multiplies the default node count (default sizes are laptop-scale;
        the paper's originals are listed in the module docstring).
    seed:
        Seed for the deterministic construction.
    """
    if name not in _BUILDERS:
        raise GraphFormatError(f"unknown dataset {name!r}; choose from {sorted(_BUILDERS)}")
    if scale <= 0:
        raise GraphFormatError(f"scale must be positive, got {scale}")
    display, kind, builder = _BUILDERS[name]
    rng = ensure_rng(seed)
    graph = builder(scale, rng)
    graph, _ = largest_connected_component(graph)
    return Dataset(name=name, display_name=display, kind=kind, graph=graph)


def table2_rows(*, scale: float = 1.0, seed: int = 0) -> List[Tuple[str, int, int, str]]:
    """Rows of Table II for the stand-in datasets: (name, #nodes, #edges, kind)."""
    rows = []
    for name in dataset_names():
        ds = load_dataset(name, scale=scale, seed=seed)
        rows.append((ds.display_name, ds.graph.num_nodes, ds.graph.num_edges, ds.kind))
    return rows
