"""Graph substrate: CSR graphs, I/O, traversals, generators, and datasets.

This subpackage is the foundation every other layer builds on.  The central
type is :class:`repro.graph.Graph`, an immutable undirected simple graph in
compressed-sparse-row form.
"""

from repro.graph.graph import Graph
from repro.graph.io import read_edgelist, write_edgelist
from repro.graph.traversal import (
    bfs_distances,
    connected_components,
    effective_diameter,
    largest_connected_component,
)
from repro.graph.generators import (
    barabasi_albert,
    connected_caveman,
    erdos_renyi,
    grid_2d,
    planted_partition,
    watts_strogatz,
)
from repro.graph.datasets import Dataset, dataset_names, load_dataset, table2_rows

__all__ = [
    "Graph",
    "read_edgelist",
    "write_edgelist",
    "bfs_distances",
    "connected_components",
    "effective_diameter",
    "largest_connected_component",
    "barabasi_albert",
    "connected_caveman",
    "erdos_renyi",
    "grid_2d",
    "planted_partition",
    "watts_strogatz",
    "Dataset",
    "dataset_names",
    "load_dataset",
    "table2_rows",
]
