"""Breadth-first traversals and the structural statistics built on them.

These routines back three parts of the paper:

* the personalized weights need multi-source hop distances ``D(u, T)``
  (Eq. 2) — :func:`bfs_distances` with the target set as sources;
* the experiments use only the largest connected component of each dataset
  (Sect. V-A) — :func:`largest_connected_component`;
* Fig. 10 relates the best degree of personalization to the 90-percentile
  *effective diameter* — :func:`effective_diameter`.

All loops are level-synchronous and vectorized over the frontier, so a BFS
is ``O(|V| + |E|)`` with small numpy constants.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro._util import as_node_array, ensure_rng
from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def _gather_neighbors(graph: Graph, frontier: np.ndarray) -> np.ndarray:
    """All neighbors of the *frontier* nodes, concatenated (with repeats)."""
    indptr, indices = graph.indptr, graph.indices
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return indices[np.repeat(starts, counts) + offsets]


def bfs_distances(graph: Graph, sources: "int | Iterable[int]", *, max_depth: "int | None" = None) -> np.ndarray:
    """Hop distances from the nearest of *sources* to every node.

    Unreachable nodes get distance ``-1``.  This is the multi-source BFS
    behind ``D(u, T) = min_{t in T} #hops(u, t)`` in Eq. 2.
    """
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    src = as_node_array(sources)
    if src.size == 0:
        raise GraphFormatError("bfs_distances requires at least one source node")
    if src[0] < 0 or src[-1] >= graph.num_nodes:
        raise GraphFormatError("bfs_distances: source node out of range")
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[src] = 0
    frontier = src
    depth = 0
    while frontier.size:
        if max_depth is not None and depth >= max_depth:
            break
        neigh = _gather_neighbors(graph, frontier)
        neigh = neigh[dist[neigh] < 0]
        if neigh.size == 0:
            break
        frontier = np.unique(neigh)
        depth += 1
        dist[frontier] = depth
    return dist


def connected_components(graph: Graph) -> Tuple[np.ndarray, int]:
    """Label connected components.

    Returns ``(labels, count)`` where ``labels[u]`` is in ``0..count-1`` and
    components are numbered in order of their smallest node id.
    """
    labels = np.full(graph.num_nodes, -1, dtype=np.int64)
    count = 0
    for seed in range(graph.num_nodes):
        if labels[seed] >= 0:
            continue
        frontier = np.asarray([seed], dtype=np.int64)
        labels[seed] = count
        while frontier.size:
            neigh = _gather_neighbors(graph, frontier)
            neigh = neigh[labels[neigh] < 0]
            if neigh.size == 0:
                break
            frontier = np.unique(neigh)
            labels[frontier] = count
        count += 1
    return labels, count


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """The induced subgraph on the largest component (ties: smallest label).

    Returns ``(subgraph, originals)`` like :meth:`Graph.induced_subgraph`.
    The paper's experiments run on exactly this restriction (Sect. V-A).
    """
    if graph.num_nodes == 0:
        return graph, np.empty(0, dtype=np.int64)
    labels, count = connected_components(graph)
    sizes = np.bincount(labels, minlength=count)
    return graph.induced_subgraph(np.flatnonzero(labels == int(np.argmax(sizes))))


def effective_diameter(
    graph: Graph,
    *,
    quantile: float = 0.9,
    num_sources: int = 64,
    seed: "int | np.random.Generator | None" = 0,
) -> float:
    """Estimate the *quantile*-effective diameter (default 90-percentile).

    The effective diameter is the smallest hop count within which the given
    fraction of reachable node pairs lie (the statistic Fig. 10 of the paper
    plots against the best ``alpha``).  We BFS from ``num_sources`` random
    sources and take the empirical quantile of all finite pairwise
    distances observed, with linear interpolation between hop counts as in
    the standard ANF/HADI convention.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if graph.num_nodes <= 1:
        return 0.0
    rng = ensure_rng(seed)
    num_sources = min(num_sources, graph.num_nodes)
    sources = rng.choice(graph.num_nodes, size=num_sources, replace=False)
    all_counts = np.zeros(1, dtype=np.int64)
    for s in sources:
        dist = bfs_distances(graph, int(s))
        dist = dist[dist > 0]
        if dist.size == 0:
            continue
        counts = np.bincount(dist)
        if counts.size > all_counts.size:
            all_counts = np.pad(all_counts, (0, counts.size - all_counts.size))
            all_counts += counts
        else:
            all_counts[: counts.size] += counts
    total = int(all_counts.sum())
    if total == 0:
        return 0.0
    cumulative = np.cumsum(all_counts) / total
    hop = int(np.searchsorted(cumulative, quantile))
    if hop == 0:
        return 0.0
    # Interpolate between hop-1 and hop for a smooth estimate.
    below = cumulative[hop - 1]
    at = cumulative[hop]
    if at == below:
        return float(hop)
    return float(hop - 1) + (quantile - below) / (at - below)
