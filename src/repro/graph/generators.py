"""Random-graph generators used as dataset stand-ins and scalability drivers.

The paper's evaluation needs three things from its graphs:

* heavy-tailed degree distributions with community structure (the six
  real-world datasets of Table II) — covered by :func:`barabasi_albert`,
  :func:`planted_partition`, and :func:`connected_caveman`;
* a billion-edge Barabási–Albert graph for the scalability study (Fig. 6)
  — :func:`barabasi_albert` at whatever scale the machine affords;
* Watts–Strogatz graphs whose rewiring probability controls the effective
  diameter (Fig. 10) — :func:`watts_strogatz`.

All generators are deterministic given a seed and return
:class:`repro.graph.Graph` objects (simple, undirected).
"""

from __future__ import annotations

import numpy as np

from repro._util import ensure_rng
from repro.graph.graph import Graph


def erdos_renyi(num_nodes: int, num_edges: int, *, seed: "int | np.random.Generator | None" = None) -> Graph:
    """A G(n, m)-style random graph with ~*num_edges* distinct edges.

    Edges are sampled uniformly with rejection of duplicates/self-loops, so
    the realized edge count equals ``num_edges`` whenever that many distinct
    pairs exist.
    """
    rng = ensure_rng(seed)
    if num_nodes < 2 or num_edges <= 0:
        return Graph.empty(max(num_nodes, 0))
    max_edges = num_nodes * (num_nodes - 1) // 2
    num_edges = min(num_edges, max_edges)
    chosen: set = set()
    # Oversample in rounds; expected #rounds is tiny for sparse graphs.
    while len(chosen) < num_edges:
        need = num_edges - len(chosen)
        u = rng.integers(0, num_nodes, size=2 * need + 8)
        v = rng.integers(0, num_nodes, size=2 * need + 8)
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        for a, b in zip(lo.tolist(), hi.tolist()):
            if a != b:
                chosen.add((a, b))
                if len(chosen) == num_edges:
                    break
    return Graph.from_edges(num_nodes, np.asarray(sorted(chosen), dtype=np.int64), validate=False)


def barabasi_albert(num_nodes: int, edges_per_node: int, *, seed: "int | np.random.Generator | None" = None) -> Graph:
    """Barabási–Albert preferential attachment (the Fig. 6 synthetic model).

    Each arriving node attaches to ``edges_per_node`` distinct existing
    nodes chosen proportionally to degree, via the standard repeated-nodes
    urn.  The result is connected with a power-law degree tail.
    """
    rng = ensure_rng(seed)
    m = edges_per_node
    if num_nodes <= 0:
        return Graph.empty(0)
    if m < 1 or num_nodes <= m:
        return erdos_renyi(num_nodes, num_nodes * (num_nodes - 1) // 2, seed=rng)
    sources = []
    targets = []
    # Urn of node ids, one entry per degree unit; seeded with a star on m+1
    # nodes so early attachment probabilities are well defined.
    urn = []
    for v in range(m):
        sources.append(m)
        targets.append(v)
        urn.extend((m, v))
    for new in range(m + 1, num_nodes):
        chosen: set = set()
        while len(chosen) < m:
            pick = urn[int(rng.integers(0, len(urn)))]
            chosen.add(pick)
        for old in chosen:
            sources.append(new)
            targets.append(old)
            urn.extend((new, old))
    edges = np.column_stack([np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)])
    return Graph.from_edges(num_nodes, edges, validate=False)


def watts_strogatz(
    num_nodes: int,
    neighbors_each_side: int,
    rewire_probability: float,
    *,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Watts–Strogatz small-world graph (used for the Fig. 10 diameter sweep).

    Starts from a ring lattice where every node connects to
    ``neighbors_each_side`` nodes on each side (so ``n * k`` edges total with
    ``k = neighbors_each_side``) and rewires each edge's far endpoint with
    probability *rewire_probability*.  ``p = 0`` keeps the lattice (large
    diameter); ``p = 0.1`` already collapses it to a small world.
    """
    rng = ensure_rng(seed)
    n, k = num_nodes, neighbors_each_side
    if n <= 0:
        return Graph.empty(0)
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError(f"rewire_probability must be in [0, 1], got {rewire_probability}")
    if 2 * k >= n:
        raise ValueError("neighbors_each_side too large for the ring size")
    existing: set = set()
    for offset in range(1, k + 1):
        for u in range(n):
            v = (u + offset) % n
            existing.add((min(u, v), max(u, v)))
    edges = sorted(existing)
    rewired: set = set(edges)
    for (u, v) in edges:
        if rng.random() >= rewire_probability:
            continue
        rewired.discard((u, v))
        # Try a handful of times to find a free endpoint, else keep the edge.
        for _ in range(8):
            w = int(rng.integers(0, n))
            cand = (min(u, w), max(u, w))
            if w != u and cand not in rewired:
                rewired.add(cand)
                break
        else:
            rewired.add((u, v))
    return Graph.from_edges(n, np.asarray(sorted(rewired), dtype=np.int64), validate=False)


def planted_partition(
    num_nodes: int,
    num_communities: int,
    *,
    avg_degree_in: float,
    avg_degree_out: float,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """A planted-partition (SBM) graph: dense communities, sparse cross links.

    Community sizes are equal up to rounding; the expected within- and
    cross-community degrees are ``avg_degree_in`` / ``avg_degree_out``.
    This is the stand-in family for social and collaboration networks,
    whose community structure is what personalized summarization exploits.
    """
    rng = ensure_rng(seed)
    if num_nodes <= 0:
        return Graph.empty(0)
    if num_communities < 1:
        raise ValueError("num_communities must be >= 1")
    membership = np.sort(rng.permutation(np.arange(num_nodes) % num_communities))
    # membership is sorted community labels; nodes 0..n-1 get labels in order.
    edges = []
    community_nodes = [np.flatnonzero(membership == c) for c in range(num_communities)]
    for nodes in community_nodes:
        size = nodes.size
        if size >= 2:
            want = int(round(avg_degree_in * size / 2.0))
            sub = erdos_renyi(size, want, seed=rng)
            local = sub.edge_array()
            if local.size:
                edges.append(nodes[local])
    want_cross = int(round(avg_degree_out * num_nodes / 2.0))
    if want_cross > 0 and num_communities > 1:
        u = rng.integers(0, num_nodes, size=want_cross * 2)
        v = rng.integers(0, num_nodes, size=want_cross * 2)
        mask = membership[u] != membership[v]
        cross = np.column_stack([u[mask], v[mask]])[:want_cross]
        if cross.size:
            edges.append(cross)
    if not edges:
        return Graph.empty(num_nodes)
    return Graph.from_edges(num_nodes, np.vstack(edges), validate=False)


def grid_2d(rows: int, cols: int, *, diagonals: bool = False) -> Graph:
    """A rows × cols grid graph — the road-network stand-in.

    Node ``(r, c)`` has id ``r * cols + c``.  With ``diagonals=True`` the
    eight-neighborhood is used instead of the four-neighborhood.
    """
    if rows <= 0 or cols <= 0:
        return Graph.empty(0)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    edges = []
    edges.append(np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()]))
    edges.append(np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()]))
    if diagonals:
        edges.append(np.column_stack([ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()]))
        edges.append(np.column_stack([ids[:-1, 1:].ravel(), ids[1:, :-1].ravel()]))
    return Graph.from_edges(rows * cols, np.vstack(edges), validate=False)


def connected_caveman(num_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: a ring of cliques sharing one rewired edge.

    A classic high-clustering, high-diameter family; summarizers compress
    each clique to nearly a single supernode with a self-loop, which makes
    this the sharpest correctness probe for the cost model.
    """
    if num_cliques <= 0 or clique_size < 2:
        return Graph.empty(max(num_cliques * max(clique_size, 0), 0))
    edges = []
    n = num_cliques * clique_size
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        # Connect to the next clique by relinking one within-clique edge.
        nxt = ((c + 1) % num_cliques) * clique_size
        edges.append((base, nxt + 1 if clique_size > 1 else nxt))
    return Graph.from_edges(n, np.asarray(edges, dtype=np.int64), validate=False)
