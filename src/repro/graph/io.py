"""Plain-text edge-list I/O.

The datasets in the paper (Table II) ship as whitespace-separated edge
lists; this module reads and writes that format.  Nodes may carry arbitrary
non-negative integer labels — :func:`read_edgelist` compacts them to
``0..n-1`` and returns the relabeling so query results can be mapped back.

Files written by :func:`write_edgelist` carry a ``#nodes <n>`` directive:
an edge list alone cannot represent isolated nodes (compacting labels
drops them; ``relabel=False`` truncates the node range to the largest
endpoint), so without the directive a write → read round trip silently
changed ``num_nodes``.  The directive starts with ``#``, so readers of
the plain format treat it as a comment.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

_COMMENT_PREFIXES = ("#", "%", "//")

#: Machine-readable node-count directive (syntactically a comment line).
_NODES_DIRECTIVE = "#nodes"


def read_edgelist(
    path: "str | os.PathLike[str]",
    *,
    delimiter: "str | None" = None,
    relabel: bool = True,
) -> Tuple[Graph, np.ndarray]:
    """Read an undirected edge list from *path*.

    Lines starting with ``#``, ``%`` or ``//`` are ignored, as are blank
    lines.  Each remaining line must contain at least two integer fields;
    extra fields (e.g. weights or timestamps) are ignored, since the paper's
    formulation is unweighted.

    A ``#nodes <n>`` directive (written by :func:`write_edgelist`) fixes
    the node count: node ids are then taken verbatim from ``0..n-1`` —
    isolated nodes survive the round trip — and ids ``>= n`` are rejected.
    Without a directive, behaviour is unchanged: ``relabel=True`` compacts
    the observed labels, ``relabel=False`` requires them to already be a
    dense ``0..n-1`` range.

    Returns ``(graph, labels)`` where ``labels[i]`` is the original label
    of node ``i``.
    """
    sources: List[int] = []
    targets: List[int] = []
    declared_nodes: "int | None" = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(_COMMENT_PREFIXES):
                fields = stripped.split()
                if fields and fields[0] == _NODES_DIRECTIVE:
                    if len(fields) != 2:
                        raise GraphFormatError(
                            f"{path}:{lineno}: #nodes directive must be '#nodes <n>', "
                            f"got {stripped!r}"
                        )
                    try:
                        count = int(fields[1])
                    except ValueError:
                        raise GraphFormatError(
                            f"{path}:{lineno}: node count {fields[1]!r} is not an integer"
                        ) from None
                    if count < 0:
                        raise GraphFormatError(
                            f"{path}:{lineno}: node count must be >= 0, got {count}"
                        )
                    if declared_nodes is not None and declared_nodes != count:
                        raise GraphFormatError(
                            f"{path}:{lineno}: conflicting #nodes directives "
                            f"({declared_nodes} then {count})"
                        )
                    declared_nodes = count
                continue
            parts = stripped.split(delimiter)
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected two fields, got {stripped!r}")
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer node id in {stripped!r}") from exc
    if not sources:
        if declared_nodes is not None:
            return Graph.empty(declared_nodes), np.arange(declared_nodes, dtype=np.int64)
        return Graph.empty(0), np.empty(0, dtype=np.int64)
    raw = np.column_stack([np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)])
    if raw.min() < 0:
        raise GraphFormatError(f"{path}: negative node ids are not supported")
    if declared_nodes is not None:
        if raw.max() >= declared_nodes:
            raise GraphFormatError(
                f"{path}: node id {int(raw.max())} out of range for "
                f"#nodes {declared_nodes}"
            )
        return (
            Graph.from_edges(declared_nodes, raw, validate=False),
            np.arange(declared_nodes, dtype=np.int64),
        )
    if relabel:
        labels, compact = np.unique(raw, return_inverse=True)
        edges = compact.reshape(raw.shape)
        return Graph.from_edges(labels.size, edges, validate=False), labels
    num_nodes = int(raw.max()) + 1
    return Graph.from_edges(num_nodes, raw), np.arange(num_nodes, dtype=np.int64)


def write_edgelist(graph: Graph, path: "str | os.PathLike[str]", *, header: bool = True) -> None:
    """Write *graph* as a whitespace-separated edge list (one edge per line).

    Always emits the ``#nodes`` directive so the node count — including
    isolated nodes, which the edge lines alone cannot carry — survives a
    :func:`read_edgelist` round trip.  *header* controls only the
    human-readable comment line.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# undirected simple graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        handle.write(f"{_NODES_DIRECTIVE} {graph.num_nodes}\n")
        for u, v in graph.edge_array():
            handle.write(f"{u}\t{v}\n")
