"""Plain-text edge-list I/O.

The datasets in the paper (Table II) ship as whitespace-separated edge
lists; this module reads and writes that format.  Nodes may carry arbitrary
non-negative integer labels — :func:`read_edgelist` compacts them to
``0..n-1`` and returns the relabeling so query results can be mapped back.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

_COMMENT_PREFIXES = ("#", "%", "//")


def read_edgelist(
    path: "str | os.PathLike[str]",
    *,
    delimiter: "str | None" = None,
    relabel: bool = True,
) -> Tuple[Graph, np.ndarray]:
    """Read an undirected edge list from *path*.

    Lines starting with ``#``, ``%`` or ``//`` are ignored, as are blank
    lines.  Each remaining line must contain at least two integer fields;
    extra fields (e.g. weights or timestamps) are ignored, since the paper's
    formulation is unweighted.

    Returns ``(graph, labels)`` where ``labels[i]`` is the original label of
    node ``i``.  With ``relabel=False`` the labels must already be a dense
    ``0..n-1`` range.
    """
    sources: List[int] = []
    targets: List[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split(delimiter)
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected two fields, got {stripped!r}")
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer node id in {stripped!r}") from exc
    if not sources:
        return Graph.empty(0), np.empty(0, dtype=np.int64)
    raw = np.column_stack([np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)])
    if raw.min() < 0:
        raise GraphFormatError(f"{path}: negative node ids are not supported")
    if relabel:
        labels, compact = np.unique(raw, return_inverse=True)
        edges = compact.reshape(raw.shape)
        return Graph.from_edges(labels.size, edges, validate=False), labels
    num_nodes = int(raw.max()) + 1
    return Graph.from_edges(num_nodes, raw), np.arange(num_nodes, dtype=np.int64)


def write_edgelist(graph: Graph, path: "str | os.PathLike[str]", *, header: bool = True) -> None:
    """Write *graph* as a whitespace-separated edge list (one edge per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# undirected simple graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        for u, v in graph.edge_array():
            handle.write(f"{u}\t{v}\n")
