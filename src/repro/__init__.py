"""repro — a reproduction of *Personalized Graph Summarization* (ICDE 2022).

The package implements the paper's contribution (the PeGaSus algorithm and
the personalized-error formulation) together with every substrate its
evaluation depends on: a CSR graph library, random-graph generators and
dataset stand-ins, the SSumM / k-Grass / S2L / SAAGs baselines, summary-
graph query answering (RWR, HOP, PHP, PageRank, ...), graph partitioners
(Louvain, BLP, SHP), and a simulated cluster for communication-free
distributed multi-query answering.

Quickstart
----------
>>> from repro import Pegasus, load_dataset, rwr_scores
>>> graph = load_dataset("lastfm_asia", scale=0.3).graph
>>> result = Pegasus(alpha=1.5, seed=0).summarize(
...     graph, targets=[0], compression_ratio=0.5)
>>> scores = rwr_scores(result.summary, 0)   # approximate RWR from summary
"""

from repro.core import (
    CostModel,
    FlatSummaryGraph,
    Pegasus,
    PegasusConfig,
    PegasusResult,
    PersonalizedWeights,
    SummaryGraph,
    personalized_error,
    summarize,
)
from repro.core.summary_io import load_summary, save_summary
from repro.graph import Graph, dataset_names, load_dataset, read_edgelist, write_edgelist
from repro.parallel import ParallelExecutor
from repro.queries import hop_distances, php_scores, rwr_scores

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "FlatSummaryGraph",
    "Pegasus",
    "PegasusConfig",
    "PegasusResult",
    "PersonalizedWeights",
    "SummaryGraph",
    "personalized_error",
    "summarize",
    "load_summary",
    "save_summary",
    "Graph",
    "ParallelExecutor",
    "dataset_names",
    "load_dataset",
    "read_edgelist",
    "write_edgelist",
    "hop_distances",
    "php_scores",
    "rwr_scores",
    "__version__",
]
