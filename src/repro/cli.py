"""Command-line interface: ``repro-pegasus`` (or ``python -m repro``).

Subcommands
-----------

``datasets``
    Print Table II for the synthetic stand-ins.
``summarize``
    Summarize a dataset or edge-list file with PeGaSus (or SSumM) and
    optionally save the summary graph.
``query``
    Answer an RWR / HOP / PHP query from a graph and (optionally) compare
    it against the answer from a personalized summary.
``experiment``
    Run one of the paper's experiments and print its rows.
``serve``
    Build a simulated cluster and serve a stream of concurrent queries
    through the async micro-batching front end, reporting throughput,
    latency percentiles, and (by default) byte-identical verification
    against the synchronous answering path.
``serve-net``
    Host several tenant clusters in one process behind the TCP serving
    tier (length-prefixed frames, per-tenant routing and quotas), drive
    a demo load over loopback — optionally while SIGKILLing a lane
    worker — and verify every tenant's answers stay byte-identical.
``net-client``
    Connect to a running ``serve-net`` listener and fire a one-shot
    query, read ``tenant node qtype`` lines from stdin, or print every
    tenant's serving ledger.
``top``
    Poll a running ``serve-net`` listener's ``stats`` and ``metrics``
    wire ops and render live per-tenant and per-lane tables (request
    counters, histogram-derived p50/p99, worker compute times).
``stream``
    Hold out a fraction of a dataset's edges, stream them back in
    micro-batches through the online re-summarization layer while
    serving queries between batches, and (by default) verify that the
    final refreshed cluster is byte-identical to a from-scratch build on
    the materialized graph.
``convert``
    Translate a summary graph (or an edge list) between the v1 text
    format and the checksummed binary store format, with an optional
    post-write ``--verify`` round trip.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

import numpy as np

from repro._util import format_table
from repro.baselines import ssumm_summarize
from repro.core import BACKENDS, COST_CACHES, ENGINES, PegasusConfig, summarize
from repro.core.summary_io import save_summary
from repro.eval import smape, spearman_correlation
from repro.graph import dataset_names, load_dataset, read_edgelist, table2_rows
from repro.queries import hop_distances, php_scores, rwr_scores


def _load_graph(args) -> "tuple":
    if args.input:
        graph, labels = read_edgelist(args.input)
        return graph, f"file:{args.input}"
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    return dataset.graph, dataset.display_name


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--input", help="edge-list file to summarize")
    source.add_argument(
        "--dataset",
        choices=dataset_names(),
        default="lastfm_asia",
        help="synthetic stand-in dataset (default: lastfm_asia)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _cmd_datasets(args) -> int:
    rows = table2_rows(scale=args.scale, seed=args.seed)
    print(format_table(["Name", "# Nodes", "# Edges", "Summary"], rows))
    return 0


def _cmd_summarize(args) -> int:
    graph, name = _load_graph(args)
    targets = [int(t) for t in args.targets.split(",")] if args.targets else None
    if args.method == "ssumm":
        result = ssumm_summarize(
            graph,
            compression_ratio=args.ratio,
            t_max=args.t_max,
            seed=args.seed,
            backend=args.backend,
            cost_cache=args.cost_cache,
            engine=args.engine,
        )
    else:
        config = PegasusConfig(
            alpha=args.alpha,
            beta=args.beta,
            t_max=args.t_max,
            seed=args.seed,
            backend=args.backend,
            cost_cache=args.cost_cache,
            engine=args.engine,
        )
        result = summarize(graph, targets=targets, compression_ratio=args.ratio, config=config)
    summary = result.summary
    print(f"graph           {name}: |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print(f"summary         |S|={summary.num_supernodes}, |P|={summary.num_superedges}")
    print(f"size            {summary.size_in_bits():.0f} bits (ratio {summary.compression_ratio():.3f})")
    print(f"budget met      {result.budget_met}")
    print(f"iterations      {result.iterations}, merges {result.total_merges}")
    print(f"elapsed         {result.elapsed_seconds:.2f}s")
    if args.output:
        save_summary(summary, args.output)
        print(f"saved           {args.output}")
    return 0


def _cmd_query(args) -> int:
    graph, name = _load_graph(args)
    node = args.node
    if not 0 <= node < graph.num_nodes:
        print(f"error: node {node} out of range for {name}", file=sys.stderr)
        return 2

    def answer(source):
        if args.type == "rwr":
            return rwr_scores(source, node)
        if args.type == "hop":
            return hop_distances(source, node).astype(np.float64)
        return php_scores(source, node)

    exact = answer(graph)
    top = np.argsort(exact)[::-1][: args.top]
    rows: List[Sequence[object]] = [(int(u), f"{exact[u]:.6f}") for u in top]
    headers = ["Node", f"{args.type.upper()} (exact)"]
    if args.compare_summary:
        config = PegasusConfig(alpha=args.alpha, seed=args.seed, backend=args.backend)
        result = summarize(graph, targets=[node], compression_ratio=args.ratio, config=config)
        approx = answer(result.summary)
        rows = [(int(u), f"{exact[u]:.6f}", f"{approx[u]:.6f}") for u in top]
        headers.append(f"{args.type.upper()} (summary @ {result.summary.compression_ratio():.2f})")
        print(
            f"summary answer quality: SMAPE={smape(exact, approx):.4f}, "
            f"Spearman={spearman_correlation(exact, approx):.4f}"
        )
    print(format_table(headers, rows))
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import (  # imported lazily: heavy modules
        ablations,
        fig5_effectiveness,
        fig6_scalability,
        fig7_accuracy,
        fig8_runtime,
        fig9_alpha,
        fig10_diameter,
        fig11_beta,
        fig12_distributed,
    )

    runners = {
        "fig5": fig5_effectiveness.run,
        "fig6": fig6_scalability.run,
        "fig7": fig7_accuracy.run,
        "fig8": fig8_runtime.run,
        "fig9": fig9_alpha.run,
        "fig10": fig10_diameter.run,
        "fig11": fig11_beta.run,
        "fig12": fig12_distributed.run,
        "ablation-cost": ablations.run_cost_criterion,
        "ablation-threshold": ablations.run_threshold_schedule,
    }
    # Experiments whose sweep points fan out over the worker pool.
    parallel_runners = {"fig5", "fig6", "fig8", "fig9", "fig11", "fig12"}
    kwargs = {}
    if args.name in parallel_runners:
        # Only override when the flag was given, so the REPRO_WORKERS
        # environment default (read by ExperimentScale) stays live.
        if args.workers is not None:
            kwargs["workers"] = args.workers
    elif args.workers not in (None, 1):
        print(f"note: {args.name} runs sequentially; --workers ignored", file=sys.stderr)
    rows = runners[args.name](**kwargs)
    if not rows:
        print("no rows produced")
        return 1
    headers = list(vars(rows[0]).keys())
    table_rows = [
        [f"{v:.4f}" if isinstance(v, float) else v for v in vars(row).values()] for row in rows
    ]
    print(format_table(headers, table_rows))
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import time

    from repro.distributed import build_subgraph_cluster, build_summary_cluster
    from repro.serving import QUERY_TYPES, QueryServer

    if args.queries < 1:
        print(f"error: --queries must be >= 1, got {args.queries}", file=sys.stderr)
        return 2
    query_types = [q.strip() for q in args.types.split(",") if q.strip()]
    unknown = [q for q in query_types if q not in QUERY_TYPES]
    if not query_types or unknown:
        print(
            f"error: --types must name at least one of {', '.join(QUERY_TYPES)}"
            + (f" (unknown: {', '.join(unknown)})" if unknown else ""),
            file=sys.stderr,
        )
        return 2

    graph, name = _load_graph(args)
    budget = args.ratio * graph.size_in_bits()
    if args.source == "subgraph":
        cluster = build_subgraph_cluster(graph, args.machines, budget, seed=args.seed)
    else:
        config = PegasusConfig(seed=args.seed, backend=args.backend)
        cluster = build_summary_cluster(
            graph, args.machines, budget, config=config, seed=args.seed
        )

    rng = np.random.default_rng(args.seed)
    nodes = rng.integers(0, graph.num_nodes, size=args.queries)
    stream = [(int(node), query_types[i % len(query_types)]) for i, node in enumerate(nodes)]

    latencies: List[float] = []
    answers: List[np.ndarray] = [None] * len(stream)

    async def _client(server, index: int, node: int, query_type: str) -> None:
        started = time.perf_counter()
        answers[index] = await server.submit(node, query_type)
        latencies.append(time.perf_counter() - started)

    async def _run() -> "QueryServer":
        server = QueryServer(
            cluster,
            workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_pending=args.max_pending,
            use_shared_memory=not args.no_shared_memory,
        )
        async with server:
            await asyncio.gather(
                *(_client(server, i, node, qt) for i, (node, qt) in enumerate(stream))
            )
        return server

    started = time.perf_counter()
    server = asyncio.run(_run())
    elapsed = time.perf_counter() - started
    cluster.assert_communication_free()

    stats = server.stats
    p50, p99 = np.percentile(np.asarray(latencies) * 1000.0, [50, 99])
    print(f"cluster         {name}: m={args.machines}, budget {args.ratio:.2f} * Size(G), source={args.source}")
    print(
        f"serving         workers={args.workers}, max_batch={args.max_batch}, "
        f"max_wait={args.max_wait_ms:.1f}ms, shared_memory={server.uses_shared_memory}"
    )
    print(f"queries         {stats.answered} answered in {elapsed:.2f}s ({stats.answered / elapsed:.1f} q/s)")
    print(f"batches         {stats.batches} (mean {stats.mean_batch_size:.1f} queries/batch, max {stats.max_batch_size})")
    print(f"latency         p50 {p50:.1f}ms, p99 {p99:.1f}ms")
    if args.no_verify:
        return 0
    mismatches = sum(
        1
        for (node, qt), answer in zip(stream, answers)
        if answer is None or answer.tobytes() != cluster.answer(node, qt).tobytes()
    )
    print(f"verified        {len(stream) - mismatches}/{len(stream)} answers byte-identical to the synchronous path")
    if mismatches:
        print(f"error: {mismatches} served answer(s) diverged", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_net(args) -> int:
    import asyncio
    import logging
    import os
    import signal
    import time

    from repro.distributed import build_summary_cluster
    from repro.errors import DeadlineExceeded, Overloaded
    from repro.obs import MetricsHTTPServer, MetricsRegistry, ObsConfig, Tracer, slow_log
    from repro.resilience import BreakerConfig, HostState, RetryPolicy, recover_host
    from repro.serving import (
        QUERY_TYPES,
        NetClient,
        NetServer,
        TenantConfig,
        TenantHost,
    )

    if args.tenants < 1:
        print(f"error: --tenants must be >= 1, got {args.tenants}", file=sys.stderr)
        return 2
    if args.queries < 1:
        print(f"error: --queries must be >= 1, got {args.queries}", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos == "kill-worker" and args.workers <= 1:
        print("error: --chaos kill-worker needs --workers > 1", file=sys.stderr)
        return 2
    if args.chaos == "slow-lane":
        # Worker-side stall on machine 0's lane: the hedge/deadline
        # machinery must keep answers flowing and ledgers balanced.
        chaos = {
            "hook": "repro.serving.blueprint:chaos_delay",
            "machine": 0,
            "delay_s": 0.05,
        }
    try:
        retry_policy = RetryPolicy.parse(args.retry_policy)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    state = None if args.state_dir is None else HostState(args.state_dir)
    recovered = None
    if state is not None and state.exists and state.tenants:
        # A previous server durably saved its tenants here: recover and
        # serve them instead of rebuilding — answers must byte-match the
        # recovered clusters.
        recovered = recover_host(args.state_dir)
        clusters = {tenant: r.cluster for tenant, r in recovered.items()}
        name = f"recovered from {args.state_dir}"
        for tenant, r in recovered.items():
            suffix = "" if r.generation is None else f" (delta generation {r.generation})"
            print(f"recovered       {tenant}{suffix}")
        num_nodes = next(iter(clusters.values())).graph.num_nodes
    else:
        graph, name = _load_graph(args)
        budget = args.ratio * graph.size_in_bits()
        # Same dataset, per-tenant seeds: each tenant serves a *different*
        # summary, so the verification below also detects cross-tenant mixups.
        clusters = {
            f"tenant{i}": build_summary_cluster(
                graph,
                args.machines,
                budget,
                config=PegasusConfig(seed=args.seed + i, backend=args.backend),
                seed=args.seed + i,
            )
            for i in range(args.tenants)
        }
        num_nodes = graph.num_nodes
        if state is not None:
            for tenant, cluster in clusters.items():
                state.save_static_tenant(tenant, cluster)
            print(f"state           saved {len(clusters)} tenant(s) to {args.state_dir}")
    rng = np.random.default_rng(args.seed)
    nodes = rng.integers(0, num_nodes, size=args.queries)
    stream = [
        (tenant, int(node), QUERY_TYPES[i % len(QUERY_TYPES)])
        for i, node in enumerate(nodes)
        for tenant in clusters
    ]

    config = TenantConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        hedge_ms=args.hedge_ms,
        retry_policy=retry_policy,
    )

    # Observability: metrics are always on for this command (the
    # ``metrics`` wire op and ``repro top`` rely on them); tracing — and
    # its slow-query log — only when a sink or threshold asks for it.
    registry = MetricsRegistry()
    tracer = None
    trace_path = None
    if args.trace_dir is not None:
        os.makedirs(args.trace_dir, exist_ok=True)
        trace_path = os.path.join(args.trace_dir, f"spans-{os.getpid()}.jsonl")
    if args.trace_dir is not None or args.slow_ms is not None:
        tracer = Tracer(sink_path=trace_path, slow_ms=args.slow_ms)
        if args.slow_ms is not None and not slow_log.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter("%(levelname)s %(message)s"))
            slow_log.addHandler(handler)
            slow_log.setLevel(logging.WARNING)
    obs = ObsConfig(registry=registry, tracer=tracer)

    latencies: List[float] = []
    answers: List[np.ndarray] = [None] * len(stream)

    async def _fire(client, index: int, tenant: str, node: int, query_type: str) -> None:
        started = time.perf_counter()
        try:
            answers[index] = await client.query(tenant, node, query_type)
        except (DeadlineExceeded, Overloaded):
            # Typed shed under --deadline-ms / breaker pressure: the ledger
            # accounts for it; the demo load just moves on.
            return
        latencies.append(time.perf_counter() - started)

    async def _serve_metrics():
        if args.metrics_port is None:
            return None
        http = await MetricsHTTPServer(registry, port=args.metrics_port).start()
        print(f"metrics         http://127.0.0.1:{http.port}/metrics")
        return http

    async def _run():
        async with TenantHost(
            workers=args.workers,
            chaos=chaos,
            obs=obs,
            supervise_ms=args.supervise_ms,
            lane_breaker=BreakerConfig() if args.workers != 1 else None,
        ) as host:
            for tenant, cluster in clusters.items():
                await host.add_tenant(tenant, cluster, config=config)
            metrics_http = await _serve_metrics()
            async with NetServer(
                host,
                port=args.port,
                deadline_ms=args.deadline_ms,
                idle_timeout_ms=args.idle_timeout_ms,
                obs=obs,
            ) as net:
                print(f"listening       127.0.0.1:{net.port} ({len(clusters)} tenants)")
                client = await NetClient.connect("127.0.0.1", net.port)
                async with client:
                    midpoint = len(stream) // 2
                    first = asyncio.gather(
                        *(_fire(client, i, *q) for i, q in enumerate(stream[:midpoint]))
                    )
                    if args.chaos == "kill-worker":
                        # Kill a real lane worker mid-stream; the failover
                        # layer must absorb it without a wrong answer.
                        await asyncio.sleep(0.01)
                        pids = [p for lane in host.executor.lane_pids() for p in lane]
                        if pids:
                            os.kill(pids[0], signal.SIGKILL)
                            print(f"chaos           SIGKILL worker pid={pids[0]}")
                    elif args.chaos == "trickle-frame":
                        # Hostile peer mid-stream: announce a 16 MiB
                        # frame, then trickle single bytes.  The stall
                        # bound must close only that connection — with a
                        # typed error frame — while the real stream keeps
                        # answering.
                        import struct as _struct

                        t_reader, t_writer = await asyncio.open_connection(
                            "127.0.0.1", net.port
                        )
                        t_writer.write(_struct.pack(">I", 16 * 1024 * 1024))
                        await t_writer.drain()
                        closed = "no reply"
                        try:
                            for _ in range(5):
                                t_writer.write(b"\0")
                                await t_writer.drain()
                                await asyncio.sleep(0.05)
                            reply = await asyncio.wait_for(
                                t_reader.read(65536),
                                args.idle_timeout_ms / 1000.0 + 2.0,
                            )
                            closed = "typed error frame" if reply else "bare close"
                        except (ConnectionError, OSError, asyncio.TimeoutError):
                            closed = "connection reset"
                        t_writer.close()
                        print(f"chaos           trickle-frame closed ({closed})")
                    await first
                    await asyncio.gather(
                        *(
                            _fire(client, midpoint + i, *q)
                            for i, q in enumerate(stream[midpoint:])
                        )
                    )
                    stats = await client.stats()
                if args.serve_forever:
                    print("serving forever (ctrl-c to stop)")
                    await asyncio.Event().wait()
                if metrics_http is not None:
                    await metrics_http.stop()
                return stats

    started = time.perf_counter()
    try:
        all_stats = asyncio.run(_run())
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - started

    total_answered = sum(s["answered"] for s in all_stats.values())
    redispatches = sum(s["redispatches"] for s in all_stats.values())
    hedged = sum(s["hedged"] for s in all_stats.values())
    total_shed = sum(s.get("shed", 0) for s in all_stats.values())
    if latencies:
        p50, p99 = np.percentile(np.asarray(latencies) * 1000.0, [50, 99])
    else:
        p50 = p99 = float("nan")
    print(f"cluster         {name}: m={args.machines} per tenant, budget {args.ratio:.2f} * Size(G)")
    print(
        f"serving         tenants={len(clusters)}, workers={args.workers}, "
        f"hedge={args.hedge_ms}ms, chaos={args.chaos or 'none'}"
    )
    print(f"queries         {total_answered} answered in {elapsed:.2f}s ({total_answered / elapsed:.1f} q/s)")
    print(f"resilience      redispatches={redispatches}, hedged={hedged}, shed={total_shed}")
    print(f"latency         p50 {p50:.1f}ms, p99 {p99:.1f}ms")
    from repro.obs import quantile_from_sample, samples_for

    server_lat = samples_for(registry.snapshot(), "repro_request_latency_seconds")
    if server_lat:
        merged_count = sum(s["count"] for s in server_lat)
        worst_p99 = max(quantile_from_sample(s, 0.99) for s in server_lat) * 1000.0
        print(
            f"metrics         {merged_count} requests histogrammed, "
            f"worst-tenant server-side p99 {worst_p99:.1f}ms"
        )
    if tracer is not None and args.slow_ms is not None:
        print(f"slow queries    {tracer.slow_queries} over {args.slow_ms:.0f}ms")
    if trace_path is not None:
        print(f"trace sink      {trace_path}")
    for tenant, s in all_stats.items():
        shed = s.get("shed", 0)
        balanced = s["admitted"] == s["answered"] + s["failed"] + s["cancelled"] + shed
        print(
            f"ledger          {tenant}: admitted={s['admitted']} answered={s['answered']} "
            f"failed={s['failed']} cancelled={s['cancelled']} shed={shed} balanced={balanced}"
        )
        if not balanced:
            print(f"error: {tenant} ledger does not balance", file=sys.stderr)
            return 1
    if args.no_verify:
        return 0
    served = [(q, a) for q, a in zip(stream, answers) if a is not None]
    mismatches = sum(
        1
        for (tenant, node, qt), answer in served
        if answer.tobytes() != clusters[tenant].answer(node, qt).tobytes()
    )
    print(
        f"verified        {len(served) - mismatches}/{len(served)} answers "
        "byte-identical to each tenant's own cluster (answered queries only)"
    )
    if mismatches:
        print(f"error: {mismatches} served answer(s) diverged", file=sys.stderr)
        return 1
    return 0


def _cmd_doctor(args) -> int:
    from repro.resilience import doctor_report

    report = doctor_report(args.state_dir, verify=not args.no_verify)
    print(f"state dir       {report['state_dir']}")
    manifest = report["manifest"]
    if manifest["ok"]:
        print("manifest        ok")
    else:
        print(f"manifest        FAIL — {manifest['error']}")
    for name, tenant in report["tenants"].items():
        status = "ok" if tenant["ok"] else "BROKEN"
        print(f"tenant          {name}: {status} ({tenant.get('kind', '?')})")
        for entry in tenant["files"]:
            mark = "ok" if entry["ok"] else "FAIL"
            detail = "" if entry.get("error") is None else f" — {entry['error']}"
            print(f"  file          {entry['file']}: {mark} ({entry['bytes']} bytes){detail}")
        delta = tenant.get("delta")
        if delta is not None:
            mark = "ok" if delta["ok"] else "FAIL"
            detail = "" if delta.get("error") is None else f" — {delta['error']}"
            print(
                f"  delta log     {mark}: generation {delta['generation']}, "
                f"durable window [{delta['folded_offset']}, {delta['logged_offset']}]"
                f"{detail}"
            )
        if tenant.get("error"):
            print(f"  error         {tenant['error']}")
    verdict = "recoverable" if report["recoverable"] else "NOT recoverable"
    print(f"verdict         {verdict}")
    return 0 if report["recoverable"] else 1


def _cmd_net_client(args) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.serving import NetClient

    async def _run() -> int:
        client = await NetClient.connect(args.host, args.port)
        async with client:
            if args.stats:
                for tenant, stats in (await client.stats()).items():
                    pairs = " ".join(f"{k}={v}" for k, v in stats.items())
                    print(f"{tenant}: {pairs}")
                return 0
            if args.node is not None:
                tenant = args.tenant or client.tenants[0]
                answer = await client.query(tenant, args.node, args.type)
                top = np.argsort(answer)[::-1][: args.top]
                for u in top:
                    print(f"{int(u)}\t{answer[u]:.6f}")
                return 0
            # Line mode: one "tenant node qtype" query per stdin line.
            status = 0
            for line in sys.stdin:
                parts = line.split()
                if not parts:
                    continue
                if len(parts) != 3:
                    print(f"error: expected 'tenant node qtype', got {line.strip()!r}", file=sys.stderr)
                    status = 1
                    continue
                tenant, node_text, query_type = parts
                try:
                    answer = await client.query(tenant, int(node_text), query_type)
                except (ReproError, ValueError) as error:
                    print(f"error: {error}", file=sys.stderr)
                    status = 1
                    continue
                best = int(np.argmax(answer))
                print(f"{tenant} {node_text} {query_type}: n={answer.size} top={best} score={answer[best]:.6f}")
            return status

    try:
        return asyncio.run(_run())
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port} ({error})", file=sys.stderr)
        return 2


def _cmd_top(args) -> int:
    import asyncio

    from repro.errors import ReproError, ServingError
    from repro.obs import Histogram, quantile_from_sample, samples_for
    from repro.serving import NetClient

    if args.interval <= 0:
        print(f"error: --interval must be > 0, got {args.interval}", file=sys.stderr)
        return 2
    if args.iterations < 0:
        print(f"error: --iterations must be >= 0, got {args.iterations}", file=sys.stderr)
        return 2

    def _render(stats, snapshot) -> None:
        latency = {
            sample["labels"].get("tenant", ""): sample
            for sample in samples_for(snapshot, "repro_request_latency_seconds")
        }
        rows = []
        for tenant in sorted(stats):
            s = stats[tenant]
            sample = latency.get(tenant)
            p50 = quantile_from_sample(sample, 0.5) * 1000.0 if sample else 0.0
            p99 = quantile_from_sample(sample, 0.99) * 1000.0 if sample else 0.0
            rows.append(
                [
                    tenant,
                    s.get("admitted", 0),
                    s.get("answered", 0),
                    s.get("failed", 0),
                    s.get("inflight", 0),
                    s.get("hedged", 0),
                    s.get("hedge_wins", 0),
                    s.get("redispatches", 0),
                    f"{p50:.1f}",
                    f"{p99:.1f}",
                ]
            )
        print(
            format_table(
                [
                    "Tenant",
                    "Admitted",
                    "Answered",
                    "Failed",
                    "Inflight",
                    "Hedged",
                    "Wins",
                    "Redisp",
                    "p50 ms",
                    "p99 ms",
                ],
                rows,
            )
        )
        # Per-lane compute: merge every tenant's histogram for each lane
        # (fixed shared bounds make the merge exact).
        lanes: dict = {}
        for sample in samples_for(snapshot, "repro_worker_compute_seconds"):
            lane = sample["labels"].get("lane", "?")
            merged = lanes.get(lane)
            if merged is None:
                merged = lanes[lane] = Histogram(sample["bounds"])
            merged.merge_counts(sample["counts"], sample["sum"], sample["count"])
        if lanes:
            lane_rows = [
                [
                    lane,
                    hist.count,
                    f"{hist.mean * 1000.0:.2f}",
                    f"{hist.quantile(0.99) * 1000.0:.2f}",
                ]
                for lane, hist in sorted(lanes.items(), key=lambda kv: kv[0])
            ]
            print()
            print(format_table(["Lane", "Batches", "Mean ms", "p99 ms"], lane_rows))

    async def _run() -> int:
        client = await NetClient.connect(args.host, args.port)
        async with client:
            iteration = 0
            while True:
                if iteration:
                    await asyncio.sleep(args.interval)
                    print()
                stats = await client.stats()
                try:
                    snapshot = await client.metrics()
                except ServingError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                _render(stats, snapshot)
                iteration += 1
                if args.iterations and iteration >= args.iterations:
                    return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port} ({error})", file=sys.stderr)
        return 2


def _cmd_stream(args) -> int:
    import asyncio
    import time

    from repro.distributed import build_summary_cluster
    from repro.graph import Graph
    from repro.serving import QUERY_TYPES, QueryServer
    from repro.streaming import StreamingSummarizer

    if not 0.0 < args.stream_fraction < 1.0:
        print(
            f"error: --stream-fraction must be in (0, 1), got {args.stream_fraction}",
            file=sys.stderr,
        )
        return 2
    if args.batches < 1:
        print(f"error: --batches must be >= 1, got {args.batches}", file=sys.stderr)
        return 2

    graph, name = _load_graph(args)
    rng = np.random.default_rng(args.seed)
    edges = graph.edge_array()
    order = rng.permutation(edges.shape[0])
    held_out = max(1, int(round(args.stream_fraction * edges.shape[0])))
    base = Graph.from_edges(graph.num_nodes, edges[order[:-held_out]])
    stream = edges[order[-held_out:]]
    budget = args.ratio * base.size_in_bits()

    config = PegasusConfig(seed=args.seed, backend=args.backend)
    summarizer = StreamingSummarizer(
        base,
        args.machines,
        budget,
        config=config,
        seed=args.seed,
        drift_threshold=args.drift_threshold,
        workers=args.workers,
    )
    print(f"graph           {name}: |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print(
        f"stream          base |E|={base.num_edges}, streaming {stream.shape[0]} edges "
        f"in {args.batches} batches (m={args.machines}, drift threshold {args.drift_threshold})"
    )

    batches = np.array_split(stream, args.batches)
    query_nodes = rng.integers(0, graph.num_nodes, size=args.queries_per_batch * args.batches)
    served = 0
    ingest_seconds = 0.0
    refresh_events = 0

    async def _run() -> None:
        nonlocal served, ingest_seconds, refresh_events
        async with QueryServer(
            summarizer.cluster, workers=args.workers, max_batch=8, max_wait_ms=1.0
        ) as server:
            summarizer.attach(server)
            try:
                for index, batch in enumerate(batches):
                    lo = index * args.queries_per_batch
                    queries = [
                        (int(node), QUERY_TYPES[i % len(QUERY_TYPES)])
                        for i, node in enumerate(query_nodes[lo : lo + args.queries_per_batch])
                    ]
                    answers = await asyncio.gather(
                        *(server.submit(node, qt) for node, qt in queries)
                    )
                    served += len(answers)
                    report = summarizer.ingest(batch)
                    ingest_seconds += report.seconds
                    refresh_events += len(report.refreshed)
            finally:
                summarizer.detach()

    started = time.perf_counter()
    asyncio.run(_run())
    elapsed = time.perf_counter() - started
    summarizer.cluster.assert_communication_free()

    pending_rate = stream.shape[0] / ingest_seconds if ingest_seconds > 0 else float("inf")
    print(
        f"ingested        {summarizer.delta.num_pending} novel edges "
        f"({pending_rate:.0f} edges/s ingest+maintenance), {served} queries served in-stream"
    )
    print(
        f"refreshes       {refresh_events} machine re-summarizations "
        f"(per machine: {summarizer.refresh_counts()})"
    )
    print(f"elapsed         {elapsed:.2f}s")
    if args.no_verify:
        return 0
    summarizer.refresh()  # bring every machine to the final prefix
    materialized = summarizer.delta.materialize()
    reference = build_summary_cluster(
        materialized,
        args.machines,
        budget,
        assignment=summarizer.assignment,
        config=config,
    )
    probes = rng.integers(0, graph.num_nodes, size=max(8, args.queries_per_batch))
    mismatches = sum(
        1
        for i, node in enumerate(probes)
        for qt in [QUERY_TYPES[i % len(QUERY_TYPES)]]
        if summarizer.cluster.answer(int(node), qt).tobytes()
        != reference.answer(int(node), qt).tobytes()
    )
    print(
        f"verified        {probes.size - mismatches}/{probes.size} refreshed answers "
        "byte-identical to a from-scratch cluster on the materialized graph"
    )
    if mismatches:
        print(f"error: {mismatches} streamed answer(s) diverged", file=sys.stderr)
        return 1
    return 0


def _summaries_equivalent(a, b) -> bool:
    """Structural equality of two summaries: partition + superedge columns."""
    lo_a, hi_a, w_a = a.superedge_arrays()
    lo_b, hi_b, w_b = b.superedge_arrays()
    return (
        a.num_nodes == b.num_nodes
        and a.is_weighted == b.is_weighted
        and np.array_equal(np.asarray(a.supernode_of), np.asarray(b.supernode_of))
        and np.array_equal(lo_a, lo_b)
        and np.array_equal(hi_a, hi_b)
        and (w_a is None) == (w_b is None)
        and (w_a is None or np.array_equal(w_a, w_b))
    )


def _cmd_convert(args) -> int:
    from repro.core.summary_io import load_summary
    from repro.graph import write_edgelist
    from repro.store import (
        MAGIC,
        load_graph,
        load_summary_binary,
        save_graph,
        save_summary_binary,
    )

    try:
        with open(args.src, "rb") as handle:
            src_is_binary = handle.read(len(MAGIC)) == MAGIC
    except OSError as exc:
        print(f"error: cannot read {args.src}: {exc}", file=sys.stderr)
        return 2
    direction = args.to or ("text" if src_is_binary else "binary")
    if (direction == "binary") == src_is_binary:
        print(
            f"error: {args.src} is already in the {direction} format",
            file=sys.stderr,
        )
        return 2

    if args.kind == "graph":
        if direction == "binary":
            graph, _labels = read_edgelist(args.src)
            save_graph(graph, args.dst)
        else:
            graph = load_graph(args.src)
            write_edgelist(graph, args.dst)
        print(
            f"converted       {args.src} -> {args.dst} "
            f"(graph, {direction}; |V|={graph.num_nodes}, |E|={graph.num_edges})"
        )
        if args.verify:
            if direction == "binary":
                reloaded = load_graph(args.dst)
            else:
                reloaded, _labels = read_edgelist(args.dst)
            same = (
                reloaded.num_nodes == graph.num_nodes
                and reloaded.edge_array().tobytes() == graph.edge_array().tobytes()
            )
            print(f"verified        round trip {'OK' if same else 'FAILED'}")
            if not same:
                return 1
        return 0

    if direction == "binary":
        graph, name = _load_graph(args)
        summary = load_summary(args.src, graph, backend="flat")
        save_summary_binary(summary, args.dst, include_graph=not args.no_embed_graph)
    else:
        summary = load_summary_binary(args.src)
        save_summary(summary, args.dst)
    print(
        f"converted       {args.src} -> {args.dst} "
        f"(summary, {direction}; |S|={summary.num_supernodes}, |P|={summary.num_superedges})"
    )
    if args.verify:
        if direction == "binary":
            reloaded = load_summary_binary(args.dst)
        else:
            graph = summary.graph
            if graph is None:
                graph, _name = _load_graph(args)
            reloaded = load_summary(args.dst, graph, backend="flat")
        same = _summaries_equivalent(summary, reloaded)
        print(f"verified        round trip {'OK' if same else 'FAILED'}")
        if not same:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pegasus",
        description="Personalized graph summarization (PeGaSus, ICDE 2022) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print the Table II stand-ins")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=0)
    datasets.set_defaults(func=_cmd_datasets)

    summarize_cmd = sub.add_parser("summarize", help="summarize a graph with PeGaSus")
    _add_graph_arguments(summarize_cmd)
    summarize_cmd.add_argument("--method", choices=("pegasus", "ssumm"), default="pegasus")
    summarize_cmd.add_argument("--ratio", type=float, default=0.5, help="compression ratio budget")
    summarize_cmd.add_argument("--targets", help="comma-separated target nodes (default: all)")
    summarize_cmd.add_argument("--alpha", type=float, default=1.25)
    summarize_cmd.add_argument("--beta", type=float, default=0.1)
    summarize_cmd.add_argument("--t-max", type=int, default=20)
    summarize_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="flat",
        help="summary-graph storage backend (identical output either way)",
    )
    summarize_cmd.add_argument(
        "--cost-cache",
        choices=COST_CACHES,
        default="incremental",
        help="cost-model strategy; 'rebuild' is the pre-cache reference path",
    )
    summarize_cmd.add_argument(
        "--engine",
        choices=ENGINES,
        default="batch",
        help="merge-evaluation engine; 'batch' vectorizes attempt windows "
        "(byte-identical summaries either way)",
    )
    summarize_cmd.add_argument("--output", help="write the summary graph to this file")
    summarize_cmd.set_defaults(func=_cmd_summarize)

    query_cmd = sub.add_parser("query", help="answer a node-similarity query")
    _add_graph_arguments(query_cmd)
    query_cmd.add_argument("--type", choices=("rwr", "hop", "php"), default="rwr")
    query_cmd.add_argument("--node", type=int, default=0, help="query node")
    query_cmd.add_argument("--top", type=int, default=10, help="rows to print")
    query_cmd.add_argument(
        "--compare-summary",
        action="store_true",
        help="also answer from a summary personalized to the query node",
    )
    query_cmd.add_argument("--ratio", type=float, default=0.5)
    query_cmd.add_argument("--alpha", type=float, default=1.25)
    query_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="flat",
        help="summary-graph storage backend for --compare-summary",
    )
    query_cmd.set_defaults(func=_cmd_query)

    experiment_cmd = sub.add_parser("experiment", help="run one paper experiment")
    experiment_cmd.add_argument(
        "name",
        choices=(
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "ablation-cost",
            "ablation-threshold",
        ),
    )
    experiment_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for the experiment sweep "
        "(1 = sequential, 0 = all cores; identical rows at any count; "
        "default: REPRO_WORKERS or 1)",
    )
    experiment_cmd.set_defaults(func=_cmd_experiment)

    serve_cmd = sub.add_parser(
        "serve", help="serve a concurrent query stream through the async front end"
    )
    _add_graph_arguments(serve_cmd)
    serve_cmd.add_argument("--machines", type=int, default=2, help="number of simulated machines m")
    serve_cmd.add_argument(
        "--ratio", type=float, default=0.5, help="per-machine budget as a fraction of Size(G)"
    )
    serve_cmd.add_argument(
        "--source",
        choices=("summary", "subgraph"),
        default="summary",
        help="what each machine holds: a personalized summary or a budgeted subgraph",
    )
    serve_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="flat",
        help="summary storage backend for --source summary",
    )
    serve_cmd.add_argument("--queries", type=int, default=64, help="number of queries to fire")
    serve_cmd.add_argument(
        "--types",
        default="rwr,hop,php",
        help="comma-separated query types cycled through the stream",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serving-pool size (1 = inline reference path, 0 = all cores)",
    )
    serve_cmd.add_argument("--max-batch", type=int, default=8, help="flush a machine batch at this size")
    serve_cmd.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch arrival window in milliseconds"
    )
    serve_cmd.add_argument(
        "--max-pending", type=int, default=1024, help="admission-queue bound (backpressure beyond it)"
    )
    serve_cmd.add_argument(
        "--no-shared-memory",
        action="store_true",
        help="ship machine arrays by pickle instead of multiprocessing.shared_memory",
    )
    serve_cmd.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the byte-identical comparison against the synchronous path",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    serve_net_cmd = sub.add_parser(
        "serve-net",
        help="host several tenants behind the TCP serving tier and drive a demo load",
    )
    _add_graph_arguments(serve_net_cmd)
    serve_net_cmd.add_argument(
        "--tenants", type=int, default=2, help="number of tenants hosted in the process"
    )
    serve_net_cmd.add_argument(
        "--machines", type=int, default=2, help="simulated machines m per tenant cluster"
    )
    serve_net_cmd.add_argument(
        "--ratio", type=float, default=0.5, help="per-machine budget as a fraction of Size(G)"
    )
    serve_net_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="flat",
        help="summary storage backend for the tenant clusters",
    )
    serve_net_cmd.add_argument(
        "--queries", type=int, default=32, help="queries fired per tenant over the wire"
    )
    serve_net_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="lane count of the shared executor (1 = inline reference path)",
    )
    serve_net_cmd.add_argument(
        "--port", type=int, default=0, help="TCP port to listen on (0 = ephemeral)"
    )
    serve_net_cmd.add_argument(
        "--max-batch", type=int, default=8, help="flush a machine batch at this size"
    )
    serve_net_cmd.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch arrival window in milliseconds"
    )
    serve_net_cmd.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        help="duplicate a straggling batch onto the next lane after this deadline",
    )
    serve_net_cmd.add_argument(
        "--chaos",
        choices=("kill-worker", "slow-lane", "trickle-frame"),
        default=None,
        help=(
            "inject a fault mid-stream: kill-worker SIGKILLs a lane worker, "
            "slow-lane stalls machine 0's batches, trickle-frame connects a "
            "hostile slow-loris peer"
        ),
    )
    serve_net_cmd.add_argument(
        "--state-dir",
        default=None,
        help=(
            "persist tenant state under this directory (recover from it when "
            "it already holds tenants)"
        ),
    )
    serve_net_cmd.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="server-side deadline budget minted for every admitted query",
    )
    serve_net_cmd.add_argument(
        "--retry-policy",
        default=None,
        help=(
            "batch redispatch policy, e.g. 'attempts=4,base_ms=5,cap_ms=500,"
            "jitter=0.3' ('none' disables retries)"
        ),
    )
    serve_net_cmd.add_argument(
        "--idle-timeout-ms",
        type=float,
        default=30000.0,
        help="close a connection stalled mid-frame for this long (slow-loris bound)",
    )
    serve_net_cmd.add_argument(
        "--supervise-ms",
        type=float,
        default=100.0,
        help="lane supervisor heartbeat interval (respawns dead lane workers)",
    )
    serve_net_cmd.add_argument(
        "--serve-forever",
        action="store_true",
        help="keep the listener up after the demo load (ctrl-c to stop)",
    )
    serve_net_cmd.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-tenant byte-identical comparison against cluster.answer",
    )
    serve_net_cmd.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also expose /metrics (Prometheus text) over HTTP on this port (0 = ephemeral)",
    )
    serve_net_cmd.add_argument(
        "--trace-dir",
        default=None,
        help="write request trace spans as JSONL under this directory (enables tracing)",
    )
    serve_net_cmd.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log a structured slow-query line for requests slower than this (enables tracing)",
    )
    serve_net_cmd.set_defaults(func=_cmd_serve_net)

    doctor_cmd = sub.add_parser(
        "doctor",
        help="checksum a --state-dir and report recoverability without starting a server",
    )
    doctor_cmd.add_argument("state_dir", help="state directory written by serve-net --state-dir")
    doctor_cmd.add_argument(
        "--no-verify",
        action="store_true",
        help="skip checksum verification (structure checks only)",
    )
    doctor_cmd.set_defaults(func=_cmd_doctor)

    top_cmd = sub.add_parser(
        "top",
        help="live per-tenant / per-lane tables from a running serve-net listener",
    )
    top_cmd.add_argument("--host", default="127.0.0.1", help="server host")
    top_cmd.add_argument("--port", type=int, required=True, help="server port")
    top_cmd.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top_cmd.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="refresh this many times then exit (0 = until ctrl-c)",
    )
    top_cmd.set_defaults(func=_cmd_top)

    net_client_cmd = sub.add_parser(
        "net-client",
        help="query a running serve-net listener (one-shot, line mode, or --stats)",
    )
    net_client_cmd.add_argument("--host", default="127.0.0.1", help="server host")
    net_client_cmd.add_argument("--port", type=int, required=True, help="server port")
    net_client_cmd.add_argument(
        "--tenant", default=None, help="tenant for --node (default: first advertised)"
    )
    net_client_cmd.add_argument(
        "--node", type=int, default=None, help="one-shot: query this node and print the top scores"
    )
    net_client_cmd.add_argument(
        "--type", default="rwr", help="query type for --node (rwr, hop, or php)"
    )
    net_client_cmd.add_argument(
        "--top", type=int, default=5, help="rows printed for a one-shot query"
    )
    net_client_cmd.add_argument(
        "--stats",
        action="store_true",
        help="print every tenant's serving ledger instead of querying",
    )
    net_client_cmd.set_defaults(func=_cmd_net_client)

    stream_cmd = sub.add_parser(
        "stream",
        help="stream held-out edges through online re-summarization while serving",
    )
    _add_graph_arguments(stream_cmd)
    stream_cmd.add_argument("--machines", type=int, default=2, help="number of simulated machines m")
    stream_cmd.add_argument(
        "--ratio", type=float, default=0.5, help="per-machine budget as a fraction of Size(G₀)"
    )
    stream_cmd.add_argument(
        "--stream-fraction",
        type=float,
        default=0.25,
        help="fraction of the dataset's edges held out and streamed back in",
    )
    stream_cmd.add_argument("--batches", type=int, default=8, help="number of ingest micro-batches")
    stream_cmd.add_argument(
        "--drift-threshold",
        type=float,
        default=0.1,
        help="re-summarize a machine when its residual correction bits exceed "
        "this fraction of the budget (0 = refresh every batch)",
    )
    stream_cmd.add_argument(
        "--queries-per-batch",
        type=int,
        default=6,
        help="queries served between consecutive ingest batches",
    )
    stream_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pool size for serving and refresh fan-outs (identical output at any count)",
    )
    stream_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="flat",
        help="summary storage backend for the per-machine summaries",
    )
    stream_cmd.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the final byte-identical comparison against a from-scratch cluster",
    )
    stream_cmd.set_defaults(func=_cmd_stream)

    convert_cmd = sub.add_parser(
        "convert",
        help="convert a summary (or edge list) between the text and binary store formats",
    )
    _add_graph_arguments(convert_cmd)
    convert_cmd.add_argument("src", help="source file (format auto-detected from its bytes)")
    convert_cmd.add_argument("dst", help="destination file")
    convert_cmd.add_argument(
        "--kind",
        choices=("summary", "graph"),
        default="summary",
        help="what the source file holds (default: summary)",
    )
    convert_cmd.add_argument(
        "--to",
        choices=("binary", "text"),
        default=None,
        help="target format (default: the opposite of the source's format)",
    )
    convert_cmd.add_argument(
        "--no-embed-graph",
        action="store_true",
        help="text→binary summaries: do not embed the input graph's CSR in the store",
    )
    convert_cmd.add_argument(
        "--verify",
        action="store_true",
        help="reload the written file and check it is equivalent to the source",
    )
    convert_cmd.set_defaults(func=_cmd_convert)
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point for ``repro-pegasus`` and ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
