"""k-Grass — GraSS with the SamplePairs strategy (LeFevre & Terzi, SDM'10).

GraSS summarizes a graph into a target number of supernodes by greedy
agglomerative merging under the expected-adjacency (density) L1 error.
The exact algorithm scores all pairs; the scalable *SamplePairs* variant
the paper configures (``c = 1.0``, Sect. V-A) samples ``c · |S|`` pairs per
step and merges the sampled pair with the smallest error increase.

The output is a weighted summary graph: every block with at least one edge
keeps a superedge carrying the block's edge count (decoded as a density),
which is why GraSS summaries are dense and slow to query (Fig. 8).
"""

from __future__ import annotations

from repro._util import ensure_rng
from repro.baselines._blocks import PartitionState, resolve_supernode_budget, sample_distinct_pairs
from repro.core.summary import SummaryGraph
from repro.graph.graph import Graph


def kgrass_summarize(
    graph: Graph,
    *,
    num_supernodes: "int | None" = None,
    supernode_fraction: "float | None" = None,
    sample_factor: float = 1.0,
    seed: "int | None" = None,
) -> SummaryGraph:
    """Summarize *graph* into a supernode budget with GraSS/SamplePairs.

    Parameters
    ----------
    graph:
        Input graph.
    num_supernodes, supernode_fraction:
        Target ``|S|``, absolute or as a fraction of ``|V|`` (exactly one).
    sample_factor:
        The SamplePairs constant ``c`` (paper configuration: 1.0).
    seed:
        RNG seed.
    """
    if sample_factor <= 0:
        raise ValueError(f"sample_factor must be positive, got {sample_factor}")
    target = resolve_supernode_budget(graph, num_supernodes, supernode_fraction)
    rng = ensure_rng(seed)
    state = PartitionState(graph)
    while state.num_supernodes > target:
        ids = state.supernodes()
        count = max(int(round(sample_factor * len(ids))), 1)
        pairs = sample_distinct_pairs(ids, count, rng)
        if not pairs:
            break
        best_pair = None
        best_delta = None
        seen = set()
        for a, b in pairs:
            key = (a, b) if a < b else (b, a)
            if key in seen:
                continue
            seen.add(key)
            delta = state.merge_error_delta(a, b)
            if best_delta is None or delta < best_delta:
                best_delta = delta
                best_pair = key
        state.merge(*best_pair)
    return state.to_summary(weighted=True, superedge_rule="all_blocks")
