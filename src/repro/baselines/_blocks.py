"""Shared machinery for the agglomerative baselines (k-Grass, SAAGs, random).

These algorithms merge supernodes greedily while tracking the *L1
reconstruction error under density (expected-adjacency) encoding*: a block
``{A, B}`` with ``e`` edges out of ``p`` possible pairs is decoded as the
constant ``e / p``, contributing

    ``err(e, p) = 2 e (p − e) / p``

to the L1 error (the optimum over constant decodings, used by GraSS).
:class:`PartitionState` maintains the evolving partition and answers merge
deltas in ``O(deg(A) + deg(B))`` like the main cost model.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def density_error(edges: float, pairs: float) -> float:
    """L1 error of decoding a block by its density: ``2 e (p − e) / p``."""
    if pairs <= 0:
        return 0.0
    return 2.0 * edges * (pairs - edges) / pairs


class PartitionState:
    """An evolving node partition with block edge counts (uniform weights)."""

    def __init__(self, graph: Graph):
        n = graph.num_nodes
        self.graph = graph
        self.assignment: List[int] = list(range(n))
        self.members: Dict[int, List[int]] = {u: [u] for u in range(n)}
        indptr, indices = graph.indptr, graph.indices
        index_list = indices.tolist()
        self._adj: List[List[int]] = [index_list[indptr[u] : indptr[u + 1]] for u in range(n)]

    @property
    def num_supernodes(self) -> int:
        """Current number of supernodes."""
        return len(self.members)

    def supernodes(self) -> List[int]:
        """Live supernode ids."""
        return list(self.members)

    def block_counts(self, supernode: int) -> Dict[int, float]:
        """Edge counts from *supernode* to every adjacent supernode.

        The self entry counts each within-block edge once.
        """
        sn = self.assignment
        acc: Dict[int, float] = {}
        get = acc.get
        for u in self.members[supernode]:
            for v in self._adj[u]:
                x = sn[v]
                acc[x] = get(x, 0.0) + 1.0
        if supernode in acc:
            acc[supernode] *= 0.5
        return acc

    def _side_error(self, supernode: int, counts: Dict[int, float]) -> float:
        size_of = self.members
        size_a = len(size_of[supernode])
        error = 0.0
        for x, edges in counts.items():
            if x == supernode:
                pairs = size_a * (size_a - 1) / 2.0
            else:
                pairs = size_a * len(size_of[x])
            error += density_error(edges, pairs)
        return error

    def merge_error_delta(self, a: int, b: int) -> float:
        """Increase in density-encoded L1 error if *a* and *b* merge.

        Lower is better; 0 means the merge is lossless (identical
        connectivity), mirroring GraSS's merge score.
        """
        if a == b or a not in self.members or b not in self.members:
            raise GraphFormatError(f"cannot evaluate merge of {a} and {b}")
        counts_a = self.block_counts(a)
        counts_b = self.block_counts(b)
        before = self._side_error(a, counts_a) + self._side_error(b, counts_b)
        # Correct the double-counted {a, b} cross block.
        size_a, size_b = len(self.members[a]), len(self.members[b])
        cross = counts_a.get(b, 0.0)
        before -= density_error(cross, size_a * size_b)

        merged: Dict[int, float] = {}
        get = merged.get
        for counts in (counts_a, counts_b):
            for x, edges in counts.items():
                if x != a and x != b:
                    merged[x] = get(x, 0.0) + edges
        self_edges = counts_a.get(a, 0.0) + counts_b.get(b, 0.0) + cross
        size_m = size_a + size_b
        after = density_error(self_edges, size_m * (size_m - 1) / 2.0)
        for x, edges in merged.items():
            after += density_error(edges, size_m * len(self.members[x]))
        return after - before

    def merge(self, a: int, b: int) -> int:
        """Merge supernodes *a* and *b*; the union keeps id *a*."""
        if a == b or a not in self.members or b not in self.members:
            raise GraphFormatError(f"cannot merge {a} and {b}")
        moved = self.members.pop(b)
        self.members[a].extend(moved)
        for u in moved:
            self.assignment[u] = a
        return a

    def to_summary(self, *, weighted: bool = True, superedge_rule: str = "all_blocks") -> SummaryGraph:
        """Materialize the partition as a :class:`SummaryGraph`."""
        return SummaryGraph.from_partition(
            self.graph,
            np.asarray(self.assignment, dtype=np.int64),
            weighted=weighted,
            superedge_rule=superedge_rule,
        )


def sample_distinct_pairs(ids: List[int], count: int, rng: np.random.Generator) -> List[tuple]:
    """*count* random pairs of distinct entries of *ids* (may repeat pairs)."""
    size = len(ids)
    if size < 2 or count <= 0:
        return []
    first = rng.integers(0, size, size=count)
    second = rng.integers(0, size - 1, size=count)
    second = second + (second >= first)
    return [(ids[i], ids[j]) for i, j in zip(first.tolist(), second.tolist())]


def resolve_supernode_budget(graph: Graph, num_supernodes: "int | None", fraction: "float | None") -> int:
    """Resolve a supernode budget given either an absolute count or a fraction."""
    if (num_supernodes is None) == (fraction is None):
        raise GraphFormatError("specify exactly one of num_supernodes or fraction")
    if num_supernodes is None:
        if not 0.0 < fraction <= 1.0:
            raise GraphFormatError(f"fraction must be in (0, 1], got {fraction}")
        num_supernodes = max(int(round(fraction * graph.num_nodes)), 1)
    if num_supernodes < 1:
        raise GraphFormatError(f"num_supernodes must be >= 1, got {num_supernodes}")
    return min(num_supernodes, graph.num_nodes)
