"""SAAGs — "Scalable Approximation Algorithm for Graph Summarization"
(Beg et al., PAKDD 2018).

SAAGs accelerates agglomerative summarization two ways, both reproduced
here with the configuration quoted in Sect. V-A of the PeGaSus paper:

* per merge step it scores only ``log n`` sampled candidate pairs;
* neighbor-set overlaps are estimated from per-supernode **count-min
  sketches** (width ``w = 50``, depth ``d = 2``) instead of exact sets, so
  a merge costs sketch-width time rather than degree time.

Pairs are scored by estimated Jaccard similarity of neighbor multisets
(higher is better); the output is the usual dense weighted summary, which
is what makes SAAGs outputs slow to query in Fig. 8 of the paper.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro._util import ensure_rng
from repro.baselines._blocks import PartitionState, resolve_supernode_budget, sample_distinct_pairs
from repro.core.summary import SummaryGraph
from repro.graph.graph import Graph


class CountMinSketch:
    """A tiny count-min sketch over node ids.

    Uses universal hashing ``(a * x + b) mod p mod w`` per row; supports
    merging (cell-wise addition) and pairwise intersection estimation
    (cell-wise minimum, read off as the row-wise minimum of dot products).
    """

    _PRIME = (1 << 31) - 1

    def __init__(self, width: int, depth: int, rng: np.random.Generator):
        self.width = int(width)
        self.depth = int(depth)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self._a = rng.integers(1, self._PRIME, size=depth, dtype=np.int64)
        self._b = rng.integers(0, self._PRIME, size=depth, dtype=np.int64)

    def _cells(self, item: int) -> np.ndarray:
        return ((self._a * item + self._b) % self._PRIME) % self.width

    def add(self, item: int, count: float = 1.0) -> None:
        """Record *count* occurrences of *item*."""
        self.table[np.arange(self.depth), self._cells(item)] += count

    def add_many(self, items: "np.ndarray | list") -> None:
        """Record one occurrence of each item (vectorized)."""
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        for row in range(self.depth):
            cells = ((self._a[row] * arr + self._b[row]) % self._PRIME) % self.width
            np.add.at(self.table[row], cells, 1.0)

    def merge(self, other: "CountMinSketch") -> None:
        """Absorb *other* (the sketch of a merged partner)."""
        self.table += other.table

    @property
    def total(self) -> float:
        """Total recorded count (exact: every row sums all additions)."""
        return float(self.table[0].sum())

    def intersection_estimate(self, other: "CountMinSketch") -> float:
        """Estimated overlap of the two recorded multisets.

        Row-wise ``Σ_j min(a_j, b_j)`` is an overestimate per row; taking
        the minimum across rows tightens it (the count-min principle).
        """
        per_row = np.minimum(self.table, other.table).sum(axis=1)
        return float(per_row.min())


def saags_summarize(
    graph: Graph,
    *,
    num_supernodes: "int | None" = None,
    supernode_fraction: "float | None" = None,
    sketch_width: int = 50,
    sketch_depth: int = 2,
    seed: "int | None" = None,
) -> SummaryGraph:
    """Summarize *graph* into a supernode budget with SAAGs.

    Parameters
    ----------
    graph:
        Input graph.
    num_supernodes, supernode_fraction:
        Target ``|S|``, absolute or as a fraction of ``|V|`` (exactly one).
    sketch_width, sketch_depth:
        Count-min dimensions (paper configuration: ``w = 50``, ``d = 2``).
    seed:
        RNG seed (shared by hashing and pair sampling).
    """
    target = resolve_supernode_budget(graph, num_supernodes, supernode_fraction)
    rng = ensure_rng(seed)
    state = PartitionState(graph)
    n = graph.num_nodes

    # One sketch per supernode, all sharing hash functions so cell-wise
    # minima are meaningful.
    shared_hash_rng = ensure_rng(int(rng.integers(0, 2**31)))
    prototype = CountMinSketch(sketch_width, sketch_depth, shared_hash_rng)
    sketches: Dict[int, CountMinSketch] = {}
    for u in range(n):
        sketch = CountMinSketch(sketch_width, sketch_depth, shared_hash_rng)
        sketch._a, sketch._b = prototype._a, prototype._b
        sketch.add_many(graph.neighbors(u))
        sketches[u] = sketch

    sample_size = max(int(np.ceil(np.log2(max(n, 2)))), 1)
    while state.num_supernodes > target:
        ids = state.supernodes()
        pairs = sample_distinct_pairs(ids, sample_size, rng)
        if not pairs:
            break
        best_pair = None
        best_score = None
        for a, b in pairs:
            sk_a, sk_b = sketches[a], sketches[b]
            inter = sk_a.intersection_estimate(sk_b)
            union = max(sk_a.total + sk_b.total - inter, 1.0)
            score = inter / union
            if best_score is None or score > best_score:
                best_score = score
                best_pair = (a, b)
        a, b = best_pair
        union_id = state.merge(a, b)
        dead = b if union_id == a else a
        sketches[union_id].merge(sketches[dead])
        del sketches[dead]
    return state.to_summary(weighted=True, superedge_rule="all_blocks")
