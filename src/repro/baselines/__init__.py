"""Non-personalized summarization baselines the paper compares against.

* :func:`repro.baselines.ssumm.ssumm_summarize` — SSumM (KDD'20), the
  state of the art PeGaSus generalizes; shares the PeGaSus machinery with
  uniform weights and a fixed threshold schedule (Sect. III-G);
* :func:`repro.baselines.kgrass.kgrass_summarize` — GraSS (SDM'10) with
  the SamplePairs strategy;
* :func:`repro.baselines.s2l.s2l_summarize` — S2L (DMKD'17), clustering
  adjacency rows under the L1 metric;
* :func:`repro.baselines.saags.saags_summarize` — SAAGs (PAKDD'18), a
  sampled greedy with count-min-sketch similarity estimates;
* :func:`repro.baselines.random_merge.random_merge_summarize` — a sanity
  floor that merges uniformly random pairs.

SSumM emits an *unweighted* summary under the same bit budget as PeGaSus;
the other three take a supernode budget and emit *weighted* summaries,
mirroring the configurations in Sect. V-A of the paper.
"""

from repro.baselines.ssumm import ssumm_summarize
from repro.baselines.kgrass import kgrass_summarize
from repro.baselines.s2l import s2l_summarize
from repro.baselines.saags import saags_summarize
from repro.baselines.random_merge import random_merge_summarize

__all__ = [
    "ssumm_summarize",
    "kgrass_summarize",
    "s2l_summarize",
    "saags_summarize",
    "random_merge_summarize",
]
