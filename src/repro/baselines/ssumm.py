"""SSumM (Lee et al., KDD 2020) — the non-personalized state of the art.

PeGaSus is "largely based on SSumM" (Sect. III-G); the differences the
paper lists are (a) personalized vs plain reconstruction error, (b) the
adaptive vs fixed threshold schedule, and (c) minor encoding details (we
follow PeGaSus's corrections-only encoding for both, as the paper itself
does for simplicity).  SSumM is therefore expressed here as the shared
driver with uniform weights (``W ≡ 1``) and the fixed schedule
``θ(t) = 1/(1+t)``.
"""

from __future__ import annotations

from repro.core.pegasus import PegasusConfig, PegasusResult, summarize
from repro.graph.graph import Graph


def ssumm_summarize(
    graph: Graph,
    *,
    budget_bits: "float | None" = None,
    compression_ratio: "float | None" = None,
    t_max: int = 20,
    max_group_size: int = 500,
    recursive_splits: int = 10,
    seed: "int | None" = None,
    backend: str = "flat",
    cost_cache: str = "incremental",
    engine: str = "batch",
) -> PegasusResult:
    """Summarize *graph* with SSumM under a bit budget.

    Parameters mirror :func:`repro.core.pegasus.summarize`; the target set,
    personalization degree, and threshold policy are fixed to SSumM's
    choices (``T = V``, ``α = 1``, ``θ(t) = 1/(1+t)``).  *backend*,
    *cost_cache*, and *engine* select the shared engine's storage backend,
    cost-model strategy, and merge-evaluation engine, exactly as for
    PeGaSus.
    """
    config = PegasusConfig(
        alpha=1.0,
        t_max=t_max,
        max_group_size=max_group_size,
        recursive_splits=recursive_splits,
        threshold="fixed",
        seed=seed,
        backend=backend,
        cost_cache=cost_cache,
        engine=engine,
    )
    return summarize(
        graph,
        budget_bits=budget_bits,
        compression_ratio=compression_ratio,
        config=config,
    )
