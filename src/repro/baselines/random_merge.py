"""Random-merge baseline: a sanity floor for summarization quality.

Merges uniformly random supernode pairs until the budget is met.  Any
published summarizer should beat this by a wide margin; tests and benches
use it to confirm that quality metrics actually discriminate.
"""

from __future__ import annotations

from repro._util import ensure_rng
from repro.baselines._blocks import PartitionState, resolve_supernode_budget
from repro.core.summary import SummaryGraph
from repro.graph.graph import Graph


def random_merge_summarize(
    graph: Graph,
    *,
    num_supernodes: "int | None" = None,
    supernode_fraction: "float | None" = None,
    seed: "int | None" = None,
) -> SummaryGraph:
    """Merge random supernode pairs down to the target count."""
    target = resolve_supernode_budget(graph, num_supernodes, supernode_fraction)
    rng = ensure_rng(seed)
    state = PartitionState(graph)
    while state.num_supernodes > target:
        ids = state.supernodes()
        i = int(rng.integers(0, len(ids)))
        j = int(rng.integers(0, len(ids) - 1))
        j = j + (j >= i)
        state.merge(ids[i], ids[j])
    return state.to_summary(weighted=True, superedge_rule="all_blocks")
