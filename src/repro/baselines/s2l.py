"""S2L — "Graph Summarization with Quality Guarantees" (Riondato et al.).

S2L casts summarization as geometric clustering: each node is its
adjacency-matrix row, and a summary with ``k`` supernodes is a ``k``-
clustering of those points; the reconstruction error under the density
decoding equals the clustering cost.  The paper's configuration
(Sect. V-A) uses the L1 error without dimensionality reduction, so this
implementation runs Lloyd-style k-median iterations directly on the sparse
binary rows:

* a cluster centroid is the (sparse) mean of its member rows;
* the L1 distance from node ``u`` to centroid ``c`` expands to
  ``deg(u) + Σ_j c_j − 2 Σ_{j ∈ N_u} c_j``, computable in ``O(deg(u))``
  per cluster via the centroid's dictionary.

S2L is the slowest baseline by far (the paper reports out-of-time /
out-of-memory for it on the larger datasets); keep inputs small.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro._util import ensure_rng
from repro.baselines._blocks import resolve_supernode_budget
from repro.core.summary import SummaryGraph
from repro.graph.graph import Graph


def _assign(
    adjacency: List[List[int]],
    centroid_maps: List[Dict[int, float]],
    centroid_totals: List[float],
) -> np.ndarray:
    """Assign each node to the L1-nearest centroid."""
    n = len(adjacency)
    assignment = np.zeros(n, dtype=np.int64)
    for u in range(n):
        neighbors = adjacency[u]
        deg = float(len(neighbors))
        best_cluster = 0
        best_dist = None
        for c, (cmap, total) in enumerate(zip(centroid_maps, centroid_totals)):
            overlap = 0.0
            get = cmap.get
            for v in neighbors:
                overlap += get(v, 0.0)
            dist = deg + total - 2.0 * overlap
            if best_dist is None or dist < best_dist:
                best_dist = dist
                best_cluster = c
        assignment[u] = best_cluster
    return assignment


def _recompute_centroids(
    adjacency: List[List[int]], assignment: np.ndarray, k: int
) -> "tuple[List[Dict[int, float]], List[float]]":
    """Sparse mean row per cluster; empty clusters keep an empty centroid."""
    sums: List[Dict[int, float]] = [{} for _ in range(k)]
    counts = np.zeros(k, dtype=np.int64)
    for u, c in enumerate(assignment.tolist()):
        counts[c] += 1
        target = sums[c]
        for v in adjacency[u]:
            target[v] = target.get(v, 0.0) + 1.0
    totals: List[float] = []
    for c in range(k):
        if counts[c] > 0:
            inv = 1.0 / float(counts[c])
            sums[c] = {v: s * inv for v, s in sums[c].items()}
        totals.append(sum(sums[c].values()))
    return sums, totals


def s2l_summarize(
    graph: Graph,
    *,
    num_supernodes: "int | None" = None,
    supernode_fraction: "float | None" = None,
    max_iterations: int = 8,
    seed: "int | None" = None,
) -> SummaryGraph:
    """Summarize *graph* into ``k`` supernodes by L1 k-median clustering.

    Parameters
    ----------
    graph:
        Input graph.
    num_supernodes, supernode_fraction:
        Target ``k``, absolute or as a fraction of ``|V|`` (exactly one).
    max_iterations:
        Lloyd iterations (assignment converges quickly on binary rows).
    seed:
        RNG seed for the initial centroid sample.
    """
    k = resolve_supernode_budget(graph, num_supernodes, supernode_fraction)
    rng = ensure_rng(seed)
    n = graph.num_nodes
    if n == 0:
        return SummaryGraph(graph)
    indptr, indices = graph.indptr, graph.indices
    index_list = indices.tolist()
    adjacency = [index_list[indptr[u] : indptr[u + 1]] for u in range(n)]

    # Seed centroids with k distinct node rows.
    seeds = rng.choice(n, size=k, replace=False)
    centroid_maps: List[Dict[int, float]] = [{v: 1.0 for v in adjacency[int(s)]} for s in seeds]
    centroid_totals = [float(len(adjacency[int(s)])) for s in seeds]

    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        new_assignment = _assign(adjacency, centroid_maps, centroid_totals)
        if np.array_equal(new_assignment, assignment):
            assignment = new_assignment
            break
        assignment = new_assignment
        centroid_maps, centroid_totals = _recompute_centroids(adjacency, assignment, k)

    # Empty clusters are legal in Lloyd's algorithm; relabeling via
    # from_partition compacts them away.
    return SummaryGraph.from_partition(
        graph, assignment, weighted=True, superedge_rule="all_blocks"
    )
