"""Merge-acceptance thresholds: adaptive (PeGaSus) and fixed (SSumM).

The threshold ``θ`` balances exploitation (merge now) against exploration
(wait for better candidate groups in a later iteration).  PeGaSus starts at
``θ = 0.5`` and, after each iteration, resets ``θ`` to the
``⌊β·|L|⌋``-th largest of the relative reductions *rejected* during the
iteration (Sect. III-E) — since rejected values are below the old ``θ``,
the threshold decreases monotonically toward exploitation.  SSumM instead
follows the fixed schedule ``θ(t) = 1/(1+t)`` with ``θ = 0`` at the final
iteration (Sect. III-G).
"""

from __future__ import annotations

from typing import List, Protocol

import numpy as np


class ThresholdPolicy(Protocol):
    """Interface shared by the two schedules."""

    value: float

    def record(self, rejected_value: float) -> None:
        """Log the best relative reduction of a failed merge attempt."""

    def advance(self, next_iteration: int) -> float:
        """Move to iteration *next_iteration* (1-based); returns new θ."""


class AdaptiveThreshold:
    """PeGaSus's adaptive schedule (Alg. 1 lines 8–9).

    Parameters
    ----------
    beta:
        Quantile parameter in ``[0, 1]``; larger β drops θ faster (more
        exploitation).  ``β ≈ 0`` selects the largest rejected entry
        (Fig. 11's caption).
    initial:
        Starting threshold, 0.5 in the paper.
    """

    def __init__(self, beta: float = 0.1, initial: float = 0.5):
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.beta = float(beta)
        self.value = float(initial)
        self._rejected: List[float] = []

    def record(self, rejected_value: float) -> None:
        self._rejected.append(float(rejected_value))

    @property
    def rejected_count(self) -> int:
        """Size of the list ``L`` accumulated this iteration."""
        return len(self._rejected)

    def advance(self, next_iteration: int) -> float:
        if self._rejected:
            arr = np.asarray(self._rejected, dtype=np.float64)
            # k-th largest with k = max(1, floor(beta * |L|)); the paper's
            # "β ≈ 0" case picks the single largest entry.
            k = max(int(np.floor(self.beta * arr.size)), 1)
            self.value = float(np.partition(arr, arr.size - k)[arr.size - k])
        self._rejected = []
        return self.value


class FixedSchedule:
    """SSumM's fixed schedule: ``θ(t) = 1/(1+t)`` for ``t < t_max``, else 0."""

    def __init__(self, t_max: int):
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = int(t_max)
        self.value = self._value_for(1)

    def _value_for(self, t: int) -> float:
        return 1.0 / (1.0 + t) if t < self.t_max else 0.0

    def record(self, rejected_value: float) -> None:  # noqa: ARG002 - protocol
        """No bookkeeping: the schedule ignores runtime statistics."""

    def advance(self, next_iteration: int) -> float:
        self.value = self._value_for(next_iteration)
        return self.value
