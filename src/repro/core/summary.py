"""The summary-graph structure ``G̅ = (S, P)`` (Sect. II-A of the paper).

A :class:`SummaryGraph` overlays a fixed input :class:`~repro.graph.Graph`
with

* a **partition** of the nodes into supernodes (``supernode_of`` maps each
  node to the id of its supernode; merged supernodes absorb their partner's
  members and keep one of the two ids, so live ids are always a subset of
  ``0..|V|-1``), and
* a **superedge set** ``P``, with self-loops represented by a supernode
  being adjacent to itself.

The decoded (reconstructed) graph ``Ĝ`` has an edge ``{u, v}`` iff
``{S_u, S_v}`` is a superedge (Sect. II-A); :meth:`reconstructed_neighbors`
is exactly ``getNeighbors`` from Alg. 4 and is the primitive every query in
:mod:`repro.queries` builds on.

Storage backends
----------------

Two interchangeable storage backends implement the structure; both expose
the same public API and are pinned to each other by the cross-backend
equivalence suite (``tests/core/test_backend_equivalence.py``):

* ``backend="dict"`` (:class:`SummaryGraph` itself) — the original
  dict-of-lists / dict-of-sets layout: ``_members`` maps each live
  supernode id to its member list, ``_adjacency`` maps it to its superedge
  neighbor set.  Simple, and the reference semantics.
* ``backend="flat"`` (:class:`FlatSummaryGraph`) — an array-native layout:
  members live in one contiguous linked-chain buffer (``next`` pointers
  plus per-slot head/tail/count arrays, so a merge concatenates two chains
  in O(1)), supernode slots are indexed by id with a free-list of dead ids,
  and superedges are kept in slot-indexed neighbor sets with an on-demand
  packed columnar export (:meth:`FlatSummaryGraph.superedge_arrays`) that
  vectorized consumers — :class:`repro.queries.operator.ReconstructedOperator`
  in particular — read directly instead of walking dicts.

``SummaryGraph(graph, backend="flat")`` dispatches to the flat backend;
:meth:`from_parts` / :meth:`from_partition` take the same keyword.  Both
backends enumerate live supernodes in ascending-id order after an identity
initialization, which is what makes whole ``summarize()`` runs replayable
across backends merge-for-merge.

Baselines that emit *weighted* summary graphs (S2L, k-Grass, SAAGs) attach
per-superedge weights; :meth:`size_in_bits` then uses the weighted encoding
from Sect. V-A (``|P| (2 log2|S| + log2 w_max) + |V| log2|S|``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro._util import log2_capped
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

#: Available storage backends for :class:`SummaryGraph`.
BACKENDS = ("dict", "flat")


def _canonical(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class SummaryGraph:
    """A mutable summary graph over a fixed input graph.

    Freshly constructed, it is the *identity* summary: every node is its own
    supernode and every input edge its own superedge (the initialization of
    Alg. 1, line 1), which reconstructs the input graph exactly.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    weighted:
        Whether superedges carry weights (baseline summarizers only).
    backend:
        ``"dict"`` (default) or ``"flat"``; see the module docstring.
    """

    #: Storage backend name; overridden by subclasses.
    backend = "dict"

    def __new__(cls, *args, backend: str = "dict", **kwargs):
        if backend not in BACKENDS:
            raise GraphFormatError(f"unknown summary backend {backend!r}; choose from {BACKENDS}")
        if cls is SummaryGraph and backend == "flat":
            return object.__new__(FlatSummaryGraph)
        return object.__new__(cls)

    def __init__(self, graph: Graph, *, weighted: bool = False, backend: str = "dict"):
        if backend != self.backend:
            raise GraphFormatError(
                f"cannot construct a {self.backend!r}-backend {type(self).__name__} "
                f"with backend={backend!r}"
            )
        n = graph.num_nodes
        self.graph = graph
        self.supernode_of = np.arange(n, dtype=np.int64)
        self._members: Dict[int, List[int]] = {u: [u] for u in range(n)}
        self._adjacency: Dict[int, Set[int]] = {u: set() for u in range(n)}
        self._num_superedges = 0
        self._weights: "Dict[Tuple[int, int], float] | None" = {} if weighted else None
        for u, v in graph.edge_array():
            self.add_superedge(int(u), int(v))

    # ------------------------------------------------------------------
    # alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        graph: Graph,
        supernode_of: "np.ndarray | Sequence[int]",
        superedges: "Iterable[Tuple[int, int, float | None]]" = (),
        *,
        weighted: bool = False,
        backend: "str | None" = None,
        validate: bool = False,
    ) -> "SummaryGraph":
        """Assemble a summary graph from an explicit partition + superedges.

        Parameters
        ----------
        graph:
            The input graph.
        supernode_of:
            ``supernode_of[u]`` is the supernode id of node ``u``.  Ids must
            lie in ``0..|V|-1`` (they need not be the smallest member).
        superedges:
            ``(a, b, weight)`` triples; ``weight`` is ignored unless
            *weighted* (``None`` means weight 1).
        weighted, backend:
            As for the main constructor.  When called on a subclass,
            *backend* defaults to that subclass's backend.
        validate:
            Run :meth:`check_invariants` on the result (used by
            :func:`repro.core.summary_io.load_summary` on untrusted input).
        """
        if backend is None:
            backend = cls.backend if cls is not SummaryGraph else "dict"
        if backend not in BACKENDS:
            raise GraphFormatError(f"unknown summary backend {backend!r}; choose from {BACKENDS}")
        assignment = np.asarray(supernode_of, dtype=np.int64)
        if assignment.shape != (graph.num_nodes,):
            raise GraphFormatError("supernode_of must have one entry per node")
        if assignment.size and (assignment.min() < 0 or assignment.max() >= graph.num_nodes):
            raise GraphFormatError("supernode ids must lie in [0, num_nodes)")
        target = FlatSummaryGraph if backend == "flat" else SummaryGraph
        obj = object.__new__(target)
        obj.graph = graph
        obj.supernode_of = assignment.copy()
        obj._weights = {} if weighted else None
        obj._num_superedges = 0
        obj._init_storage_from_assignment(assignment)
        for a, b, weight in superedges:
            obj.add_superedge(int(a), int(b), weight=weight)
        if validate:
            obj.check_invariants()
        return obj

    def _init_storage_from_assignment(self, assignment: np.ndarray) -> None:
        """Build the member/adjacency storage for a given partition.

        Supernodes are created in order of their first member, so live-id
        enumeration matches between backends for identity-like partitions.
        """
        members: Dict[int, List[int]] = {}
        for u, s in enumerate(assignment.tolist()):
            members.setdefault(s, []).append(u)
        self._members = members
        self._adjacency = {s: set() for s in members}

    @classmethod
    def from_partition(
        cls,
        graph: Graph,
        assignment: np.ndarray,
        *,
        weighted: bool = False,
        superedge_rule: str = "majority",
        backend: "str | None" = None,
    ) -> "SummaryGraph":
        """Build a summary graph from a node partition.

        Parameters
        ----------
        graph:
            The input graph.
        assignment:
            ``assignment[u]`` is an arbitrary cluster label for node ``u``.
            Each cluster becomes one supernode whose id is its smallest
            member node (so supernode ids stay within ``0..|V|-1``).
        weighted:
            Whether to attach edge-count weights to superedges (the output
            format of the S2L / k-Grass / SAAGs baselines).
        superedge_rule:
            How to decide superedges per block with at least one edge:

            * ``"majority"`` — superedge iff edge density ≥ 0.5, the
              L1-optimal unweighted decoding;
            * ``"all_blocks"`` — superedge for every block with ≥ 1 edge
              (the dense decoding of weighted baseline summaries).
        backend:
            Storage backend; defaults to the backend of *cls*.
        """
        if superedge_rule not in ("majority", "all_blocks"):
            raise GraphFormatError(f"unknown superedge_rule {superedge_rule!r}")
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_nodes,):
            raise GraphFormatError("assignment must have one label per node")
        labels, compact = np.unique(assignment, return_inverse=True)
        # Representative (smallest) node id per cluster becomes the supernode id.
        reps = np.full(labels.size, graph.num_nodes, dtype=np.int64)
        np.minimum.at(reps, compact, np.arange(graph.num_nodes, dtype=np.int64))
        supernode_of = reps[compact]
        sizes = np.bincount(compact)

        superedges: List[Tuple[int, int, "float | None"]] = []
        edges = graph.edge_array()
        if edges.size:
            a = supernode_of[edges[:, 0]]
            b = supernode_of[edges[:, 1]]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            key = lo * np.int64(graph.num_nodes) + hi
            uniq, counts = np.unique(key, return_counts=True)
            n = graph.num_nodes
            size_of = dict(zip(reps.tolist(), sizes.tolist()))
            for k, count in zip(uniq.tolist(), counts.tolist()):
                sa, sb = int(k // n), int(k % n)
                if sa == sb:
                    size = size_of[sa]
                    pairs = size * (size - 1) // 2
                else:
                    pairs = size_of[sa] * size_of[sb]
                if superedge_rule == "all_blocks" or (pairs and count * 2 >= pairs):
                    superedges.append((sa, sb, float(count) if weighted else None))
        return cls.from_parts(
            graph, supernode_of, superedges, weighted=weighted, backend=backend
        )

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of input-graph nodes ``|V|``."""
        return self.graph.num_nodes

    @property
    def num_supernodes(self) -> int:
        """Number of live supernodes ``|S|``."""
        return len(self._members)

    @property
    def num_superedges(self) -> int:
        """Number of superedges ``|P|`` (self-loops count once)."""
        return self._num_superedges

    @property
    def is_weighted(self) -> bool:
        """Whether superedges carry weights (baseline summarizers only)."""
        return self._weights is not None

    def supernodes(self) -> List[int]:
        """Live supernode ids (ascending after an identity initialization)."""
        return list(self._members)

    def members(self, supernode: int) -> np.ndarray:
        """Member nodes of *supernode* as an array."""
        try:
            return np.asarray(self._members[supernode], dtype=np.int64)
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def member_list(self, supernode: int) -> List[int]:
        """Member nodes of *supernode* as the internal list (do not mutate).

        Hot-path variant of :meth:`members` that skips the array copy; the
        rebuild-mode cost model walks this list once per block evaluation
        (Lemma 1).
        """
        try:
            return self._members[supernode]
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def member_count(self, supernode: int) -> int:
        """``|A|`` for supernode *A*."""
        try:
            return len(self._members[supernode])
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def superedge_neighbors(self, supernode: int) -> Set[int]:
        """Supernodes adjacent to *supernode* in ``P`` (may include itself)."""
        try:
            return self._adjacency[supernode]
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def has_superedge(self, a: int, b: int) -> bool:
        """Whether the superedge ``{a, b}`` (possibly a self-loop) exists."""
        return b in self._adjacency.get(a, ())

    def superedges(self) -> Iterator[Tuple[int, int]]:
        """Iterate superedges once each as ``(a, b)`` with ``a <= b``."""
        for a, neighbors in self._adjacency.items():
            for b in neighbors:
                if a <= b:
                    yield a, b

    def superedge_weight(self, a: int, b: int) -> float:
        """Weight of superedge ``{a, b}`` (weighted summaries only)."""
        if self._weights is None:
            raise GraphFormatError("summary graph is unweighted")
        return self._weights.get(_canonical(a, b), 0.0)

    def superedge_arrays(self) -> Tuple[np.ndarray, np.ndarray, "np.ndarray | None"]:
        """Packed columnar superedges ``(lo, hi, weights)``, lexsorted.

        ``weights`` is ``None`` for unweighted summaries.  Vectorized
        consumers (the query operator, serialization) read these instead of
        walking per-supernode adjacency; the fixed lexicographic order
        makes everything built from them backend-independent.  The flat
        backend overrides this with a cached export.
        """
        lo_list: List[int] = []
        hi_list: List[int] = []
        for a, b in self.superedges():
            lo_list.append(a)
            hi_list.append(b)
        lo = np.asarray(lo_list, dtype=np.int64)
        hi = np.asarray(hi_list, dtype=np.int64)
        order = np.lexsort((hi, lo))
        lo, hi = lo[order], hi[order]
        if self._weights is None:
            return lo, hi, None
        weights = np.asarray(
            [self._weights.get((int(a), int(b)), 1.0) for a, b in zip(lo, hi)],
            dtype=np.float64,
        )
        return lo, hi, weights

    def block_pair_count(self, a: int, b: int) -> int:
        """Number of node pairs in block ``{a, b}`` (``C(|A|, 2)`` if ``a=b``)."""
        if a == b:
            size = self.member_count(a)
            return size * (size - 1) // 2
        return self.member_count(a) * self.member_count(b)

    def superedge_density(self, a: int, b: int) -> float:
        """Edge density encoded by superedge ``{a, b}``.

        For unweighted summaries a superedge means "all pairs present", so
        the density is 1.  For weighted summaries it is the stored edge
        count divided by the block's pair count — the expected-adjacency
        interpretation the weighted baselines (and the weighted-query
        answering of Sect. V-A) rely on.
        """
        if self._weights is None:
            return 1.0 if self.has_superedge(a, b) else 0.0
        pairs = self.block_pair_count(a, b)
        if pairs == 0:
            return 0.0
        return min(self._weights.get(_canonical(a, b), 0.0) / pairs, 1.0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_superedge(self, a: int, b: int, *, weight: "float | None" = None) -> None:
        """Insert superedge ``{a, b}``; idempotent for existing edges."""
        if a not in self._adjacency or b not in self._adjacency:
            raise GraphFormatError(f"superedge endpoints {a}, {b} must be live supernodes")
        if b not in self._adjacency[a]:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
            self._num_superedges += 1
        if self._weights is not None:
            self._weights[_canonical(a, b)] = 1.0 if weight is None else float(weight)

    def remove_superedge(self, a: int, b: int) -> None:
        """Remove superedge ``{a, b}``; no-op if absent."""
        if b in self._adjacency.get(a, ()):
            self._adjacency[a].discard(b)
            self._adjacency[b].discard(a)
            self._num_superedges -= 1
            if self._weights is not None:
                self._weights.pop(_canonical(a, b), None)

    def merge_supernodes(self, a: int, b: int) -> Tuple[int, Set[int]]:
        """Merge supernodes *a* and *b* into one (Alg. 2, lines 6–8).

        The union keeps id *a*; all superedges incident to either endpoint
        are dropped (the caller re-adds the beneficial ones, line 9).

        Returns ``(union_id, former_neighbors)`` where *former_neighbors* is
        the set of supernodes that had a superedge to *a* or *b* (with
        ``a``/``b`` replaced by the union id), so the caller can limit its
        re-addition scan.
        """
        if a == b:
            raise GraphFormatError("cannot merge a supernode with itself")
        if a not in self._members or b not in self._members:
            raise GraphFormatError(f"merge endpoints {a}, {b} must be live supernodes")
        former = (self._adjacency[a] | self._adjacency[b]) - {a, b}
        for x in tuple(self._adjacency[a]):
            self.remove_superedge(a, x)
        for x in tuple(self._adjacency[b]):
            self.remove_superedge(b, x)
        members_b = self._members.pop(b)
        self._members[a].extend(members_b)
        self.supernode_of[members_b] = a
        del self._adjacency[b]
        return a, former

    # ------------------------------------------------------------------
    # size model (Eq. 3 and the weighted variant of Sect. V-A)
    # ------------------------------------------------------------------
    def size_in_bits(self) -> float:
        """Summary size in bits.

        Unweighted (Eq. 3): ``2 |P| log2|S| + |V| log2|S|``.
        Weighted (Sect. V-A): ``|P| (2 log2|S| + log2 w_max) + |V| log2|S|``.
        """
        s = self.num_supernodes
        if s == 0:
            return 0.0
        log_s = log2_capped(s)
        membership_bits = self.num_nodes * log_s
        if self._weights is None:
            return 2.0 * self._num_superedges * log_s + membership_bits
        w_max = max(self._weights.values(), default=1.0)
        weight_bits = log2_capped(max(int(np.ceil(w_max)), 1)) if w_max > 1 else 0.0
        return self._num_superedges * (2.0 * log_s + weight_bits) + membership_bits

    def compression_ratio(self) -> float:
        """``Size(G̅) / Size(G)`` — the x-axis of Figs. 7 and 12."""
        denom = self.graph.size_in_bits()
        return self.size_in_bits() / denom if denom > 0 else 0.0

    # ------------------------------------------------------------------
    # reconstruction (Alg. 4 and helpers)
    # ------------------------------------------------------------------
    def reconstructed_neighbors(self, node: int) -> np.ndarray:
        """Neighbors of *node* in the reconstructed graph ``Ĝ`` (Alg. 4).

        The union of the members of every supernode adjacent to ``S_node``
        (including ``S_node`` itself when it has a self-loop), minus *node*.
        """
        if not 0 <= node < self.num_nodes:
            raise GraphFormatError(f"node {node} out of range")
        home = int(self.supernode_of[node])
        pieces = [self.member_list(a) for a in self.superedge_neighbors(home)]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in pieces])
        flat = flat[flat != node]
        return np.unique(flat)

    def reconstructed_has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of ``Ĝ`` — O(1) via the superedge set."""
        if u == v:
            return False
        return self.has_superedge(int(self.supernode_of[u]), int(self.supernode_of[v]))

    def reconstructed_degree(self, node: int) -> int:
        """Degree of *node* in ``Ĝ`` without materializing the neighbor set."""
        home = int(self.supernode_of[node])
        total = 0
        for a in self.superedge_neighbors(home):
            total += self.member_count(a)
            if a == home:
                total -= 1  # exclude the node itself under a self-loop
        return total

    def reconstructed_edge_count(self) -> int:
        """``|Ê|``: sum of block sizes over superedges (exact, O(|P|))."""
        total = 0
        for a, b in self.superedges():
            if a == b:
                size = self.member_count(a)
                total += size * (size - 1) // 2
            else:
                total += self.member_count(a) * self.member_count(b)
        return total

    def reconstruct(self) -> Graph:
        """Materialize ``Ĝ`` as a :class:`Graph` (small graphs / tests only)."""
        edges: List[Tuple[int, int]] = []
        for a, b in self.superedges():
            mem_a = self.member_list(a)
            if a == b:
                edges.extend((mem_a[i], mem_a[j]) for i in range(len(mem_a)) for j in range(i + 1, len(mem_a)))
            else:
                mem_b = self.member_list(b)
                edges.extend((u, v) for u in mem_a for v in mem_b)
        return Graph.from_edges(self.num_nodes, np.asarray(edges, dtype=np.int64).reshape(-1, 2), validate=False)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`GraphFormatError` if internal bookkeeping is broken.

        Used by tests and hypothesis properties; O(|V| + |P|).
        """
        seen = np.zeros(self.num_nodes, dtype=bool)
        for supernode, members in self._members.items():
            if not members:
                raise GraphFormatError(f"supernode {supernode} is empty")
            for u in members:
                if seen[u]:
                    raise GraphFormatError(f"node {u} appears in two supernodes")
                seen[u] = True
                if self.supernode_of[u] != supernode:
                    raise GraphFormatError(f"supernode_of[{u}] inconsistent")
        if not seen.all():
            raise GraphFormatError("partition does not cover all nodes")
        count = 0
        for a, neighbors in self._adjacency.items():
            if a not in self._members:
                raise GraphFormatError(f"adjacency for dead supernode {a}")
            for b in neighbors:
                if a not in self._adjacency.get(b, ()):
                    raise GraphFormatError(f"superedge {{{a}, {b}}} not symmetric")
                if a <= b:
                    count += 1
        if count != self._num_superedges:
            raise GraphFormatError(f"superedge count {self._num_superedges} != recount {count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SummaryGraph(|V|={self.num_nodes}, |S|={self.num_supernodes}, "
            f"|P|={self._num_superedges}, weighted={self.is_weighted}, "
            f"backend={self.backend!r})"
        )


class FlatSummaryGraph(SummaryGraph):
    """Array-native storage backend for :class:`SummaryGraph`.

    Layout (all arrays are slot-indexed by supernode id, length ``|V|``):

    * ``_m_next`` — one contiguous ``int64`` buffer of linked member
      chains: ``_m_next[u]`` is the next member of ``u``'s supernode, or
      ``-1`` at the chain tail.  ``_m_head``/``_m_tail``/``_m_count`` hold
      per-slot chain heads, tails, and lengths, so merging two supernodes
      concatenates their chains in O(1) (the dict backend pays O(|B|) to
      extend a list).
    * ``_alive`` — liveness bitmap; ``_free`` is the LIFO free-list of dead
      slot ids, kept for callers that allocate fresh supernodes (e.g.
      future split/refine operations).
    * ``_nbr`` — slot-indexed superedge neighbor sets (list-indexed, so the
      hot membership tests skip dict hashing), plus a lazily built packed
      columnar export (:meth:`superedge_arrays`) for vectorized consumers.

    Member chains concatenate absorbed-last, so :meth:`member_list` returns
    members in the same order as the dict backend's list ``extend`` — which
    keeps the two backends replayable against each other merge-for-merge.
    """

    backend = "flat"

    def __init__(self, graph: Graph, *, weighted: bool = False, backend: str = "flat"):
        if backend != self.backend:
            raise GraphFormatError(
                f"cannot construct a {self.backend!r}-backend {type(self).__name__} "
                f"with backend={backend!r}"
            )
        n = graph.num_nodes
        self.graph = graph
        self.supernode_of = np.arange(n, dtype=np.int64)
        self._weights = {} if weighted else None
        self._num_superedges = 0
        self._init_storage_from_assignment(self.supernode_of)
        for u, v in graph.edge_array():
            self.add_superedge(int(u), int(v))

    def _init_storage_from_assignment(self, assignment: np.ndarray) -> None:
        n = self.graph.num_nodes
        self._n = n  # plain-int mirror; the hot accessors skip the property chain
        head = [-1] * n
        tail = [-1] * n
        nxt = [-1] * n
        count = [0] * n
        for u, s in enumerate(assignment.tolist()):
            if head[s] < 0:
                head[s] = u
            else:
                nxt[tail[s]] = u
            tail[s] = u
            count[s] += 1
        self._m_head = np.asarray(head, dtype=np.int64)
        self._m_tail = np.asarray(tail, dtype=np.int64)
        self._m_next = np.asarray(nxt, dtype=np.int64)
        self._m_count = np.asarray(count, dtype=np.int64)
        self._alive = self._m_count > 0
        self._live_count = int(self._alive.sum())
        self._free: List[int] = np.flatnonzero(~self._alive).tolist()
        self._nbr: List["Set[int] | None"] = [
            set() if self._alive[s] else None for s in range(n)
        ]
        self._arrays_cache: "tuple | None" = None

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_supernodes(self) -> int:
        return self._live_count

    def supernodes(self) -> List[int]:
        """Live supernode ids, ascending."""
        return np.flatnonzero(self._alive).tolist()

    def _require_live(self, supernode: int) -> None:
        # Liveness is tracked by the adjacency slot: dead slots hold None.
        if not 0 <= supernode < self._n or self._nbr[supernode] is None:
            raise GraphFormatError(f"supernode {supernode} does not exist")

    def members(self, supernode: int) -> np.ndarray:
        return np.asarray(self.member_list(supernode), dtype=np.int64)

    def member_list(self, supernode: int) -> List[int]:
        """Member nodes of *supernode* in chain order (a fresh list)."""
        self._require_live(supernode)
        out: List[int] = []
        nxt = self._m_next
        u = int(self._m_head[supernode])
        while u >= 0:
            out.append(u)
            u = int(nxt[u])
        return out

    def member_count(self, supernode: int) -> int:
        self._require_live(supernode)
        return int(self._m_count[supernode])

    def superedge_neighbors(self, supernode: int) -> Set[int]:
        neighbors = self._nbr[supernode] if 0 <= supernode < self._n else None
        if neighbors is None:
            raise GraphFormatError(f"supernode {supernode} does not exist")
        return neighbors

    def has_superedge(self, a: int, b: int) -> bool:
        if not 0 <= a < self._n:
            return False
        neighbors = self._nbr[a]
        return neighbors is not None and b in neighbors

    def superedges(self) -> Iterator[Tuple[int, int]]:
        """Iterate superedges as ``(a, b)`` with ``a <= b``, sorted."""
        for a in np.flatnonzero(self._alive).tolist():
            for b in sorted(self._nbr[a]):
                if a <= b:
                    yield a, b

    def superedge_arrays(self) -> Tuple[np.ndarray, np.ndarray, "np.ndarray | None"]:
        """Packed columnar superedges ``(lo, hi, weights)``, lexsorted.

        Same contract as the base-class export, but cached until the next
        mutation — the flat backend's :meth:`superedges` already iterates
        in lexicographic order, so no sort is needed.
        """
        if self._arrays_cache is None:
            lo: List[int] = []
            hi: List[int] = []
            for a, b in self.superedges():
                lo.append(a)
                hi.append(b)
            lo_arr = np.asarray(lo, dtype=np.int64)
            hi_arr = np.asarray(hi, dtype=np.int64)
            if self._weights is not None:
                w_arr = np.asarray(
                    [self._weights.get((a, b), 1.0) for a, b in zip(lo, hi)],
                    dtype=np.float64,
                )
            else:
                w_arr = None
            self._arrays_cache = (lo_arr, hi_arr, w_arr)
        return self._arrays_cache

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_superedge(self, a: int, b: int, *, weight: "float | None" = None) -> None:
        if (
            not 0 <= a < self._n
            or not 0 <= b < self._n
            or self._nbr[a] is None
            or self._nbr[b] is None
        ):
            raise GraphFormatError(f"superedge endpoints {a}, {b} must be live supernodes")
        neighbors = self._nbr[a]
        if b not in neighbors:
            neighbors.add(b)
            self._nbr[b].add(a)
            self._num_superedges += 1
            self._arrays_cache = None
        if self._weights is not None:
            self._weights[_canonical(a, b)] = 1.0 if weight is None else float(weight)
            self._arrays_cache = None

    def remove_superedge(self, a: int, b: int) -> None:
        if not 0 <= a < self._n:
            return
        neighbors = self._nbr[a]
        if neighbors is not None and b in neighbors:
            neighbors.discard(b)
            self._nbr[b].discard(a)
            self._num_superedges -= 1
            self._arrays_cache = None
            if self._weights is not None:
                self._weights.pop(_canonical(a, b), None)

    def merge_supernodes(self, a: int, b: int) -> Tuple[int, Set[int]]:
        if a == b:
            raise GraphFormatError("cannot merge a supernode with itself")
        if (
            not 0 <= a < self._n
            or not 0 <= b < self._n
            or self._nbr[a] is None
            or self._nbr[b] is None
        ):
            raise GraphFormatError(f"merge endpoints {a}, {b} must be live supernodes")
        members_b = self.member_list(b)
        nbr = self._nbr
        na, nb = nbr[a], nbr[b]
        former = (na | nb) - {a, b}
        dropped = len(na) + len(nb) - (1 if b in na else 0)
        weights = self._weights
        for x in na:
            if x != a and x != b:
                nbr[x].discard(a)
            if weights is not None:
                weights.pop(_canonical(a, x), None)
        for x in nb:
            if x != a and x != b:
                nbr[x].discard(b)
            if weights is not None:
                weights.pop(_canonical(b, x), None)
        na.clear()
        nbr[b] = None
        self._num_superedges -= dropped

        self._m_next[self._m_tail[a]] = self._m_head[b]
        self._m_tail[a] = self._m_tail[b]
        self._m_count[a] += self._m_count[b]
        self._m_head[b] = self._m_tail[b] = -1
        self._m_count[b] = 0
        self.supernode_of[members_b] = a
        self._alive[b] = False
        self._live_count -= 1
        self._free.append(b)
        self._arrays_cache = None
        return a, former

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        seen = np.zeros(self.num_nodes, dtype=bool)
        live = np.flatnonzero(self._alive).tolist()
        if len(live) != self._live_count:
            raise GraphFormatError(f"live count {self._live_count} != bitmap count {len(live)}")
        for supernode in live:
            members = self.member_list(supernode)
            if not members:
                raise GraphFormatError(f"supernode {supernode} is empty")
            if len(members) != int(self._m_count[supernode]):
                raise GraphFormatError(f"member chain of {supernode} disagrees with its count")
            for u in members:
                if seen[u]:
                    raise GraphFormatError(f"node {u} appears in two supernodes")
                seen[u] = True
                if self.supernode_of[u] != supernode:
                    raise GraphFormatError(f"supernode_of[{u}] inconsistent")
        if not seen.all():
            raise GraphFormatError("partition does not cover all nodes")
        for dead in self._free:
            if self._alive[dead]:
                raise GraphFormatError(f"free-list contains live supernode {dead}")
            if self._nbr[dead] is not None:
                raise GraphFormatError(f"adjacency for dead supernode {dead}")
        count = 0
        for a in live:
            neighbors = self._nbr[a]
            if neighbors is None:
                raise GraphFormatError(f"missing adjacency for live supernode {a}")
            for b in neighbors:
                other = self._nbr[b] if 0 <= b < self.num_nodes else None
                if other is None or a not in other:
                    raise GraphFormatError(f"superedge {{{a}, {b}}} not symmetric")
                if a <= b:
                    count += 1
        if count != self._num_superedges:
            raise GraphFormatError(f"superedge count {self._num_superedges} != recount {count}")
