"""The summary-graph structure ``G̅ = (S, P)`` (Sect. II-A of the paper).

A :class:`SummaryGraph` overlays a fixed input :class:`~repro.graph.Graph`
with

* a **partition** of the nodes into supernodes (``supernode_of`` maps each
  node to the id of its supernode; merged supernodes absorb their partner's
  members and keep one of the two ids, so live ids are always a subset of
  ``0..|V|-1``), and
* a **superedge set** ``P`` stored as adjacency sets, with self-loops
  represented by a supernode appearing in its own set.

The decoded (reconstructed) graph ``Ĝ`` has an edge ``{u, v}`` iff
``{S_u, S_v}`` is a superedge (Sect. II-A); :meth:`reconstructed_neighbors`
is exactly ``getNeighbors`` from Alg. 4 and is the primitive every query in
:mod:`repro.queries` builds on.

Baselines that emit *weighted* summary graphs (S2L, k-Grass, SAAGs) attach
per-superedge weights; :meth:`size_in_bits` then uses the weighted encoding
from Sect. V-A (``|P| (2 log2|S| + log2 w_max) + |V| log2|S|``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro._util import log2_capped
from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def _canonical(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class SummaryGraph:
    """A mutable summary graph over a fixed input graph.

    Freshly constructed, it is the *identity* summary: every node is its own
    supernode and every input edge its own superedge (the initialization of
    Alg. 1, line 1), which reconstructs the input graph exactly.
    """

    def __init__(self, graph: Graph, *, weighted: bool = False):
        n = graph.num_nodes
        self.graph = graph
        self.supernode_of = np.arange(n, dtype=np.int64)
        self._members: Dict[int, List[int]] = {u: [u] for u in range(n)}
        self._adjacency: Dict[int, Set[int]] = {u: set() for u in range(n)}
        self._num_superedges = 0
        self._weights: "Dict[Tuple[int, int], float] | None" = {} if weighted else None
        for u, v in graph.edge_array():
            self.add_superedge(int(u), int(v))

    @classmethod
    def from_partition(
        cls,
        graph: Graph,
        assignment: np.ndarray,
        *,
        weighted: bool = False,
        superedge_rule: str = "majority",
    ) -> "SummaryGraph":
        """Build a summary graph from a node partition.

        Parameters
        ----------
        graph:
            The input graph.
        assignment:
            ``assignment[u]`` is an arbitrary cluster label for node ``u``.
            Each cluster becomes one supernode whose id is its smallest
            member node (so supernode ids stay within ``0..|V|-1``).
        weighted:
            Whether to attach edge-count weights to superedges (the output
            format of the S2L / k-Grass / SAAGs baselines).
        superedge_rule:
            How to decide superedges per block with at least one edge:

            * ``"majority"`` — superedge iff edge density ≥ 0.5, the
              L1-optimal unweighted decoding;
            * ``"all_blocks"`` — superedge for every block with ≥ 1 edge
              (the dense decoding of weighted baseline summaries).
        """
        if superedge_rule not in ("majority", "all_blocks"):
            raise GraphFormatError(f"unknown superedge_rule {superedge_rule!r}")
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_nodes,):
            raise GraphFormatError("assignment must have one label per node")
        obj = cls.__new__(cls)
        obj.graph = graph
        obj._weights = {} if weighted else None
        labels, compact = np.unique(assignment, return_inverse=True)
        # Representative (smallest) node id per cluster becomes the supernode id.
        reps = np.full(labels.size, graph.num_nodes, dtype=np.int64)
        np.minimum.at(reps, compact, np.arange(graph.num_nodes, dtype=np.int64))
        obj.supernode_of = reps[compact]
        obj._members = {int(rep): [] for rep in reps}
        for u, rep in enumerate(obj.supernode_of.tolist()):
            obj._members[rep].append(u)
        obj._adjacency = {int(rep): set() for rep in reps}
        obj._num_superedges = 0

        edges = graph.edge_array()
        if edges.size:
            a = obj.supernode_of[edges[:, 0]]
            b = obj.supernode_of[edges[:, 1]]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            key = lo * np.int64(graph.num_nodes) + hi
            uniq, counts = np.unique(key, return_counts=True)
            n = graph.num_nodes
            for k, count in zip(uniq.tolist(), counts.tolist()):
                sa, sb = int(k // n), int(k % n)
                if sa == sb:
                    size = len(obj._members[sa])
                    pairs = size * (size - 1) // 2
                else:
                    pairs = len(obj._members[sa]) * len(obj._members[sb])
                if superedge_rule == "all_blocks" or (pairs and count * 2 >= pairs):
                    obj.add_superedge(sa, sb, weight=float(count) if weighted else None)
        return obj

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of input-graph nodes ``|V|``."""
        return self.graph.num_nodes

    @property
    def num_supernodes(self) -> int:
        """Number of live supernodes ``|S|``."""
        return len(self._members)

    @property
    def num_superedges(self) -> int:
        """Number of superedges ``|P|`` (self-loops count once)."""
        return self._num_superedges

    @property
    def is_weighted(self) -> bool:
        """Whether superedges carry weights (baseline summarizers only)."""
        return self._weights is not None

    def supernodes(self) -> List[int]:
        """Live supernode ids (unordered)."""
        return list(self._members)

    def members(self, supernode: int) -> np.ndarray:
        """Member nodes of *supernode* as an array."""
        try:
            return np.asarray(self._members[supernode], dtype=np.int64)
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def member_list(self, supernode: int) -> List[int]:
        """Member nodes of *supernode* as the internal list (do not mutate).

        Hot-path variant of :meth:`members` that skips the array copy; the
        cost model walks this list once per block evaluation (Lemma 1).
        """
        try:
            return self._members[supernode]
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def member_count(self, supernode: int) -> int:
        """``|A|`` for supernode *A*."""
        try:
            return len(self._members[supernode])
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def superedge_neighbors(self, supernode: int) -> Set[int]:
        """Supernodes adjacent to *supernode* in ``P`` (may include itself)."""
        try:
            return self._adjacency[supernode]
        except KeyError:
            raise GraphFormatError(f"supernode {supernode} does not exist") from None

    def has_superedge(self, a: int, b: int) -> bool:
        """Whether the superedge ``{a, b}`` (possibly a self-loop) exists."""
        return b in self._adjacency.get(a, ())

    def superedges(self) -> Iterator[Tuple[int, int]]:
        """Iterate superedges once each as ``(a, b)`` with ``a <= b``."""
        for a, neighbors in self._adjacency.items():
            for b in neighbors:
                if a <= b:
                    yield a, b

    def superedge_weight(self, a: int, b: int) -> float:
        """Weight of superedge ``{a, b}`` (weighted summaries only)."""
        if self._weights is None:
            raise GraphFormatError("summary graph is unweighted")
        return self._weights.get(_canonical(a, b), 0.0)

    def block_pair_count(self, a: int, b: int) -> int:
        """Number of node pairs in block ``{a, b}`` (``C(|A|, 2)`` if ``a=b``)."""
        if a == b:
            size = self.member_count(a)
            return size * (size - 1) // 2
        return self.member_count(a) * self.member_count(b)

    def superedge_density(self, a: int, b: int) -> float:
        """Edge density encoded by superedge ``{a, b}``.

        For unweighted summaries a superedge means "all pairs present", so
        the density is 1.  For weighted summaries it is the stored edge
        count divided by the block's pair count — the expected-adjacency
        interpretation the weighted baselines (and the weighted-query
        answering of Sect. V-A) rely on.
        """
        if self._weights is None:
            return 1.0 if self.has_superedge(a, b) else 0.0
        pairs = self.block_pair_count(a, b)
        if pairs == 0:
            return 0.0
        return min(self._weights.get(_canonical(a, b), 0.0) / pairs, 1.0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_superedge(self, a: int, b: int, *, weight: "float | None" = None) -> None:
        """Insert superedge ``{a, b}``; idempotent for existing edges."""
        if a not in self._adjacency or b not in self._adjacency:
            raise GraphFormatError(f"superedge endpoints {a}, {b} must be live supernodes")
        if b not in self._adjacency[a]:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
            self._num_superedges += 1
        if self._weights is not None:
            self._weights[_canonical(a, b)] = 1.0 if weight is None else float(weight)

    def remove_superedge(self, a: int, b: int) -> None:
        """Remove superedge ``{a, b}``; no-op if absent."""
        if b in self._adjacency.get(a, ()):
            self._adjacency[a].discard(b)
            self._adjacency[b].discard(a)
            self._num_superedges -= 1
            if self._weights is not None:
                self._weights.pop(_canonical(a, b), None)

    def merge_supernodes(self, a: int, b: int) -> Tuple[int, Set[int]]:
        """Merge supernodes *a* and *b* into one (Alg. 2, lines 6–8).

        The union keeps id *a*; all superedges incident to either endpoint
        are dropped (the caller re-adds the beneficial ones, line 9).

        Returns ``(union_id, former_neighbors)`` where *former_neighbors* is
        the set of supernodes that had a superedge to *a* or *b* (with
        ``a``/``b`` replaced by the union id), so the caller can limit its
        re-addition scan.
        """
        if a == b:
            raise GraphFormatError("cannot merge a supernode with itself")
        if a not in self._members or b not in self._members:
            raise GraphFormatError(f"merge endpoints {a}, {b} must be live supernodes")
        former = (self._adjacency[a] | self._adjacency[b]) - {a, b}
        for x in tuple(self._adjacency[a]):
            self.remove_superedge(a, x)
        for x in tuple(self._adjacency[b]):
            self.remove_superedge(b, x)
        members_b = self._members.pop(b)
        self._members[a].extend(members_b)
        self.supernode_of[members_b] = a
        del self._adjacency[b]
        return a, former

    # ------------------------------------------------------------------
    # size model (Eq. 3 and the weighted variant of Sect. V-A)
    # ------------------------------------------------------------------
    def size_in_bits(self) -> float:
        """Summary size in bits.

        Unweighted (Eq. 3): ``2 |P| log2|S| + |V| log2|S|``.
        Weighted (Sect. V-A): ``|P| (2 log2|S| + log2 w_max) + |V| log2|S|``.
        """
        s = self.num_supernodes
        if s == 0:
            return 0.0
        log_s = log2_capped(s)
        membership_bits = self.num_nodes * log_s
        if self._weights is None:
            return 2.0 * self._num_superedges * log_s + membership_bits
        w_max = max(self._weights.values(), default=1.0)
        weight_bits = log2_capped(max(int(np.ceil(w_max)), 1)) if w_max > 1 else 0.0
        return self._num_superedges * (2.0 * log_s + weight_bits) + membership_bits

    def compression_ratio(self) -> float:
        """``Size(G̅) / Size(G)`` — the x-axis of Figs. 7 and 12."""
        denom = self.graph.size_in_bits()
        return self.size_in_bits() / denom if denom > 0 else 0.0

    # ------------------------------------------------------------------
    # reconstruction (Alg. 4 and helpers)
    # ------------------------------------------------------------------
    def reconstructed_neighbors(self, node: int) -> np.ndarray:
        """Neighbors of *node* in the reconstructed graph ``Ĝ`` (Alg. 4).

        The union of the members of every supernode adjacent to ``S_node``
        (including ``S_node`` itself when it has a self-loop), minus *node*.
        """
        if not 0 <= node < self.num_nodes:
            raise GraphFormatError(f"node {node} out of range")
        home = int(self.supernode_of[node])
        pieces = [self._members[a] for a in self._adjacency[home]]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in pieces])
        flat = flat[flat != node]
        return np.unique(flat)

    def reconstructed_has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of ``Ĝ`` — O(1) via the superedge set."""
        if u == v:
            return False
        return self.has_superedge(int(self.supernode_of[u]), int(self.supernode_of[v]))

    def reconstructed_degree(self, node: int) -> int:
        """Degree of *node* in ``Ĝ`` without materializing the neighbor set."""
        home = int(self.supernode_of[node])
        total = 0
        for a in self._adjacency[home]:
            total += len(self._members[a])
            if a == home:
                total -= 1  # exclude the node itself under a self-loop
        return total

    def reconstructed_edge_count(self) -> int:
        """``|Ê|``: sum of block sizes over superedges (exact, O(|P|))."""
        total = 0
        for a, b in self.superedges():
            if a == b:
                size = len(self._members[a])
                total += size * (size - 1) // 2
            else:
                total += len(self._members[a]) * len(self._members[b])
        return total

    def reconstruct(self) -> Graph:
        """Materialize ``Ĝ`` as a :class:`Graph` (small graphs / tests only)."""
        edges: List[Tuple[int, int]] = []
        for a, b in self.superedges():
            mem_a = self._members[a]
            if a == b:
                edges.extend((mem_a[i], mem_a[j]) for i in range(len(mem_a)) for j in range(i + 1, len(mem_a)))
            else:
                edges.extend((u, v) for u in mem_a for v in self._members[b])
        return Graph.from_edges(self.num_nodes, np.asarray(edges, dtype=np.int64).reshape(-1, 2), validate=False)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`GraphFormatError` if internal bookkeeping is broken.

        Used by tests and hypothesis properties; O(|V| + |P|).
        """
        seen = np.zeros(self.num_nodes, dtype=bool)
        for supernode, members in self._members.items():
            if not members:
                raise GraphFormatError(f"supernode {supernode} is empty")
            for u in members:
                if seen[u]:
                    raise GraphFormatError(f"node {u} appears in two supernodes")
                seen[u] = True
                if self.supernode_of[u] != supernode:
                    raise GraphFormatError(f"supernode_of[{u}] inconsistent")
        if not seen.all():
            raise GraphFormatError("partition does not cover all nodes")
        count = 0
        for a, neighbors in self._adjacency.items():
            if a not in self._members:
                raise GraphFormatError(f"adjacency for dead supernode {a}")
            for b in neighbors:
                if a not in self._adjacency.get(b, ()):
                    raise GraphFormatError(f"superedge {{{a}, {b}}} not symmetric")
                if a <= b:
                    count += 1
        if count != self._num_superedges:
            raise GraphFormatError(f"superedge count {self._num_superedges} != recount {count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SummaryGraph(|V|={self.num_nodes}, |S|={self.num_supernodes}, "
            f"|P|={self._num_superedges}, weighted={self.is_weighted})"
        )
