"""Lossless summarization via edge corrections.

The paper's cost model prices each erroneous unordered pair at
``2·log2|V|`` bits — the cost of *naming it in a correction list*
(footnote 4, following SWeG [4] and Navlakha et al. [50]).  This module
makes that encoding concrete: together with its corrections, a lossy
summary graph becomes a **lossless** representation of the input:

* ``E+`` (positive corrections): input edges missing from ``Ĝ``;
* ``E−`` (negative corrections): reconstructed edges absent from ``G``.

``decode(G̅, E+, E−) = (Ĝ ∪ E+) \\ E−  =  G`` exactly.

This also yields the MDL identity behind Eq. 5: the lossless size
``Size(G̅) + 2·log2|V|·(|E+| + |E−|)`` equals ``Cost(G̅)`` minus the
membership term's constant, so minimizing the personalized cost with
uniform weights is exactly minimizing the lossless description length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._util import log2_capped
from repro.core.summary import SummaryGraph
from repro.graph.graph import Graph


@dataclass
class CorrectionSet:
    """Positive and negative edge corrections for a summary graph."""

    num_nodes: int
    positive: List[Tuple[int, int]]
    negative: List[Tuple[int, int]]

    @property
    def count(self) -> int:
        """Total number of correction edges ``|E+| + |E−|``."""
        return len(self.positive) + len(self.negative)

    def size_in_bits(self) -> float:
        """Correction bits: ``2·log2|V|`` per correction edge (footnote 4)."""
        if self.num_nodes < 1:
            return 0.0
        return 2.0 * self.count * log2_capped(max(self.num_nodes, 1))


def compute_corrections(summary: SummaryGraph) -> CorrectionSet:
    """Exact correction sets of *summary* against its input graph.

    ``O(|E| + |Ê|)``: positive corrections come from grouping the input
    edges by supernode block; negative corrections from enumerating the
    node pairs of each superedge block and testing membership.
    """
    graph = summary.graph
    positive: List[Tuple[int, int]] = []
    negative: List[Tuple[int, int]] = []
    for u, v in graph.edge_array().tolist():
        if not summary.has_superedge(int(summary.supernode_of[u]), int(summary.supernode_of[v])):
            positive.append((u, v))
    for a, b in summary.superedges():
        members_a = summary.member_list(a)
        members_b = summary.member_list(b)
        if a == b:
            pairs = (
                (members_a[i], members_a[j])
                for i in range(len(members_a))
                for j in range(i + 1, len(members_a))
            )
        else:
            pairs = ((u, v) for u in members_a for v in members_b)
        for u, v in pairs:
            if not graph.has_edge(u, v):
                negative.append((min(u, v), max(u, v)))
    return CorrectionSet(num_nodes=graph.num_nodes, positive=positive, negative=negative)


def lossless_size_in_bits(summary: SummaryGraph, corrections: "CorrectionSet | None" = None) -> float:
    """Total bits of the lossless encoding: summary plus corrections."""
    if corrections is None:
        corrections = compute_corrections(summary)
    return summary.size_in_bits() + corrections.size_in_bits()


def decode(summary: SummaryGraph, corrections: CorrectionSet) -> Graph:
    """Reconstruct the input graph *exactly* from summary + corrections."""
    reconstructed = summary.reconstruct()
    edges = {tuple(e) for e in reconstructed.edge_array().tolist()}
    edges.update((min(u, v), max(u, v)) for u, v in corrections.positive)
    edges.difference_update(corrections.negative)
    if not edges:
        return Graph.empty(summary.num_nodes)
    return Graph.from_edges(
        summary.num_nodes, np.asarray(sorted(edges), dtype=np.int64), validate=False
    )
