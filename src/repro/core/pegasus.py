"""PeGaSus — Personalized Graph Summarization with Scalability (Alg. 1).

The driver ties the pieces together:

1. initialize the identity summary (every node a supernode, every edge a
   superedge);
2. for up to ``t_max`` iterations, or until the size budget ``k`` is met:
   group supernodes by shingle (:mod:`repro.core.shingle`), greedily merge
   within each group (:mod:`repro.core.merge`), then adapt the threshold
   (:mod:`repro.core.threshold`);
3. if the budget is still exceeded, drop superedges in increasing order of
   their block cost until it is met (Sect. III-F).

:func:`summarize` is the functional entry point; :class:`Pegasus` wraps it
for callers that reuse one configuration across graphs.  SSumM — the
non-personalized state of the art PeGaSus builds on — is this driver with
uniform weights and the fixed threshold schedule; see
:mod:`repro.baselines.ssumm`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from repro._util import ensure_rng
from repro.core.batch import BatchCostEvaluator
from repro.core.costs import COST_CACHES, CostModel
from repro.core.merge import OBJECTIVES, merge_groups
from repro.core.shingle import candidate_groups
from repro.core.summary import BACKENDS, SummaryGraph
from repro.core.threshold import AdaptiveThreshold, FixedSchedule, ThresholdPolicy
from repro.core.weights import PersonalizedWeights
from repro.errors import BudgetError
from repro.graph.graph import Graph

THRESHOLD_POLICIES = ("adaptive", "fixed")

#: Available merge-evaluation engines (see :mod:`repro.core.batch`).
ENGINES = ("scalar", "batch")


@dataclass(frozen=True)
class PegasusConfig:
    """Hyper-parameters of PeGaSus (defaults follow Sect. V-A).

    Attributes
    ----------
    alpha:
        Degree of personalization ``α ≥ 1`` (paper default 1.25).
    beta:
        Adaptive-threshold quantile ``β ∈ [0, 1]`` (paper default 0.1).
    t_max:
        Maximum number of iterations (paper default 20).
    max_group_size:
        Candidate-group size cap (paper: 500).
    recursive_splits:
        Re-shingling rounds for oversized groups (paper: 10).
    theta_initial:
        Starting threshold (paper: 0.5).
    threshold:
        ``"adaptive"`` (PeGaSus) or ``"fixed"`` (SSumM's ``1/(1+t)``).
    objective:
        ``"relative"`` (Eq. 11) or ``"absolute"`` (Eq. 10, ablation).
    seed:
        RNG seed; ``None`` draws fresh entropy.
    backend:
        Summary-graph storage backend, ``"flat"`` (default, the
        array-native layout) or ``"dict"`` (the original reference
        layout; see :mod:`repro.core.summary`).  Both produce identical
        summaries for the same seed.
    cost_cache:
        Cost-model strategy, ``"incremental"`` (default) or ``"rebuild"``
        (the pre-cache reference path; see :mod:`repro.core.costs`).
    engine:
        Merge-evaluation engine, ``"batch"`` (default; vectorized attempt
        evaluation, see :mod:`repro.core.batch`) or ``"scalar"`` (one
        ``evaluate_merge`` call per pair).  Both replay byte-identical
        merges for the same seed; ``"batch"`` silently runs the scalar
        loop when ``cost_cache="rebuild"`` (no block rows to gather).
    """

    alpha: float = 1.25
    beta: float = 0.1
    t_max: int = 20
    max_group_size: int = 500
    recursive_splits: int = 10
    theta_initial: float = 0.5
    threshold: str = "adaptive"
    objective: str = "relative"
    seed: "int | None" = None
    backend: str = "flat"
    cost_cache: str = "incremental"
    engine: str = "batch"

    def __post_init__(self):
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {self.beta}")
        if self.t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {self.t_max}")
        if self.threshold not in THRESHOLD_POLICIES:
            raise ValueError(f"threshold must be one of {THRESHOLD_POLICIES}")
        if self.objective not in OBJECTIVES:
            raise ValueError(f"objective must be one of {OBJECTIVES}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.cost_cache not in COST_CACHES:
            raise ValueError(f"cost_cache must be one of {COST_CACHES}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")


@dataclass
class PegasusResult:
    """Output of one summarization run.

    ``summary`` is the personalized summary graph; the remaining fields
    record how the run went (used by the scalability and parameter-effect
    experiments).
    """

    summary: SummaryGraph
    weights: PersonalizedWeights
    config: PegasusConfig
    budget_bits: float
    budget_met: bool
    iterations: int
    total_merges: int
    elapsed_seconds: float
    dropped_superedges: int = 0
    theta_trajectory: List[float] = field(default_factory=list)
    size_trajectory: List[float] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Achieved ``Size(G̅)/Size(G)``."""
        return self.summary.compression_ratio()


def _make_threshold(config: PegasusConfig) -> ThresholdPolicy:
    if config.threshold == "adaptive":
        return AdaptiveThreshold(beta=config.beta, initial=config.theta_initial)
    return FixedSchedule(t_max=config.t_max)


def _resolve_budget(graph: Graph, budget_bits: "float | None", compression_ratio: "float | None") -> float:
    if (budget_bits is None) == (compression_ratio is None):
        raise BudgetError("specify exactly one of budget_bits or compression_ratio")
    if budget_bits is not None:
        if budget_bits <= 0:
            raise BudgetError(f"budget_bits must be positive, got {budget_bits}")
        return float(budget_bits)
    if compression_ratio <= 0:
        raise BudgetError(f"compression_ratio must be positive, got {compression_ratio}")
    return float(compression_ratio) * graph.size_in_bits()


def _sparsify(cost_model: CostModel, budget_bits: float) -> int:
    """Drop superedges in increasing block-cost order until the budget is met
    (Sect. III-F).  Returns the number of dropped superedges."""
    summary = cost_model.summary
    size = summary.size_in_bits()
    if size <= budget_bits or summary.num_superedges == 0:
        return 0
    per_edge_bits = 2.0 * math.log2(max(summary.num_supernodes, 2))
    need = int(math.ceil((size - budget_bits) / per_edge_bits))
    order = cost_model.superedge_drop_order()
    dropped = 0
    for _, a, b in order[:need]:
        summary.remove_superedge(a, b)
        dropped += 1
    return dropped


def summarize(
    graph: Graph,
    *,
    targets: "Iterable[int] | np.ndarray | None" = None,
    budget_bits: "float | None" = None,
    compression_ratio: "float | None" = None,
    config: "PegasusConfig | None" = None,
    weights: "PersonalizedWeights | None" = None,
) -> PegasusResult:
    """Summarize *graph* personalized to *targets* within a size budget.

    Parameters
    ----------
    graph:
        Input graph ``G``.
    targets:
        Target node set ``T``; defaults to all nodes (the non-personalized
        setting, where Eq. 1 reduces to plain reconstruction error).
    budget_bits, compression_ratio:
        The budget ``k``, given either directly in bits or as a fraction of
        ``Size(G)`` (Eq. 4).  Exactly one must be provided.
    config:
        Hyper-parameters; defaults to :class:`PegasusConfig()`.
    weights:
        Precomputed :class:`PersonalizedWeights` to reuse across runs (must
        match *graph*; overrides ``targets``/``config.alpha``).

    Returns
    -------
    PegasusResult
        The summary graph plus run diagnostics.
    """
    config = config or PegasusConfig()
    budget = _resolve_budget(graph, budget_bits, compression_ratio)
    if weights is None:
        if targets is None:
            weights = PersonalizedWeights.uniform(graph)
        else:
            weights = PersonalizedWeights(graph, targets, alpha=config.alpha)
    elif weights.graph is not graph:
        raise ValueError("precomputed weights were built for a different graph")

    rng = ensure_rng(config.seed)
    started = time.perf_counter()
    summary = SummaryGraph(graph, backend=config.backend)
    cost_model = CostModel(summary, weights, cache=config.cost_cache)
    evaluator = (
        BatchCostEvaluator(cost_model)
        if config.engine == "batch" and config.cost_cache == "incremental"
        else None
    )
    threshold = _make_threshold(config)

    iterations = 0
    total_merges = 0
    theta_trajectory: List[float] = []
    size_trajectory: List[float] = []
    for t in range(1, config.t_max + 1):
        if summary.size_in_bits() <= budget:
            break
        iterations = t
        theta_trajectory.append(threshold.value)
        groups = candidate_groups(
            summary,
            rng,
            max_group_size=config.max_group_size,
            recursive_splits=config.recursive_splits,
        )
        stats = merge_groups(
            cost_model,
            groups,
            threshold,
            rng,
            objective=config.objective,
            evaluator=evaluator,
        )
        total_merges += stats.merges
        threshold.advance(t + 1)
        size_trajectory.append(summary.size_in_bits())

    dropped = _sparsify(cost_model, budget)
    elapsed = time.perf_counter() - started
    return PegasusResult(
        summary=summary,
        weights=weights,
        config=config,
        budget_bits=budget,
        budget_met=summary.size_in_bits() <= budget,
        iterations=iterations,
        total_merges=total_merges,
        elapsed_seconds=elapsed,
        dropped_superedges=dropped,
        theta_trajectory=theta_trajectory,
        size_trajectory=size_trajectory,
    )


class Pegasus:
    """Reusable façade over :func:`summarize`.

    Example
    -------
    >>> from repro.graph import barabasi_albert
    >>> from repro.core import Pegasus
    >>> graph = barabasi_albert(200, 3, seed=0)
    >>> result = Pegasus(alpha=1.5, seed=0).summarize(
    ...     graph, targets=[0], compression_ratio=0.5)
    >>> result.summary.size_in_bits() <= 0.5 * graph.size_in_bits()
    True
    """

    def __init__(self, **config_kwargs):
        self.config = PegasusConfig(**config_kwargs)

    def summarize(
        self,
        graph: Graph,
        *,
        targets: "Iterable[int] | np.ndarray | None" = None,
        budget_bits: "float | None" = None,
        compression_ratio: "float | None" = None,
        weights: "PersonalizedWeights | None" = None,
    ) -> PegasusResult:
        """See :func:`summarize`."""
        return summarize(
            graph,
            targets=targets,
            budget_bits=budget_bits,
            compression_ratio=compression_ratio,
            config=self.config,
            weights=weights,
        )
