"""The personalized MDL cost model (Eqs. 5–11 of the paper).

The total cost of a summary graph is

    ``Cost(G̅) = Size(G̅) + log2|V| · RE^(T)(G̅)``            (Eq. 5)

and it decomposes over unordered supernode pairs (Eq. 8).  Following
footnote 4, we keep block bookkeeping in *unordered* pair space: one
erroneous unit-weight pair costs ``2·log2|V|`` bits (its row and column),
one superedge costs ``2·log2|S|`` bits.  With the factorized weights
``W_uv = w_u w_v / Z`` (see :mod:`repro.core.weights`) the error of a block
``{A, B}`` needs only

* ``s_A = Σ_{u∈A} w_u`` and ``q_A = Σ_{u∈A} w_u²`` — maintained per
  supernode by :class:`CostModel`, O(1) to update on a merge; and
* ``ew_AB = Σ_{{u,v}∈E, u∈A, v∈B} w_u w_v / Z`` — the per-block edge
  weights.

These are the "new computational tricks ... maintaining additional
information" the paper defers to its online appendix (Sect. III-G).

Block error, unordered-pair space:

* superedge present: ``Π_AB − ew_AB``  (false positives on non-edges)
* superedge absent:  ``ew_AB``          (false negatives on edges)

where ``Π_AB = s_A s_B / Z`` (or ``(s_A² − q_A) / 2Z`` for ``A = B``) is the
total weight of all unordered node pairs in the block.

Caching strategies
------------------

Two strategies compute ``ew_AB``, selected by ``CostModel(cache=...)``:

* ``cache="incremental"`` (default) — every live supernode keeps a dict
  ``{X: ew_AX}`` of block edge weights, built once at O(|E|) and updated
  in O(deg) when a merge commits.  :meth:`evaluate_merge` then runs a
  single fused pass over the two partner dicts (no per-candidate rebuild
  and no scratch dict), which is what makes candidate evaluation
  O(superdegree) instead of O(Σ member degrees) and drives the fig-6/fig-8
  speedups.  Both summary backends share this code path, so their float
  arithmetic — and therefore every merge decision — is bit-identical,
  which the cross-backend equivalence suite relies on.
* ``cache="rebuild"`` — the original strategy: recompute the block edge
  weights of both candidates from the input adjacency on every call
  (the ``O(Σ_{u∈A}|N_u| + Σ_{v∈B}|N_v|)`` of Lemma 1).  Kept as the
  validation reference and as the baseline the benchmarks report
  speedups against.

The two strategies agree to float round-off but not bit-for-bit (sums
associate differently), so per-run reproducibility requires sticking to
one strategy; mixed-strategy comparisons belong in ``pytest.approx``.

Implementation note: the normalizer is folded into the node weights once
(``w' = w / sqrt(Z)``, so ``W_uv = w'_u w'_v`` exactly) and the hot loops
run over plain Python dicts/lists — numpy scalar indexing is an order of
magnitude slower than list indexing, and these loops are the inner kernel
of the whole algorithm.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, List, Tuple

import numpy as np

from repro._util import log2_capped
from repro.core.pricing import (
    MergePlan,
    evaluate_pair,
    evaluate_pair_rebuild,
    superedge_cost_columns,
)
from repro.core.summary import SummaryGraph
from repro.core.weights import PersonalizedWeights
from repro.errors import GraphFormatError

__all__ = ["COST_CACHES", "CostModel", "MergePlan", "personalized_error"]

#: Available block-edge-weight caching strategies for :class:`CostModel`.
COST_CACHES = ("incremental", "rebuild")


class CostModel:
    """Incremental cost bookkeeping for a :class:`SummaryGraph`.

    The model owns the per-supernode weight sums (and, in the default
    ``"incremental"`` mode, the per-supernode block-edge-weight caches) and
    answers the two questions PeGaSus asks while merging (Alg. 2):

    * :meth:`evaluate_merge` — the (relative) cost reduction of a candidate
      pair, plus the optimal superedge set for the union (lines 4–5, 9);
    * :meth:`apply_merge` — commit a previously evaluated plan (lines 6–9).

    All *merges* must flow through :meth:`apply_merge`; merging the summary
    directly desynchronizes the cached sums.  Superedge additions/removals
    on the summary are safe: they change no cached quantity.

    Parameters
    ----------
    summary, weights:
        The live summary graph and the personalized node weights (must be
        built on the same input graph).
    cache:
        Block-edge-weight strategy — ``"incremental"`` (default) or
        ``"rebuild"``; see the module docstring.
    """

    def __init__(
        self,
        summary: SummaryGraph,
        weights: PersonalizedWeights,
        *,
        cache: str = "incremental",
    ):
        if summary.graph is not weights.graph:
            raise ValueError("summary and weights must be built on the same graph")
        if cache not in COST_CACHES:
            raise ValueError(f"cache must be one of {COST_CACHES}, got {cache!r}")
        self.summary = summary
        self.weights = weights
        self.cache = cache
        n = summary.num_nodes
        graph = summary.graph

        scaled = weights.node_weight / math.sqrt(weights.normalizer)
        sum_w = np.zeros(n, dtype=np.float64)
        sum_w2 = np.zeros(n, dtype=np.float64)
        np.add.at(sum_w, summary.supernode_of, scaled)
        np.add.at(sum_w2, summary.supernode_of, scaled * scaled)

        # Python-list mirrors for the scalar-indexed hot loops.
        self._w: List[float] = scaled.tolist()
        self._sw: List[float] = sum_w.tolist()
        self._sq: List[float] = (sum_w2).tolist()
        self._sn: List[int] = summary.supernode_of.tolist()
        indptr, indices = graph.indptr, graph.indices
        index_list = indices.tolist()
        self._adj: List[List[int]] = [
            index_list[indptr[u] : indptr[u + 1]] for u in range(n)
        ]
        self._error_bit_price = 2.0 * log2_capped(max(n, 1))
        self._se_bits = 2.0 * log2_capped(max(summary.num_supernodes, 1))

        self._blocks: "Dict[int, Dict[int, float]] | None" = None
        if cache == "incremental":
            self._blocks = {
                s: self._walk_block_edge_weights(s) for s in summary.supernodes()
            }

    # ------------------------------------------------------------------
    # block primitives
    # ------------------------------------------------------------------
    def _walk_block_edge_weights(self, supernode: int) -> Dict[int, float]:
        """``ew_{A,X}`` recomputed from the input adjacency (Lemma 1)."""
        w, sn, adj = self._w, self._sn, self._adj
        acc: Dict[int, float] = {}
        get = acc.get
        for u in self.summary.member_list(supernode):
            wu = w[u]
            for v in adj[u]:
                x = sn[v]
                acc[x] = get(x, 0.0) + wu * w[v]
        if supernode in acc:
            acc[supernode] *= 0.5  # each within-block edge was visited twice
        return acc

    def block_edge_weights(self, supernode: int) -> Dict[int, float]:
        """``ew_{A,X}`` for every supernode ``X`` with an input edge to *A*.

        The self entry ``ew_{A,A}`` counts each within-block edge once.
        In ``"incremental"`` mode this is a copy of the maintained cache
        (O(superdegree)); in ``"rebuild"`` mode it walks the input edges
        incident to *A* (``O(Σ_{u∈A} |N_u|)``, Lemma 1).
        """
        if self._blocks is not None:
            try:
                return dict(self._blocks[supernode])
            except KeyError:
                raise GraphFormatError(f"supernode {supernode} does not exist") from None
        return self._walk_block_edge_weights(supernode)

    def potential_weight(self, a: int, b: int) -> float:
        """``Π_AB``: total weight of unordered node pairs in block ``{A, B}``."""
        if a == b:
            s = self._sw[a]
            return (s * s - self._sq[a]) * 0.5
        return self._sw[a] * self._sw[b]

    def supernode_weight_sums(self, a: int) -> Tuple[float, float]:
        """``(s_A, q_A)`` — normalizer-scaled weight sums for supernode *A*."""
        return self._sw[a], self._sq[a]

    def _superedge_bits(self) -> float:
        return 2.0 * log2_capped(max(self.summary.num_supernodes, 1))

    def _side_cost(
        self, node: int, acc: Dict[int, float], adjacency: "AbstractSet[int]", se_bits: float
    ) -> float:
        """``Cost_A`` (Eq. 9) given the precomputed block edge weights."""
        sw, sq = self._sw, self._sq
        price = self._error_bit_price
        s_node = sw[node]
        cost = 0.0
        for x, ew in acc.items():
            pi = (s_node * s_node - sq[node]) * 0.5 if x == node else s_node * sw[x]
            if x in adjacency:
                cost += se_bits + price * (pi - ew)
            else:
                cost += price * ew
        for x in adjacency:
            if x not in acc:  # superedge over an edgeless block (baseline-made)
                pi = (s_node * s_node - sq[node]) * 0.5 if x == node else s_node * sw[x]
                cost += se_bits + price * pi
        return cost

    def supernode_cost(self, supernode: int) -> float:
        """``Cost_A = Σ_B Cost_AB`` (Eq. 9); blocks with no edges and no
        superedge contribute zero and are skipped."""
        return self._side_cost(
            supernode,
            self.block_edge_weights(supernode),
            self.summary.superedge_neighbors(supernode),
            self._superedge_bits(),
        )

    def pair_cost(self, a: int, b: int) -> float:
        """``Cost_AB`` (Eq. 6) for the current summary graph."""
        ew = self.block_edge_weights(a).get(b, 0.0)
        pi = self.potential_weight(a, b)
        if self.summary.has_superedge(a, b):
            return self._superedge_bits() + self._error_bit_price * (pi - ew)
        return self._error_bit_price * ew

    # ------------------------------------------------------------------
    # merge evaluation and application (Alg. 2)
    # ------------------------------------------------------------------
    def evaluate_merge(self, a: int, b: int) -> MergePlan:
        """Evaluate merging supernodes *a* and *b* (Eq. 10 and Eq. 11).

        Also computes the optimal superedge set of the union (line 9 of
        Alg. 2): a superedge ``{A∪B, X}`` is kept iff it lowers
        ``Cost_{(A∪B)X}``; ties prefer the sparser summary.

        Delegates to the shared pricing core
        (:func:`repro.core.pricing.evaluate_pair`), whose scalar pass
        defines the bit pattern the batch window kernel reproduces.
        """
        if self._blocks is None:
            return evaluate_pair_rebuild(self, a, b)
        return evaluate_pair(self, a, b)

    def apply_merge(self, plan: MergePlan) -> int:
        """Commit a :class:`MergePlan`; returns the union supernode id.

        The plan must have been produced by :meth:`evaluate_merge` against
        the *current* summary state (merging invalidates other plans that
        share an endpoint or a chosen superedge partner).
        """
        a, b = plan.a, plan.b
        sw, sq, sn = self._sw, self._sq, self._sn
        s_m = sw[a] + sw[b]
        q_m = sq[a] + sq[b]

        blocks = self._blocks
        merged: "Dict[int, float] | None" = None
        if blocks is not None:
            acc_a = blocks.pop(a)
            acc_b = blocks.pop(b)
            merged = {}
            for x, ew in acc_a.items():
                if x != a and x != b:
                    merged[x] = ew
            get_m = merged.get
            for x, ew in acc_b.items():
                if x != a and x != b:
                    merged[x] = get_m(x, 0.0) + ew
            ew_self = acc_a.get(a, 0.0) + acc_b.get(b, 0.0) + acc_a.get(b, 0.0)

        absorbed = list(self.summary.member_list(b))
        union, _former = self.summary.merge_supernodes(a, b)
        dead = b if union == a else a
        for u in absorbed:
            sn[u] = union
        sw[union], sq[union] = s_m, q_m
        sw[dead], sq[dead] = 0.0, 0.0
        for x in plan.superedges:
            self.summary.add_superedge(union, x)
        if plan.self_loop:
            self.summary.add_superedge(union, union)

        if merged is not None:
            # Re-key every partner's cache entry to the union id.  Setting
            # the partner-side value from `merged` keeps the symmetry
            # invariant ``blocks[X][A] == blocks[A][X]`` exact.
            for x, ew in merged.items():
                d = blocks[x]
                d.pop(a, None)
                d.pop(b, None)
                d[union] = ew
            if ew_self:
                merged[union] = ew_self
            blocks[union] = merged
            self._se_bits = 2.0 * log2_capped(max(self.summary.num_supernodes, 1))
        return union

    # ------------------------------------------------------------------
    # whole-summary quantities (for tests, sparsification, and reporting)
    # ------------------------------------------------------------------
    def superedge_drop_order(self) -> List[Tuple[float, int, int]]:
        """All superedges as ``(Cost_AB, A, B)`` sorted ascending (Sect. III-F).

        Ties on the cost are broken by the ``(A, B)`` endpoint pair, so the
        drop order is deterministic and identical across summary backends.

        Vectorized: block costs are priced columnwise from the summary's
        packed superedge export (:meth:`SummaryGraph.superedge_arrays`)
        and ordered with one ``np.lexsort`` — same values, same total
        order as the original per-edge Python sort (pinned by
        ``tests/core/test_costs.py``).
        """
        summary = self.summary
        lo, hi, _weights = summary.superedge_arrays()
        if lo.size == 0:
            return []
        se_bits = self._superedge_bits()
        price = self._error_bit_price
        n = summary.num_nodes
        # ew_AB per superedge block, matching _blockwise_edge_weights'
        # bincount arithmetic bit for bit.
        ew = np.zeros(lo.size, dtype=np.float64)
        edges = summary.graph.edge_array()
        if edges.size:
            sn = summary.supernode_of
            w = self.weights.node_weight
            z = self.weights.normalizer
            end_a = sn[edges[:, 0]]
            end_b = sn[edges[:, 1]]
            key = np.minimum(end_a, end_b) * np.int64(n) + np.maximum(end_a, end_b)
            contrib = w[edges[:, 0]] * w[edges[:, 1]] / z
            uniq, inverse = np.unique(key, return_inverse=True)
            sums = np.bincount(inverse, weights=contrib)
            se_key = lo * np.int64(n) + hi
            pos = np.minimum(np.searchsorted(uniq, se_key), uniq.size - 1)
            ew = np.where(uniq[pos] == se_key, sums[pos], 0.0)
        sw = np.asarray(self._sw, dtype=np.float64)
        sq = np.asarray(self._sq, dtype=np.float64)
        s_lo = sw[lo]
        s_hi = sw[hi]
        # potential_weight(), columnwise: self blocks use (s² − q)/2.
        pi = np.where(lo == hi, (s_lo * s_lo - sq[lo]) * 0.5, s_lo * s_hi)
        # Every block here carries a superedge by construction, so the
        # shared pricing core's superedge branch is the whole cost.
        cost = superedge_cost_columns(pi, ew, se_bits, price)
        order = np.lexsort((hi, lo, cost))
        return list(
            zip(cost[order].tolist(), lo[order].tolist(), hi[order].tolist())
        )

    def total_cost(self) -> float:
        """``Cost(G̅)`` (Eq. 5) computed exactly — O(|E| + |P|)."""
        n = self.summary.num_nodes
        return self.summary.size_in_bits() + log2_capped(max(n, 1)) * personalized_error(
            self.summary, self.weights
        )


def _blockwise_edge_weights(
    summary: SummaryGraph, weights: PersonalizedWeights
) -> Dict[Tuple[int, int], float]:
    """Normalized ``ew`` for every supernode block with at least one edge."""
    graph = summary.graph
    edges = graph.edge_array()
    if edges.size == 0:
        return {}
    sn = summary.supernode_of
    w = weights.node_weight
    z = weights.normalizer
    a = sn[edges[:, 0]]
    b = sn[edges[:, 1]]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    key = lo * np.int64(summary.num_nodes) + hi
    contrib = w[edges[:, 0]] * w[edges[:, 1]] / z
    uniq, inverse = np.unique(key, return_inverse=True)
    sums = np.bincount(inverse, weights=contrib)
    n = summary.num_nodes
    return {(int(k // n), int(k % n)): float(s) for k, s in zip(uniq.tolist(), sums.tolist())}


def personalized_error(summary: SummaryGraph, weights: PersonalizedWeights) -> float:
    """Exact personalized error ``RE^(T)(G̅)`` (Eq. 1, ordered-pair sum).

    Works for any summary graph over the weights' input graph, including the
    weighted summaries produced by baselines (weights on superedges are
    ignored: reconstruction is presence/absence, as in Sect. II-A).
    Superedges are folded in sorted order so the result is bit-identical
    across summary backends.
    """
    if summary.graph is not weights.graph and summary.graph != weights.graph:
        raise ValueError("summary and weights must describe the same graph")
    block_ew = _blockwise_edge_weights(summary, weights)
    sum_w = np.zeros(summary.num_nodes, dtype=np.float64)
    sum_w2 = np.zeros(summary.num_nodes, dtype=np.float64)
    np.add.at(sum_w, summary.supernode_of, weights.node_weight)
    np.add.at(sum_w2, summary.supernode_of, weights.node_weight_sq)
    z = weights.normalizer

    def potential(a: int, b: int) -> float:
        if a == b:
            return float((sum_w[a] * sum_w[a] - sum_w2[a]) / (2.0 * z))
        return float(sum_w[a] * sum_w[b] / z)

    error = 0.0
    seen_blocks = set()
    for a, b in sorted(summary.superedges()):
        key = (a, b) if a <= b else (b, a)
        seen_blocks.add(key)
        error += potential(a, b) - block_ew.get(key, 0.0)
    for key, ew in block_ew.items():
        if key not in seen_blocks:
            error += ew
    return 2.0 * error
