"""Save and load summary graphs.

A summary graph is what actually gets shipped to a machine's memory in the
distributed application, so it needs a serialization format.  The format
is a plain text file:

.. code-block:: text

    # repro summary graph v1
    G <num_nodes> <weighted:0|1>
    S <supernode_id> <member> <member> ...
    P <a> <b> [weight]

One ``S`` line per supernode, one ``P`` line per superedge (self-loops as
``a == b``).  Node order inside an ``S`` line is irrelevant.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

_HEADER = "# repro summary graph v1"


def save_summary(summary: SummaryGraph, path: "str | os.PathLike[str]") -> None:
    """Write *summary* to *path* in the v1 text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_HEADER + "\n")
        handle.write(f"G {summary.num_nodes} {1 if summary.is_weighted else 0}\n")
        for supernode in sorted(summary.supernodes()):
            members = " ".join(str(u) for u in sorted(summary.member_list(supernode)))
            handle.write(f"S {supernode} {members}\n")
        for a, b in sorted(summary.superedges()):
            if summary.is_weighted:
                handle.write(f"P {a} {b} {summary.superedge_weight(a, b)!r}\n")
            else:
                handle.write(f"P {a} {b}\n")


def load_summary(
    path: "str | os.PathLike[str]", graph: Graph, *, backend: str = "dict"
) -> SummaryGraph:
    """Read a summary of *graph* from *path*.

    The input graph must be supplied separately (the summary stores only
    the partition and superedges, as in Eq. 3's size accounting).  The
    *backend* keyword selects the storage backend of the loaded summary;
    the on-disk format is backend-agnostic, so a summary saved from either
    backend loads into either.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or lines[0] != _HEADER:
        raise GraphFormatError(f"{path}: not a repro summary file")
    if len(lines) < 2 or not lines[1].startswith("G "):
        raise GraphFormatError(f"{path}: missing G header line")
    _, num_nodes_str, weighted_str = lines[1].split()
    num_nodes = int(num_nodes_str)
    weighted = weighted_str == "1"
    if num_nodes != graph.num_nodes:
        raise GraphFormatError(
            f"{path}: summary is for {num_nodes} nodes, graph has {graph.num_nodes}"
        )

    assignment = np.full(num_nodes, -1, dtype=np.int64)
    superedges = []
    for lineno, line in enumerate(lines[2:], start=3):
        if not line.strip():
            continue
        parts = line.split()
        if parts[0] == "S":
            supernode = int(parts[1])
            for member in parts[2:]:
                assignment[int(member)] = supernode
        elif parts[0] == "P":
            weight = float(parts[3]) if len(parts) > 3 else None
            superedges.append((int(parts[1]), int(parts[2]), weight))
        else:
            raise GraphFormatError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if np.any(assignment < 0):
        raise GraphFormatError(f"{path}: partition does not cover all nodes")

    try:
        return SummaryGraph.from_parts(
            graph,
            assignment,
            superedges,
            weighted=weighted,
            backend=backend,
            validate=True,
        )
    except GraphFormatError as exc:
        raise GraphFormatError(f"{path}: {exc}") from None
