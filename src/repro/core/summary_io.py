"""Save and load summary graphs.

A summary graph is what actually gets shipped to a machine's memory in the
distributed application, so it needs a serialization format.  Two formats
live side by side:

* the **v1 text format** (this module) — human-readable, line-oriented:

  .. code-block:: text

      # repro summary graph v1
      G <num_nodes> <weighted:0|1>
      S <supernode_id> <member> <member> ...
      P <a> <b> [weight]

  One ``S`` line per supernode, one ``P`` line per superedge (self-loops
  as ``a == b``).  Node order inside an ``S`` line is irrelevant.

* the **binary store format** (:mod:`repro.store`) — checksummed,
  memory-mappable columnar sections; :func:`save_summary_binary` /
  :func:`load_summary_binary` here are thin conveniences over it so
  callers that already import ``summary_io`` get both formats from one
  place.  The two are round-trip equivalent (pinned by
  ``tests/store/test_roundtrip.py``); ``repro convert`` translates
  between them.

Both writers are **crash-atomic**: they write to a temporary file in the
destination directory and publish with :func:`os.replace`, so an
exception or kill mid-write leaves any previous file at the destination
untouched.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

_HEADER = "# repro summary graph v1"


def save_summary(summary: SummaryGraph, path: "str | os.PathLike[str]") -> None:
    """Write *summary* to *path* in the v1 text format, crash-atomically.

    The file appears at *path* only once fully written and flushed; a
    failure at any point leaves a previous file at *path* intact.
    """
    directory = os.path.dirname(os.path.abspath(os.fspath(path))) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(os.fspath(path)) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(_HEADER + "\n")
            handle.write(f"G {summary.num_nodes} {1 if summary.is_weighted else 0}\n")
            for supernode in sorted(summary.supernodes()):
                members = " ".join(str(u) for u in sorted(summary.member_list(supernode)))
                handle.write(f"S {supernode} {members}\n")
            for a, b in sorted(summary.superedges()):
                if summary.is_weighted:
                    handle.write(f"P {a} {b} {summary.superedge_weight(a, b)!r}\n")
                else:
                    handle.write(f"P {a} {b}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _parse_id(token: str, num_nodes: int, path: str, lineno: int, what: str) -> int:
    """Parse a node/supernode id and range-check it against ``num_nodes``.

    Ids outside ``[0, num_nodes)`` must be rejected here: a *negative*
    member id fed straight into ``assignment[int(member)]`` would wrap
    around via numpy's negative indexing and silently corrupt the
    partition instead of failing.
    """
    try:
        value = int(token)
    except ValueError:
        raise GraphFormatError(f"{path}:{lineno}: {what} {token!r} is not an integer") from None
    if not 0 <= value < num_nodes:
        raise GraphFormatError(
            f"{path}:{lineno}: {what} {value} out of range [0, {num_nodes})"
        )
    return value


def load_summary(
    path: "str | os.PathLike[str]", graph: Graph, *, backend: str = "dict"
) -> SummaryGraph:
    """Read a summary of *graph* from *path*.

    The input graph must be supplied separately (the summary stores only
    the partition and superedges, as in Eq. 3's size accounting).  The
    *backend* keyword selects the storage backend of the loaded summary;
    the on-disk format is backend-agnostic, so a summary saved from either
    backend loads into either.

    The file is untrusted input: malformed headers, non-numeric tokens,
    out-of-range or negative ids, and doubly-assigned nodes all raise
    :class:`~repro.errors.GraphFormatError` with the offending line
    number — never a raw ``ValueError``/``IndexError``, and never a
    silently wrong partition.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or lines[0] != _HEADER:
        raise GraphFormatError(f"{path}: not a repro summary file")
    if len(lines) < 2 or not lines[1].startswith("G "):
        raise GraphFormatError(f"{path}: missing G header line")
    header_parts = lines[1].split()
    if len(header_parts) != 3:
        raise GraphFormatError(
            f"{path}:2: G header must be 'G <num_nodes> <weighted:0|1>', got {lines[1]!r}"
        )
    try:
        num_nodes = int(header_parts[1])
    except ValueError:
        raise GraphFormatError(
            f"{path}:2: node count {header_parts[1]!r} is not an integer"
        ) from None
    if num_nodes < 0:
        raise GraphFormatError(f"{path}:2: node count must be >= 0, got {num_nodes}")
    if header_parts[2] not in ("0", "1"):
        raise GraphFormatError(
            f"{path}:2: weighted flag must be 0 or 1, got {header_parts[2]!r}"
        )
    weighted = header_parts[2] == "1"
    if num_nodes != graph.num_nodes:
        raise GraphFormatError(
            f"{path}: summary is for {num_nodes} nodes, graph has {graph.num_nodes}"
        )

    assignment = np.full(num_nodes, -1, dtype=np.int64)
    superedges = []
    for lineno, line in enumerate(lines[2:], start=3):
        if not line.strip():
            continue
        parts = line.split()
        if parts[0] == "S":
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: S record without a supernode id")
            supernode = _parse_id(parts[1], num_nodes, path, lineno, "supernode id")
            for token in parts[2:]:
                member = _parse_id(token, num_nodes, path, lineno, "member id")
                if assignment[member] >= 0:
                    raise GraphFormatError(
                        f"{path}:{lineno}: node {member} assigned to more than one supernode"
                    )
                assignment[member] = supernode
        elif parts[0] == "P":
            if len(parts) not in (3, 4):
                raise GraphFormatError(
                    f"{path}:{lineno}: P record must be 'P <a> <b> [weight]', got {line!r}"
                )
            a = _parse_id(parts[1], num_nodes, path, lineno, "superedge endpoint")
            b = _parse_id(parts[2], num_nodes, path, lineno, "superedge endpoint")
            weight = None
            if len(parts) > 3:
                try:
                    weight = float(parts[3])
                except ValueError:
                    raise GraphFormatError(
                        f"{path}:{lineno}: superedge weight {parts[3]!r} is not a number"
                    ) from None
            superedges.append((a, b, weight))
        else:
            raise GraphFormatError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if np.any(assignment < 0):
        raise GraphFormatError(f"{path}: partition does not cover all nodes")

    try:
        return SummaryGraph.from_parts(
            graph,
            assignment,
            superedges,
            weighted=weighted,
            backend=backend,
            validate=True,
        )
    except GraphFormatError as exc:
        raise GraphFormatError(f"{path}: {exc}") from None


def save_summary_binary(
    summary: SummaryGraph, path: "str | os.PathLike[str]", *, include_graph: bool = True
) -> None:
    """Write *summary* to *path* in the binary store format, crash-atomically.

    Convenience re-export of :func:`repro.store.save_summary_binary` (the
    import is deferred to keep :mod:`repro.core` free of a package cycle);
    see there for the section layout and the *include_graph* trade-off.
    """
    from repro.store import save_summary_binary as _save

    _save(summary, path, include_graph=include_graph)


def load_summary_binary(
    path: "str | os.PathLike[str]",
    graph: "Graph | None" = None,
    *,
    backend: str = "mapped",
    verify: bool = True,
) -> SummaryGraph:
    """Read a binary summary store from *path*.

    Convenience re-export of :func:`repro.store.load_summary_binary`:
    ``backend="mapped"`` (default) returns a zero-copy read-only view,
    ``"dict"``/``"flat"`` materialize the same mutable structures
    :func:`load_summary` builds from the text format.
    """
    from repro.store import load_summary_binary as _load

    return _load(path, graph, backend=backend, verify=verify)
