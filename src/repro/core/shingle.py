"""Shingle-based candidate generation (Sect. III-C of the paper).

Supernodes are grouped so that only pairs with similar connectivity — the
pairs whose merger is likely to reduce cost — are considered for merging.
The grouping uses min-hash *shingles*: with a uniform random permutation
``f : V → {1..|V|}``, the shingle of a node is the minimum of ``f`` over its
closed neighborhood, and the shingle of a supernode ``U`` is

    ``F(U) = min_{u ∈ U} min_{v ∈ N_u ∪ {u}} f(v)``          (Eq. 12)

Two supernodes share a shingle with probability equal to the Jaccard
similarity of their (closed) neighborhoods, so same-shingle groups collect
similar supernodes.  Oversized groups are split recursively with fresh
hash functions (at most ``recursive_splits`` rounds, paper: 10) and then
randomly chopped to ``max_group_size`` (paper: 500).  Each PeGaSus
iteration reseeds the hash, so the search space is explored across
iterations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._util import ensure_rng
from repro.core.summary import SummaryGraph
from repro.graph.graph import Graph


def node_shingles(graph: Graph, rng: "int | np.random.Generator | None" = None) -> np.ndarray:
    """Per-node shingles ``min_{v ∈ N_u ∪ {u}} f(v)`` for a fresh random ``f``.

    Vectorized over the CSR structure: O(|V| + |E|).
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    f = rng.permutation(n).astype(np.int64) + 1  # values in 1..n
    neighbor_min = np.full(n, n + 1, dtype=np.int64)
    nonempty = np.flatnonzero(np.diff(graph.indptr) > 0)
    if nonempty.size:
        values = f[graph.indices]
        neighbor_min[nonempty] = np.minimum.reduceat(values, graph.indptr[nonempty])
    return np.minimum(f, neighbor_min)


def _supernode_shingles(summary: SummaryGraph, node_sh: np.ndarray) -> np.ndarray:
    """``F(U)`` per supernode id (Eq. 12); dead ids keep the sentinel."""
    n = summary.num_nodes
    shingles = np.full(n, n + 2, dtype=np.int64)
    np.minimum.at(shingles, summary.supernode_of, node_sh)
    return shingles


def _split_by_value(ids: np.ndarray, values: np.ndarray) -> List[np.ndarray]:
    """Partition *ids* into runs of equal *values* (order not significant)."""
    order = np.argsort(values, kind="stable")
    sorted_ids = ids[order]
    sorted_vals = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
    return np.split(sorted_ids, boundaries)


def candidate_groups(
    summary: SummaryGraph,
    rng: "int | np.random.Generator | None" = None,
    *,
    max_group_size: int = 500,
    recursive_splits: int = 10,
) -> List[np.ndarray]:
    """Candidate groups ``{C_1, ..., C_q}`` for one PeGaSus iteration.

    Returns arrays of supernode ids, each of size in ``[2, max_group_size]``;
    singleton shingle-groups are dropped (nothing to merge within them).
    """
    if max_group_size < 2:
        raise ValueError(f"max_group_size must be >= 2, got {max_group_size}")
    rng = ensure_rng(rng)
    alive = np.asarray(summary.supernodes(), dtype=np.int64)
    if alive.size < 2:
        return []
    final: List[np.ndarray] = []
    oversized: List[np.ndarray] = [alive]
    rounds = max(recursive_splits, 1)
    for _ in range(rounds):
        if not oversized:
            break
        shingles = _supernode_shingles(summary, node_shingles(summary.graph, rng))
        next_oversized: List[np.ndarray] = []
        for group in oversized:
            for piece in _split_by_value(group, shingles[group]):
                if piece.size < 2:
                    continue
                if piece.size <= max_group_size:
                    final.append(piece)
                else:
                    next_oversized.append(piece)
        # A split that made no progress (all members share every shingle)
        # would loop forever on identical-connectivity supernodes; the
        # random chop below handles whatever survives the rounds.
        oversized = next_oversized
    for group in oversized:
        shuffled = group.copy()
        rng.shuffle(shuffled)
        for start in range(0, shuffled.size, max_group_size):
            piece = shuffled[start : start + max_group_size]
            if piece.size >= 2:
                final.append(piece)
    return final
