"""The fused columnar window kernel for Alg. 2's inner loop.

The scalar engine evaluates each sampled candidate pair with one
:meth:`~repro.core.costs.CostModel.evaluate_merge` call — the shared
pricing core's fused Python pass over the two endpoints' block-edge-weight
rows (:func:`repro.core.pricing.evaluate_pair`).  That loop is the
summarize phase's hot spot: thousands of pairs per PeGaSus iteration, each
paying Python-level dict iteration and scalar float arithmetic.

:class:`BatchCostEvaluator` prices **a whole batch of candidate pairs in
a handful of numpy passes**.  Failed attempts mutate nothing (the
summary, the block rows, and the superedge bit price ``2·log2|S|`` are
exactly as before), and >90% of attempts fail, so the merge loop
(:func:`repro.core.merge.merge_groups`) speculatively draws an AIMD
window of attempts ahead, prices the window's not-yet-cached ordered
pairs in one :meth:`BatchCostEvaluator.evaluate_scores` call, and
resolves the attempts against an epoch-scoped pair→score cache.
:meth:`BatchCostEvaluator.evaluate_window` packages the same kernel as a
one-call window evaluator — dedup, pricing, and per-attempt first-wins
selection fused end to end (this is what the call-count bench measures).
One fused evaluation is:

1. *dedup* — attempts are deduplicated to the scalar ``seen``-set
   semantics with one ``np.unique`` over per-attempt unordered index-pair
   keys, and the union of *ordered* candidate pairs across attempts is
   reduced to distinct pairs with a second ``np.unique`` (orientation
   matters: the scalar accumulation order, hence the low bits, depends
   on it);
2. *join* (``merge.fused_join`` probe) — each touched supernode's row
   lives in the log-structured :class:`_RowStore` (exported once into
   columnar ``(partner, weight, has_superedge)`` buffers, reused across
   epochs, invalidated and lazily re-exported only when a merge touches
   the supernode); the pair rows are fancy-indexed into one flat element
   array laid out ``[row_A(pair 0), row_B(pair 0), row_A(pair 1), ...]``
   and **one concatenated** ``searchsorted`` — element partner queries
   and the pairs' ``{a,b}`` cross-block queries in a single buffer —
   resolves every lookup against the store's sorted row segments;
3. *reduce* (``merge.fused_reduce`` probe) — the Eq. 9/10 arithmetic is
   folded directly into one segmented reduce: every before-merge term
   (row elements and the ``{a,a}``/``{b,b}``/``{a,b}`` tails) and every
   merged-side term (optimal-superedge blocks and the self loop) is
   priced branch-free by the shared pricing core
   (:func:`~repro.core.pricing.block_cost_masked` /
   :func:`~repro.core.pricing.merged_cost_masked`) into one stacked
   weight array, and a single ``np.bincount`` accumulates both the
   ``before`` and ``merged`` sums of every pair (bins ``p`` and
   ``num_pairs + p``) sequentially in element order;
4. *first-wins argmax* — each attempt's winner is selected with one
   vectorized first-wins maximum (``np.fmax.reduceat`` +
   ``np.minimum.reduceat`` over the attempt segments).

Index bookkeeping between those passes (segment offsets, gather indices,
interleaved layouts) runs on preallocated scratch and iota buffers with
ndarray methods and operator arithmetic, so a steady-state window issues
**under ten numpy-API calls** regardless of its size — measured, not
asserted, by the counting shim in ``benchmarks/bench_merge_micro.py``
(the old per-attempt evaluator issued ~100, whose fixed dispatch
overhead kept sparse graphs at parity and motivated a profitability
gate; both are gone — see below).

The merge loop resolves the attempts sequentially against the
threshold; a committed merge ends the pricing epoch (``|S|`` shrinks,
repricing every superedge bit), drops the score cache, and rewinds the
un-consumed speculative RNG draws.  Only a committing merge needs the
winning pair's full :class:`~repro.core.costs.MergePlan`, rebuilt with
one scalar ``evaluate_merge`` call (bit-identical by the shared pricing
core's contract).  Tiny miss batches skip numpy entirely and are priced
through the core's Python entry point — same doubles, no dispatch floor
(:data:`repro.core.merge.SMALL_MISS_PAIRS`).

Byte-identical replay contract
------------------------------

The batch engine is not "close to" the scalar engine — it is pinned to
replay **bit-identical** merge decisions for the same seed, on both
storage backends, both objectives, and both threshold policies
(``tests/core/test_engine_equivalence.py``).  Three properties make that
possible:

* every elementwise term is the same IEEE-754 double expression, in the
  same association order, as the scalar pass — both consume the pricing
  core, and the branch-free mask selection is bitwise-equal to the
  scalar branches (see :mod:`repro.core.pricing`);
* per-pair sums accumulate **in the same element order** as the scalar
  ``+=`` sequence: rows are gathered in dict-insertion order and
  ``np.bincount`` adds its weights strictly left to right (terms the
  scalar code never adds are emitted as ``±0.0``, which is bitwise
  neutral — the accumulator can never itself be ``-0.0``);
* the RNG is consumed identically (one
  :func:`~repro.core.merge._sample_pairs` draw per attempt; index-pair
  dedup keeps first occurrences in sample order), so both engines see the
  same candidate sequence.

The retired profitability gate
------------------------------

Earlier revisions kept a gate (``min_batch_elements``) that routed
short-row candidate groups to the scalar loop, because ~100 numpy calls
of fixed overhead per window outweighed the vectorization win on sparse
graphs.  The fused kernel removed the call floor, the gate lost its
reason to exist, and ``engine="batch"`` is now unconditional.
:data:`DEFAULT_MIN_BATCH_ELEMENTS` and the constructor knob survive as
accepted-but-ignored compatibility vestiges only.

When the scalar engine is still used
------------------------------------

* ``cost_cache="rebuild"`` has no maintained block rows to gather, so
  ``engine="batch"`` silently degrades to the scalar loop there;
* windows touching a supernode with a superedge over an *edgeless*
  block (only baseline-made summaries have those; a ``summarize()`` run
  never does) fall back to the scalar loop, which prices those blocks
  with its fixup scans.

Either path yields the same bits, so both are purely performance /
coverage knobs, not semantic ones.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional, Tuple

import numpy as np

from repro.core.costs import CostModel, MergePlan
from repro.core.pricing import block_cost_masked, merged_cost_masked
from repro.errors import GraphFormatError
from repro.obs.profile import probe

#: Retired profitability gate (kept as an accepted-but-ignored
#: compatibility knob): the fused window kernel's numpy-call floor is
#: gone, so the vectorized path is unconditional and the gate value is
#: never consulted.
DEFAULT_MIN_BATCH_ELEMENTS = 0

#: One speculative window of attempts: ``(members, first, second)`` per
#: attempt — the candidate group's member array and its
#: ``_sample_pairs`` index draw.
WindowAttempts = List[Tuple[np.ndarray, np.ndarray, np.ndarray]]

#: Per-attempt window result: ``(best_scores, best_a, best_b,
#: eval_counts)``; ``None`` signals the unclean-row scalar fallback.
WindowResult = Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]


def _member(sorted_keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Exact-membership mask of *queries* against a sorted key table."""
    if sorted_keys.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_keys, queries), sorted_keys.size - 1)
    return sorted_keys[pos] == queries


class _RowStore:
    """Append-only columnar store of block-edge-weight row exports.

    Each live supernode's row is exported once into six parallel global
    buffers — ``part``/``val``/``flag`` in dict-insertion order (the
    scalar engine's accumulation order) and ``skey``/``sval``/``sflag``
    partner-sorted, keyed by ``supernode · |V| + partner`` so that the
    segments of any ascending supernode set concatenate to a globally
    sorted lookup table.  ``flag`` marks partners that carry a superedge.
    Rows whose supernode a merge touches are *invalidated* (length −1)
    and lazily re-exported at the end of the buffers — log-structured, so
    live offsets stay valid across epochs and window evaluation gathers
    rows with pure numpy segment indexing, no per-window Python assembly
    and no rebuilds.

    ``clean[s]`` is False when some superedge of *s* spans an edgeless
    (or zero-weight) block — the baseline-summary corner the vectorized
    pricing does not model, forcing a scalar fallback.
    """

    __slots__ = (
        "_n", "_cap", "_end", "off", "length", "clean", "any_unclean",
        "part", "val", "flag", "skey", "sval", "sflag",
    )

    def __init__(self, num_nodes: int, initial_capacity: int = 1024):
        self._n = num_nodes
        size = max(num_nodes, 1)
        self.off = np.zeros(size, dtype=np.int64)
        self.length = np.full(size, -1, dtype=np.int64)  # -1 = stale / unexported
        self.clean = np.ones(size, dtype=bool)
        #: Sticky: has *any* export ever been unclean?  Summarize-made
        #: summaries never trip it, letting the window kernel skip the
        #: per-window clean gather entirely.
        self.any_unclean = False
        cap = max(initial_capacity, 16)
        self._cap = cap
        self._end = 0
        self.part = np.empty(cap, dtype=np.int64)
        self.val = np.empty(cap, dtype=np.float64)
        self.flag = np.empty(cap, dtype=bool)
        self.skey = np.empty(cap, dtype=np.int64)
        self.sval = np.empty(cap, dtype=np.float64)
        self.sflag = np.empty(cap, dtype=bool)

    def _reserve(self, extra: int) -> None:
        need = self._end + extra
        if need <= self._cap:
            return
        cap = max(self._cap * 2, need)
        for name in ("part", "val", "flag", "skey", "sval", "sflag"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: self._end] = old[: self._end]
            setattr(self, name, grown)
        self._cap = cap

    def export(
        self, supernode: int, acc: Dict[int, float], neighbors: AbstractSet[int]
    ) -> None:
        """(Re-)export one supernode's row at the end of the buffers.

        *neighbors* is the supernode's superedge-neighbor set.  Short rows
        (the overwhelmingly common case on sparse graphs — a handful of
        block partners) are assembled in plain Python, which beats the
        numpy construction path by ~4× at these sizes; long rows take the
        vectorized path.  Both produce byte-identical buffer contents.
        """
        count = len(acc)
        self._reserve(count)
        start = self._end
        end = start + count
        key_base = supernode * self._n
        if count <= 16:
            part = list(acc.keys())
            val = list(acc.values())
            flag = [x in neighbors for x in part]
            order = sorted(range(count), key=part.__getitem__)
            self.part[start:end] = part
            self.val[start:end] = val
            self.flag[start:end] = flag
            self.skey[start:end] = [part[i] + key_base for i in order]
            self.sval[start:end] = [val[i] for i in order]
            self.sflag[start:end] = [flag[i] for i in order]
            clean = True
            for x in neighbors:
                if x != supernode:
                    w = acc.get(x)
                    if w is None or w == 0.0:
                        clean = False
                        break
        else:
            part_arr = np.fromiter(acc.keys(), dtype=np.int64, count=count)
            val_arr = np.fromiter(acc.values(), dtype=np.float64, count=count)
            order_arr = np.argsort(part_arr)
            part_sorted = part_arr[order_arr]
            val_sorted = val_arr[order_arr]
            adj_sorted = np.sort(
                np.fromiter(neighbors, dtype=np.int64, count=len(neighbors))
            )
            flag_sorted = _member(adj_sorted, part_sorted)
            flag_arr = np.empty(count, dtype=bool)
            flag_arr[order_arr] = flag_sorted
            self.part[start:end] = part_arr
            self.val[start:end] = val_arr
            self.flag[start:end] = flag_arr
            self.skey[start:end] = part_sorted + np.int64(key_base)
            self.sval[start:end] = val_sorted
            self.sflag[start:end] = flag_sorted
            nonself = adj_sorted[adj_sorted != supernode] if adj_sorted.size else adj_sorted
            if nonself.size == 0:
                clean = True
            else:
                pos = np.minimum(np.searchsorted(part_sorted, nonself), count - 1)
                clean = bool(
                    np.all((part_sorted[pos] == nonself) & (val_sorted[pos] != 0.0))
                )
        self.off[supernode] = start
        self.length[supernode] = count
        self.clean[supernode] = clean
        if not clean:
            self.any_unclean = True
        self._end = end


class BatchCostEvaluator:
    """Fused window evaluation over a ``cache="incremental"`` cost model.

    The evaluator owns numpy mirrors of the cost model's per-supernode
    weight sums plus cached columnar exports of the block-edge-weight
    rows.  All merges must flow through :meth:`apply_merge` (which wraps
    :meth:`CostModel.apply_merge`) so the mirrors and caches stay
    synchronized.

    Parameters
    ----------
    cost_model:
        The live cost model; must use the incremental block cache.
    min_batch_elements:
        Retired profitability-gate knob, accepted and recorded for
        compatibility but never consulted: the fused kernel's numpy-call
        floor is low enough that the vectorized path wins at every row
        length, so batching is unconditional.
    """

    def __init__(self, cost_model: CostModel, *, min_batch_elements: Optional[int] = None):
        if cost_model._blocks is None:
            raise GraphFormatError(
                "BatchCostEvaluator requires CostModel(cache='incremental')"
            )
        self._cm = cost_model
        self._n = cost_model.summary.num_nodes
        self._n64 = np.int64(self._n)  # hoisted off the per-window path
        self._sw = np.asarray(cost_model._sw, dtype=np.float64)
        self._sq = np.asarray(cost_model._sq, dtype=np.float64)
        self.min_batch_elements = (
            DEFAULT_MIN_BATCH_ELEMENTS
            if min_batch_elements is None
            else int(min_batch_elements)
        )
        size = max(self._n, 1)
        # Eagerly maintained per-supernode scalars: the self block's
        # weight / self-loop flag (the tail terms of every evaluation).
        self._self_w = np.zeros(size, dtype=np.float64)
        self._self_adj = np.zeros(size, dtype=bool)
        summary = cost_model.summary
        for s, acc in cost_model._blocks.items():
            self._self_w[s] = acc.get(s, 0.0)
            self._self_adj[s] = s in summary.superedge_neighbors(s)
        #: Global append-only columnar row store (see :class:`_RowStore`);
        #: rows are exported lazily and invalidated by apply_merge.
        self._store = _RowStore(self._n, initial_capacity=4 * summary.graph.num_edges + 16)
        # Reusable scratch (grown geometrically, sliced per window) and
        # one shared iota ramp: the index bookkeeping between the fused
        # passes — interleaved layouts, gather offsets, stacked pricing
        # inputs — runs on these with setitem/method/operator arithmetic,
        # which is what keeps the per-window numpy-API call count in the
        # single digits.
        self._bufs: Dict[str, np.ndarray] = {}
        self._iota_buf = np.arange(1024, dtype=np.int64)

    # ------------------------------------------------------------------
    # scratch management
    # ------------------------------------------------------------------
    def _scratch(self, name: str, size: int, dtype: type) -> np.ndarray:
        """A reusable buffer of at least *size*, sliced to exactly *size*.

        Contents are undefined on entry; callers overwrite every slot
        they feed onward.  Returned views alias the shared buffers and
        are only valid until the next evaluation call.
        """
        buf = self._bufs.get(name)
        if buf is None or buf.size < size:
            cap = max(size, 16 if buf is None else 2 * buf.size)
            self._bufs[name] = buf = np.empty(cap, dtype=dtype)
        return buf[:size]

    def _iota(self, size: int) -> np.ndarray:
        """The shared ``0..size-1`` ramp (callers slice; do not mutate)."""
        if self._iota_buf.size < size:
            self._iota_buf = np.arange(max(size, 2 * self._iota_buf.size), dtype=np.int64)
        return self._iota_buf

    # ------------------------------------------------------------------
    # columnar exports
    # ------------------------------------------------------------------
    def _ensure_rows(self, ids: np.ndarray) -> np.ndarray:
        """Export any stale rows among *ids*; returns their lengths."""
        store = self._store
        lengths = store.length[ids]
        if (lengths < 0).any():
            blocks = self._cm._blocks
            assert blocks is not None  # guaranteed by the constructor
            summary = self._cm.summary
            for s in ids[lengths < 0].tolist():
                acc = blocks.get(s)
                if acc is None:
                    raise GraphFormatError(f"supernode {s} does not exist")
                store.export(s, acc, summary.superedge_neighbors(s))
            lengths = store.length[ids]
        return lengths

    # ------------------------------------------------------------------
    # the fused pricing kernel
    # ------------------------------------------------------------------
    def _price_pairs(
        self, a_ids: np.ndarray, b_ids: np.ndarray, table_ids: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Price distinct ordered pairs ``(a_ids[k], b_ids[k])`` fused.

        *table_ids* is the ascending supernode universe backing the join
        table; it must cover every pair endpoint (duplicates are
        harmless).  Returns per-pair ``(delta, relative_delta)`` columns
        bit-identical to the scalar pass, or ``None`` when some touched
        row is unclean (the baseline-summary fallback).
        """
        n = self._n64
        cm = self._cm
        price = cm._error_bit_price
        se_bits = cm._se_bits
        sw, sq = self._sw, self._sq
        store = self._store
        num_pairs = int(a_ids.size)

        with probe("merge.fused_join"):
            # -- the sorted lookup table over the touched rows: the
            # store's per-row sorted segments, gathered in ascending
            # supernode order, concatenate to a globally sorted table.
            tab_len = self._ensure_rows(table_ids)
            if store.any_unclean and not store.clean[table_ids].all():
                return None
            tab_off = store.off[table_ids]
            num_rows = int(table_ids.size)
            total = int(tab_len.sum())
            iota = self._iota(max(total, num_rows, 1))
            if total:
                t_ends = tab_len.cumsum()
                t_seg = iota[:num_rows].repeat(tab_len)
                t_flat = iota[:total] - (t_ends - tab_len)[t_seg] + tab_off[t_seg]
                tab_key = store.skey[t_flat]
                tab_val = store.sval[t_flat]
                tab_flag = store.sflag[t_flat]

            # -- gather the pair rows in one block layout: the A rows of
            # every pair (the scalar pass's first fused loop), then the B
            # rows (the second).  Bincount accumulates in global element
            # order, and bins are per pair, so only each pair's own
            # element order matters — row_A before row_B per pair holds
            # in this layout exactly as it does interleaved.
            two_p = 2 * num_pairs
            ids2 = self._scratch("ids2", 2 * two_p, np.int64)
            oth2 = ids2[two_p:]
            ids2 = ids2[:two_p]
            ids2[:num_pairs] = a_ids
            ids2[num_pairs:] = b_ids
            oth2[:num_pairs] = b_ids
            oth2[num_pairs:] = a_ids
            seg_off = store.off[ids2]
            seg_len = store.length[ids2]
            num_elems = int(seg_len.sum())
            iota = self._iota(max(num_elems, two_p, 1))
            e_seg = iota[:two_p].repeat(seg_len)
            ends = seg_len.cumsum()
            e_flat = iota[:num_elems] - (ends - seg_len)[e_seg] + seg_off[e_seg]
            ea = int(ends[num_pairs - 1]) if num_pairs else 0
            x = store.part[e_flat]
            ew = store.val[e_flat]
            own_flag = store.flag[e_flat]
            pair_iota = iota[:num_pairs]
            e_pair = e_seg - num_pairs * (e_seg >= num_pairs)
            e_own_id = ids2[e_seg]
            e_oth_id = oth2[e_seg]
            sx = sw[x]
            own_pi = sw[e_own_id] * sx

            # -- the one concatenated join: every element's partner
            # resolved against the *other* endpoint's row (ew_BX and its
            # superedge flag for A elements; the X-in-acc_A duplicate
            # skip for B elements) plus every pair's {a,b} cross block,
            # in a single searchsorted over one query buffer.
            num_q = num_elems + num_pairs
            queries = self._scratch("queries", num_q, np.int64)
            queries[:num_elems] = e_oth_id * n + x
            queries[num_elems:] = a_ids * n + b_ids
            if total:
                pos = np.searchsorted(tab_key, queries)
                pos[pos == total] = total - 1
                found = tab_key[pos] == queries
                f_val = tab_val[pos]
                f_flag = tab_flag[pos]
            else:
                found = self._scratch("nf_found", num_q, bool)
                found[:] = False
                f_val = self._scratch("nf_val", num_q, np.float64)
                f_val[:] = 0.0
                f_flag = found

            # Self blocks {a,a}, {b,b} and the cross block {a,b} are
            # priced in the tail, exactly as the scalar loops `continue`
            # past them; found B elements are the duplicates the scalar
            # second loop skips.
            e_found = found[:num_elems]
            active = ~((x == e_own_id) | (x == e_oth_id))
            active[ea:] &= ~e_found[ea:]
            act_a = active[:ea]
            # Masked-out products land on ±0.0, bitwise-neutral padding
            # (see repro.core.pricing); clean rows guarantee flagged
            # partners carry nonzero weight, so the edgeless-superedge
            # branch cannot fire here.
            ewbx = f_val[:ea] * (act_a & e_found[:ea])
            oth_flag = e_found[:ea] & f_flag[:ea]
            ew_ab = f_val[num_elems:] * found[num_elems:]
            ab_edge = found[num_elems:] & f_flag[num_elems:]

        with probe("merge.fused_reduce"):
            # -- fold the Eq. 9/10 pricing of every term into one
            # segmented bincount: bins [0, P) accumulate each pair's
            # `before` (row elements in element order, then the aa/bb/ab
            # tails — the scalar += sequence), bins [P, 2P) accumulate
            # `merged` (optimal-superedge blocks, then the self loop).
            p_sa = sw[a_ids]
            p_sb = sw[b_ids]
            p_qa = sq[a_ids]
            p_qb = sq[b_ids]
            p_sm = p_sa + p_sb
            ew_aa = self._self_w[a_ids]
            ew_bb = self._self_w[b_ids]
            a_self = self._self_adj[a_ids]
            b_self = self._self_adj[b_ids]
            pi_a = (p_sa * p_sa - p_qa) * 0.5
            pi_b = (p_sb * p_sb - p_qb) * 0.5

            # Stacked `before` layout, preserving each bin's scalar +=
            # order: A elements interleaved with their partner terms
            # (own, ew_BX, own, ...), then B elements, then the
            # aa/bb/ab tails as three contiguous blocks.
            two_a = 2 * ea
            eb = num_elems - ea
            t3 = two_a + eb
            len_before = t3 + 3 * num_pairs
            len_total = len_before + num_elems + num_pairs
            flags = self._scratch("st_flag", len_before, bool)
            pis = self._scratch("st_pi", len_before, np.float64)
            ews = self._scratch("st_ew", len_before, np.float64)
            mask = self._scratch("st_mask", len_before, bool)
            bins = self._scratch("st_bins", len_total, np.int64)
            terms = self._scratch("st_terms", len_total, np.float64)

            flags[0:two_a:2] = own_flag[:ea]
            flags[1:two_a:2] = oth_flag
            flags[two_a:t3] = own_flag[ea:]
            pis[0:two_a:2] = own_pi[:ea]
            pis[1:two_a:2] = sw[e_oth_id[:ea]] * sx[:ea]
            pis[two_a:t3] = own_pi[ea:]
            ews[0:two_a:2] = ew[:ea]
            ews[1:two_a:2] = ewbx
            ews[two_a:t3] = ew[ea:]
            mask[0:two_a:2] = act_a
            mask[1:two_a:2] = act_a
            mask[two_a:t3] = active[ea:]
            flags[t3:t3 + num_pairs] = a_self
            flags[t3 + num_pairs:t3 + two_p] = b_self
            flags[t3 + two_p:len_before] = ab_edge
            pis[t3:t3 + num_pairs] = pi_a
            pis[t3 + num_pairs:t3 + two_p] = pi_b
            pis[t3 + two_p:len_before] = p_sa * p_sb
            ews[t3:t3 + num_pairs] = ew_aa
            ews[t3 + num_pairs:t3 + two_p] = ew_bb
            ews[t3 + two_p:len_before] = ew_ab
            mask[t3:len_before] = True
            bins[0:two_a:2] = e_pair[:ea]
            bins[1:two_a:2] = e_pair[:ea]
            bins[two_a:t3] = e_pair[ea:]
            bins[t3:t3 + num_pairs] = pair_iota
            bins[t3 + num_pairs:t3 + two_p] = pair_iota
            bins[t3 + two_p:len_before] = pair_iota
            terms[:len_before] = block_cost_masked(flags, pis, ews, se_bits, price) * mask

            ew_union = self._scratch("ew_union", num_elems, np.float64)
            ew_union[:ea] = ew[:ea] + ewbx
            ew_union[ea:] = ew[ea:]
            ew_self = (ew_aa + ew_bb) + ew_ab
            pi_self = (p_sm * p_sm - (p_qa + p_qb)) * 0.5
            e_sm = p_sm[e_pair]
            terms[len_before:len_before + num_elems] = (
                merged_cost_masked(e_sm * sx, ew_union, se_bits, price) * active
            )
            terms[len_before + num_elems:] = merged_cost_masked(
                pi_self, ew_self, se_bits, price
            )
            bins[len_before:len_before + num_elems] = e_pair + num_pairs
            bins[len_before + num_elems:] = pair_iota + num_pairs

            sums = np.bincount(bins, weights=terms, minlength=2 * num_pairs)
            before = sums[:num_pairs]
            merged = sums[num_pairs:]
            delta = before - merged
            positive = before > 0.0
            # Branch-free Eq. 11, bitwise-equal to the scalar
            # `delta / before if before > 0.0 else 0.0` (the masked-out
            # quotient lands on ±0.0 and the trailing `+ 0.0`
            # canonicalizes it to the scalar's +0.0).
            relative = (delta / (before + ~positive)) * positive + 0.0
            return delta, relative

    # ------------------------------------------------------------------
    # the vectorized attempt
    # ------------------------------------------------------------------
    def evaluate_scores(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Per-pair ``(delta, relative_delta)`` for pairs ``(a_ids[k], b_ids[k])``.

        Both columns are bit-identical to what
        :meth:`CostModel.evaluate_merge` would report for each pair.
        Returns ``None`` when some endpoint has a superedge over an
        edgeless block (see the module docstring) — the caller then runs
        the scalar loop.
        """
        a_ids = np.asarray(a_ids, dtype=np.int64)
        b_ids = np.asarray(b_ids, dtype=np.int64)
        table_ids = np.unique(np.concatenate((a_ids, b_ids)))
        return self._price_pairs(a_ids, b_ids, table_ids)

    # ------------------------------------------------------------------
    # the fused window
    # ------------------------------------------------------------------
    def evaluate_window(
        self, attempts: WindowAttempts, *, use_relative: bool = True
    ) -> WindowResult:
        """Score a speculative window of merge attempts, fused.

        Each attempt is ``(members, first, second)`` — its candidate
        group's member array and its ``_sample_pairs`` index draw; every
        attempt sees the current summary state (the caller guarantees no
        merge separates them; attempts may span candidate groups, which
        are disjoint, and attempts on the same group must share the same
        member array object).  Returns per-attempt
        ``(best_scores, best_a, best_b, eval_counts)`` where
        ``best_scores[k]`` / ``(best_a[k], best_b[k])`` reproduce the
        scalar engine's first-wins maximum over attempt *k*'s deduplicated
        pairs bit for bit, and ``eval_counts[k]`` is the number of
        distinct pairs attempt *k* evaluates (a view into reusable
        scratch — consume it before the next evaluation call).  Returns
        ``None`` when some touched row is unclean (see the module
        docstring) — the caller then falls back to the scalar loop.
        """
        num_attempts = len(attempts)
        if num_attempts == 1:
            members, first, second = attempts[0]
            num_samples = int(first.size)
            iota = self._iota(num_samples)
            # Unordered index-pair key without min/max passes: within one
            # attempt, (i + j, |i - j|) identifies {i, j} uniquely.
            pair_key = (first + second) * num_samples + abs(first - second)
            att_of = None
            ga, gb = first, second
            mem_cat = members
        else:
            group_arrays: List[np.ndarray] = []
            group_offsets: List[int] = []
            slot_of: Dict[int, int] = {}
            goff_list: List[int] = []
            counts_list: List[int] = []
            mem_total = 0
            for members, first, _second in attempts:
                key = id(members)
                slot = slot_of.get(key)
                if slot is None:
                    slot_of[key] = slot = len(group_arrays)
                    group_offsets.append(mem_total)
                    mem_total += int(members.size)
                    group_arrays.append(members)
                goff_list.append(group_offsets[slot])
                counts_list.append(int(first.size))
            cat = np.concatenate(
                group_arrays
                + [a[1] for a in attempts]
                + [a[2] for a in attempts]
            )
            num_samples = (int(cat.size) - mem_total) // 2
            mem_cat = cat[:mem_total]
            f_cat = cat[mem_total:mem_total + num_samples]
            s_cat = cat[mem_total + num_samples:]
            meta = np.asarray(goff_list + counts_list, dtype=np.int64)
            goff = meta[:num_attempts]
            counts = meta[num_attempts:]
            iota = self._iota(num_samples)

            # Per-attempt unordered dedup keys in disjoint ranges: the
            # (sum, |diff|) encoding spans [0, 2c²) per attempt, offset
            # by the exclusive cumulative sum of those spans.
            c2 = 2 * counts * counts
            space_off = c2.cumsum() - c2
            count_rep = counts.repeat(counts)
            pair_key = (
                space_off.repeat(counts)
                + (f_cat + s_cat) * count_rep
                + abs(f_cat - s_cat)
            )
            goff_rep = goff.repeat(counts)
            ga = f_cat + goff_rep
            gb = s_cat + goff_rep
            att_of = iota[:num_attempts].repeat(counts)

        # Scalar `seen`-set dedup, vectorized: a stable argsort groups
        # equal keys with each run led by its earliest sample position,
        # so the run starts are exactly the `seen`-set survivors.
        order = pair_key.argsort(kind="stable")
        sorted_keys = pair_key[order]
        keep = self._scratch("keep", num_samples, bool)
        keep[:1] = True
        keep[1:] = sorted_keys[1:] != sorted_keys[:-1]
        retained = order[keep]
        retained.sort()
        ret_a = mem_cat[ga[retained]]
        ret_b = mem_cat[gb[retained]]
        if att_of is not None:
            att_ret = att_of[retained]
            # Attempt segment boundaries: att_ret is nondecreasing and
            # every attempt retains its first sample, so the segments are
            # nonempty and searchsorted finds each start.
            seg_starts = att_ret.searchsorted(iota[:num_attempts])
        else:
            seg_starts = iota[:1]  # a lone zero
        eval_counts = self._scratch("eval_counts", num_attempts, np.int64)
        eval_counts[:num_attempts - 1] = seg_starts[1:] - seg_starts[:-1]
        eval_counts[num_attempts - 1] = retained.size - seg_starts[num_attempts - 1]

        # Price the retained pairs directly (orientation matters for the
        # accumulation order, so (A, B) and (B, A) are distinct
        # candidates, exactly as in the scalar loop; the occasional
        # repeat across attempts re-prices identically and costs less
        # than deduplicating it would).
        table_ids = mem_cat.copy()
        table_ids.sort()
        scored = self._price_pairs(ret_a, ret_b, table_ids)
        if scored is None:
            return None
        delta, relative = scored
        score = relative if use_relative else delta

        # First-wins maximum per attempt: fmax skips NaN like the scalar
        # strict-> scan; the earliest position attaining the maximum wins
        # ties, matching first-wins.
        num_retained = int(score.size)
        best_scores = np.fmax.reduceat(score, seg_starts)
        best_of = best_scores[att_ret] if att_of is not None else best_scores[0]
        candidate = np.where(
            score == best_of, self._iota(num_retained)[:num_retained], num_retained
        )
        best_pos = np.minimum.reduceat(candidate, seg_starts)
        best_pos[best_pos == num_retained] = num_retained - 1  # all-NaN guard
        return best_scores, ret_a[best_pos], ret_b[best_pos], eval_counts

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_merge(self, plan: MergePlan) -> int:
        """Commit a plan through the cost model, keeping mirrors in sync.

        Invalidates the columnar exports of every supernode whose row or
        adjacency the merge can touch: the endpoints, their block
        partners (re-keyed to the union id), and their former superedge
        neighbors.
        """
        with probe("merge.apply"):
            return self._apply_merge(plan)

    def _apply_merge(self, plan: MergePlan) -> int:
        cm = self._cm
        blocks = cm._blocks
        assert blocks is not None  # guaranteed by the constructor
        summary = cm.summary
        touched = set(blocks[plan.a])
        touched.update(blocks[plan.b])
        touched.update(summary.superedge_neighbors(plan.a))
        touched.update(summary.superedge_neighbors(plan.b))
        touched.add(plan.a)
        touched.add(plan.b)
        union = cm.apply_merge(plan)
        dead = plan.b if union == plan.a else plan.a
        self._sw[union] = cm._sw[union]
        self._sq[union] = cm._sq[union]
        self._sw[dead] = 0.0
        self._sq[dead] = 0.0
        length = self._store.length
        self_w, self_adj = self._self_w, self._self_adj
        for s in touched:
            length[s] = -1  # lazy re-export at next use
            acc = blocks.get(s)
            if acc is None:
                self_w[s] = 0.0
                self_adj[s] = False
            else:
                self_w[s] = acc.get(s, 0.0)
                self_adj[s] = s in summary.superedge_neighbors(s)
        return union
