"""Batched (vectorized) merge evaluation for Alg. 2's inner loop.

The scalar engine evaluates each sampled candidate pair with one
:meth:`~repro.core.costs.CostModel.evaluate_merge` call — a fused Python
pass over the two endpoints' block-edge-weight dicts.  That loop is the
summarize phase's hot spot: thousands of pairs per PeGaSus iteration, each
paying Python-level dict iteration and scalar float arithmetic.

:class:`BatchCostEvaluator` computes **every sampled pair of one attempt in
a handful of numpy passes** instead:

1. *gather* — each endpoint's block-edge-weight row is exported once into
   columnar ``(partner, weight, has_superedge)`` arrays (insertion order
   preserved, plus a partner-sorted copy for lookups; cached until a merge
   touches the supernode) and fancy-indexed into one flat element array
   laid out ``[row_A(pair 0), row_B(pair 0), row_A(pair 1), ...]``;
2. *join* — one ``searchsorted`` against the concatenated sorted rows
   resolves, per element, the partner's weight on the *other* endpoint's
   row (``ew_BX`` for A-side elements) and the duplicate-block skip
   (``X ∈ acc_A`` for B-side elements);
3. *elementwise pricing* — every block's before/after cost terms and the
   superedge-vs-correction choice (Eq. 9/10) are computed with vectorized
   float64 arithmetic mirroring the scalar expressions operation for
   operation;
4. *segment-reduce* — per-pair ``before`` / ``merged_cost`` sums come
   from ``np.bincount`` over pair ids, whose accumulation is sequential
   in element order.

On top of per-pair scoring, :meth:`BatchCostEvaluator.evaluate_window`
amortizes the fixed vectorization cost over a whole *speculative window*
of attempts: failed attempts mutate nothing (the summary, the block rows,
and the superedge bit price ``2·log2|S|`` are exactly as before), and
>90% of attempts fail, so the merge loop draws up to the group's
remaining consecutive-failure budget of attempts ahead and hands them
over as one window.  The window is deduplicated per attempt (the scalar
``seen``-set semantics, vectorized with ``np.unique`` on index-pair
keys), the union of *ordered* candidate pairs across attempts is priced
once (orientation matters: the scalar accumulation order, hence the low
bits, depends on it), and each attempt's winner is selected with a
vectorized first-wins maximum (``fmax.reduceat`` + ``minimum.reduceat``).
The merge loop then resolves the attempts sequentially against the
threshold; a committed merge invalidates the rest of the window, whose
RNG draws are rewound by the caller.  Only a committing merge needs the
winning pair's full :class:`~repro.core.costs.MergePlan`, rebuilt with
one scalar ``evaluate_merge`` call (bit-identical by the
shared-arithmetic contract).

Byte-identical replay contract
------------------------------

The batch engine is not "close to" the scalar engine — it is pinned to
replay **bit-identical** merge decisions for the same seed, on both
storage backends, both objectives, and both threshold policies
(``tests/core/test_engine_equivalence.py``).  Three properties make that
possible:

* every elementwise term is the same IEEE-754 double expression, in the
  same association order, as the scalar code in
  :meth:`CostModel.evaluate_merge`;
* per-pair sums accumulate **in the same element order** as the scalar
  ``+=`` sequence: rows are gathered in dict-insertion order and
  ``np.bincount`` adds its weights strictly left to right (terms the
  scalar code never adds are emitted as ``+0.0``, which is bitwise
  neutral);
* the RNG is consumed identically (one
  :func:`~repro.core.merge._sample_pairs` draw per attempt; index-pair
  dedup keeps first occurrences in sample order), so both engines see the
  same candidate sequence.

When the scalar engine is still used
------------------------------------

* ``cost_cache="rebuild"`` has no maintained block rows to gather, so
  ``engine="batch"`` silently degrades to the scalar loop there;
* windows touching a supernode with a superedge over an *edgeless*
  block (only baseline-made summaries have those; a ``summarize()`` run
  never does) fall back to the scalar loop, which prices those blocks
  with its fixup scans.

Either path yields the same bits, so both are purely performance /
coverage knobs, not semantic ones.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.costs import CostModel, MergePlan
from repro.errors import GraphFormatError
from repro.obs.profile import probe

#: Default profitability gate: expected gathered elements per attempt
#: (2 × the group's total row length) below which the scalar loop wins
#: (tuned with ``benchmarks/bench_merge_micro.py``).
DEFAULT_MIN_BATCH_ELEMENTS = 1024


def _member(sorted_keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Exact-membership mask of *queries* against a sorted key table."""
    if sorted_keys.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_keys, queries), sorted_keys.size - 1)
    return sorted_keys[pos] == queries


def _segment_gather(
    offsets: np.ndarray, lengths: np.ndarray, sel: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat gather indices for the concatenation of the rows named by *sel*.

    Given per-row ``offsets``/``lengths`` into one concatenated buffer,
    returns ``(flat_indices, seg_len)`` such that ``buffer[flat_indices]``
    is ``row[sel[0]] ++ row[sel[1]] ++ ...`` and ``seg_len[k]`` is the
    length of segment *k* (for ``np.repeat``-ing per-segment attributes).
    """
    seg_len = lengths[sel]
    total = int(seg_len.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), seg_len
    ends = np.cumsum(seg_len)
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - seg_len, seg_len)
        + np.repeat(offsets[sel], seg_len)
    )
    return flat, seg_len


class _RowStore:
    """Append-only columnar store of block-edge-weight row exports.

    Each live supernode's row is exported once into six parallel global
    buffers — ``part``/``val``/``flag`` in dict-insertion order (the
    scalar engine's accumulation order) and ``skey``/``sval``/``sflag``
    partner-sorted, keyed by ``supernode · |V| + partner`` so that the
    segments of any ascending supernode set concatenate to a globally
    sorted lookup table.  ``flag`` marks partners that carry a superedge.
    Rows whose supernode a merge touches are *invalidated* (length −1)
    and lazily re-exported at the end of the buffers — log-structured, so
    live offsets stay valid and window evaluation gathers rows with pure
    numpy segment indexing, no per-window Python assembly.

    ``clean[s]`` is False when some superedge of *s* spans an edgeless
    (or zero-weight) block — the baseline-summary corner the vectorized
    pricing does not model, forcing a scalar fallback.
    """

    __slots__ = (
        "_n", "_cap", "_end", "off", "length", "clean",
        "part", "val", "flag", "skey", "sval", "sflag",
    )

    def __init__(self, num_nodes: int, initial_capacity: int = 1024):
        self._n = num_nodes
        size = max(num_nodes, 1)
        self.off = np.zeros(size, dtype=np.int64)
        self.length = np.full(size, -1, dtype=np.int64)  # -1 = stale / unexported
        self.clean = np.ones(size, dtype=bool)
        cap = max(initial_capacity, 16)
        self._cap = cap
        self._end = 0
        self.part = np.empty(cap, dtype=np.int64)
        self.val = np.empty(cap, dtype=np.float64)
        self.flag = np.empty(cap, dtype=bool)
        self.skey = np.empty(cap, dtype=np.int64)
        self.sval = np.empty(cap, dtype=np.float64)
        self.sflag = np.empty(cap, dtype=bool)

    def _reserve(self, extra: int) -> None:
        need = self._end + extra
        if need <= self._cap:
            return
        cap = max(self._cap * 2, need)
        for name in ("part", "val", "flag", "skey", "sval", "sflag"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: self._end] = old[: self._end]
            setattr(self, name, grown)
        self._cap = cap

    def export(self, supernode: int, acc: Dict[int, float], neighbors) -> None:
        """(Re-)export one supernode's row at the end of the buffers."""
        count = len(acc)
        self._reserve(count)
        start = self._end
        end = start + count
        part = np.fromiter(acc.keys(), dtype=np.int64, count=count)
        val = np.fromiter(acc.values(), dtype=np.float64, count=count)
        order = np.argsort(part)
        part_sorted = part[order]
        val_sorted = val[order]
        adj_sorted = np.sort(
            np.fromiter(neighbors, dtype=np.int64, count=len(neighbors))
        )
        flag_sorted = _member(adj_sorted, part_sorted)
        flag = np.empty(count, dtype=bool)
        flag[order] = flag_sorted
        self.part[start:end] = part
        self.val[start:end] = val
        self.flag[start:end] = flag
        self.skey[start:end] = part_sorted + np.int64(supernode) * np.int64(self._n)
        self.sval[start:end] = val_sorted
        self.sflag[start:end] = flag_sorted
        nonself = adj_sorted[adj_sorted != supernode] if adj_sorted.size else adj_sorted
        if nonself.size == 0:
            clean = True
        elif count == 0:
            clean = False
        else:
            pos = np.minimum(np.searchsorted(part_sorted, nonself), count - 1)
            clean = bool(
                np.all((part_sorted[pos] == nonself) & (val_sorted[pos] != 0.0))
            )
        self.off[supernode] = start
        self.length[supernode] = count
        self.clean[supernode] = clean
        self._end = end


class BatchCostEvaluator:
    """Vectorized merge evaluation over a ``cache="incremental"`` cost model.

    The evaluator owns numpy mirrors of the cost model's per-supernode
    weight sums plus cached columnar exports of the block-edge-weight
    rows.  All merges must flow through :meth:`apply_merge` (which wraps
    :meth:`CostModel.apply_merge`) so the mirrors and caches stay
    synchronized.

    Parameters
    ----------
    cost_model:
        The live cost model; must use the incremental block cache.
    min_batch_elements:
        Profitability gate: candidate groups whose expected per-attempt
        gathered size (``2 ×`` the members' total row length) falls below
        this run the scalar loop instead — numpy's fixed per-window
        overhead beats Python dict loops only on long rows; the crossover
        is measured by ``benchmarks/bench_merge_micro.py``.  ``0`` forces
        the vectorized path everywhere (used by the equivalence tests).
    """

    def __init__(self, cost_model: CostModel, *, min_batch_elements: "int | None" = None):
        if cost_model._blocks is None:
            raise GraphFormatError(
                "BatchCostEvaluator requires CostModel(cache='incremental')"
            )
        self._cm = cost_model
        self._n = cost_model.summary.num_nodes
        self._sw = np.asarray(cost_model._sw, dtype=np.float64)
        self._sq = np.asarray(cost_model._sq, dtype=np.float64)
        self.min_batch_elements = (
            DEFAULT_MIN_BATCH_ELEMENTS
            if min_batch_elements is None
            else int(min_batch_elements)
        )
        size = max(self._n, 1)
        # Eagerly maintained per-supernode scalars: row length (the
        # profitability gate input) and the self block's weight /
        # self-loop flag (the tail terms of every evaluation).
        self._row_len = np.zeros(size, dtype=np.int64)
        self._self_w = np.zeros(size, dtype=np.float64)
        self._self_adj = np.zeros(size, dtype=bool)
        summary = cost_model.summary
        for s, acc in cost_model._blocks.items():
            self._row_len[s] = len(acc)
            self._self_w[s] = acc.get(s, 0.0)
            self._self_adj[s] = s in summary.superedge_neighbors(s)
        #: Global append-only columnar row store (see :class:`_RowStore`);
        #: rows are exported lazily and invalidated by apply_merge.
        self._store = _RowStore(self._n, initial_capacity=4 * summary.graph.num_edges + 16)
        # Epoch score cache: (sorted ordered-pair keys, delta, relative)
        # of every pair priced since the last merge.  Failed attempts
        # mutate nothing, so these scores stay bit-exact until a merge
        # commits (which changes 2·log2|S| and the touched rows) clears
        # them.  Kept as parallel sorted arrays so the window evaluation
        # joins against it with one searchsorted.
        self._cache_key = np.empty(0, dtype=np.int64)
        self._cache_delta = np.empty(0, dtype=np.float64)
        self._cache_rel = np.empty(0, dtype=np.float64)

    # ------------------------------------------------------------------
    # batching heuristics
    # ------------------------------------------------------------------
    def total_row_length(self, supernodes: "np.ndarray | List[int]") -> int:
        """Total block-row length of *supernodes*.

        An attempt over a group ``C`` gathers two rows per sampled pair
        and samples ``|C|`` pairs, so its expected gathered size is twice
        this total — the input of the merge loop's profitability gate.
        """
        return int(self._row_len[np.asarray(supernodes, dtype=np.int64)].sum())

    # ------------------------------------------------------------------
    # columnar exports
    # ------------------------------------------------------------------
    def _ensure_rows(self, ids: np.ndarray) -> np.ndarray:
        """Export any stale rows among *ids*; returns their lengths."""
        store = self._store
        lengths = store.length[ids]
        if np.any(lengths < 0):
            blocks = self._cm._blocks
            summary = self._cm.summary
            for s in ids[lengths < 0].tolist():
                acc = blocks.get(s)
                if acc is None:
                    raise GraphFormatError(f"supernode {s} does not exist")
                store.export(s, acc, summary.superedge_neighbors(s))
            lengths = store.length[ids]
        return lengths

    # ------------------------------------------------------------------
    # the vectorized attempt
    # ------------------------------------------------------------------
    def evaluate_scores(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> "Tuple[np.ndarray, np.ndarray] | None":
        """Per-pair ``(delta, relative_delta)`` for pairs ``(a_ids[k], b_ids[k])``.

        Both columns are bit-identical to what
        :meth:`CostModel.evaluate_merge` would report for each pair.
        Returns ``None`` when some endpoint has a superedge over an
        edgeless block (see the module docstring) — the caller then runs
        the scalar loop.
        """
        n = self._n
        cm = self._cm
        price = cm._error_bit_price
        se_bits = cm._se_bits
        num_pairs = int(a_ids.size)

        ids, inverse = np.unique(np.concatenate((a_ids, b_ids)), return_inverse=True)
        a_idx = inverse[:num_pairs]
        b_idx = inverse[num_pairs:]
        num_ids = ids.size

        store = self._store
        row_len = self._ensure_rows(ids)
        if not np.all(store.clean[ids]):
            return None
        row_off = store.off[ids]
        # Lookup table keyed by (supernode id, partner): gathering the
        # rows' sorted segments in ascending-id order yields an already
        # sorted table — no per-attempt sort, no Python assembly.
        tab_idx, _ = _segment_gather(
            row_off, row_len, np.arange(num_ids, dtype=np.int64)
        )
        tab_key = store.skey[tab_idx]
        tab_val = store.sval[tab_idx]
        tab_flag = store.sflag[tab_idx]

        p_sa = self._sw[a_ids]
        p_sb = self._sw[b_ids]
        p_sm = p_sa + p_sb
        p_qm = self._sq[a_ids] + self._sq[b_ids]

        # Element layout: per pair, row_A then row_B — the scalar engine's
        # two fused loops.  Segments interleave [A_0, B_0, A_1, B_1, ...].
        seg_sel = np.empty(2 * num_pairs, dtype=np.int64)
        seg_sel[0::2] = a_idx
        seg_sel[1::2] = b_idx
        seg_own_id = np.empty(2 * num_pairs, dtype=np.int64)
        seg_own_id[0::2] = a_ids
        seg_own_id[1::2] = b_ids
        seg_oth_id = np.empty(2 * num_pairs, dtype=np.int64)
        seg_oth_id[0::2] = b_ids
        seg_oth_id[1::2] = a_ids
        seg_pair = np.repeat(np.arange(num_pairs, dtype=np.int64), 2)
        seg_is_a = np.zeros(2 * num_pairs, dtype=bool)
        seg_is_a[0::2] = True

        gidx, seg_len = _segment_gather(row_off, row_len, seg_sel)
        x = store.part[gidx]
        ew = store.val[gidx]
        own_flag = store.flag[gidx]
        e_pair = np.repeat(seg_pair, seg_len)
        e_is_a = np.repeat(seg_is_a, seg_len)
        e_own_id = np.repeat(seg_own_id, seg_len)
        e_oth_id = np.repeat(seg_oth_id, seg_len)
        e_own_s = self._sw[e_own_id]
        e_oth_s = self._sw[e_oth_id]
        e_sm = p_sm[e_pair]
        sx = self._sw[x]

        # The one big join: resolve every element's partner against the
        # *other* endpoint's row (for A elements that is ew_BX and its
        # superedge flag; for B elements it is the X-in-acc_A skip test).
        query = e_oth_id * n + x
        if tab_key.size:
            pos = np.minimum(np.searchsorted(tab_key, query), tab_key.size - 1)
            found = tab_key[pos] == query
        else:
            pos = np.zeros(query.shape, dtype=np.int64)
            found = np.zeros(query.shape, dtype=bool)

        # Self blocks {a,a}, {b,b} and the cross block {a,b} are priced in
        # the tail, exactly as the scalar loops `continue` past them.
        excl = (x == e_own_id) | (x == e_oth_id)
        active = ~excl & (e_is_a | ~found)
        a_active = active & e_is_a

        # `before` slot 1: the element's own side of the block cost.
        slot1 = np.where(
            active,
            np.where(own_flag, se_bits + price * (e_own_s * sx - ew), price * ew),
            0.0,
        )
        # `before` slot 2 (A elements only): the partner side (s_B · s_X
        # terms, with s_B = the *other* endpoint's weight sum for A-side
        # elements), folded into the same loop iteration by the scalar
        # engine.  Clean rows guarantee flagged partners carry nonzero
        # weight, so the edgeless-superedge branch cannot fire here.
        ewbx = np.where(a_active & found, tab_val[pos], 0.0)
        oth_flag = found & tab_flag[pos]
        slot2 = np.where(
            a_active,
            np.where(oth_flag, se_bits + price * (e_oth_s * sx - ewbx), price * ewbx),
            0.0,
        )

        # Post-merge pricing with the optimal superedge choice (line 9).
        ew_union = ew + ewbx
        with_edge = se_bits + price * (e_sm * sx - ew_union)
        without_edge = price * ew_union
        merged_term = np.where(
            active, np.where(with_edge < without_edge, with_edge, without_edge), 0.0
        )

        row_contrib = np.empty(2 * slot1.size, dtype=np.float64)
        row_contrib[0::2] = slot1
        row_contrib[1::2] = slot2
        row_contrib_pair = np.repeat(e_pair, 2)

        # Tail: the self blocks {a,a}, {b,b} and the cross block {a,b}.
        ew_aa = self._self_w[a_ids]
        ew_bb = self._self_w[b_ids]
        a_self = self._self_adj[a_ids]
        b_self = self._self_adj[b_ids]
        ab_query = a_ids * n + b_ids
        if tab_key.size:
            ab_pos = np.minimum(np.searchsorted(tab_key, ab_query), tab_key.size - 1)
            ab_found = tab_key[ab_pos] == ab_query
            ew_ab = np.where(ab_found, tab_val[ab_pos], 0.0)
            ab_edge = ab_found & tab_flag[ab_pos]
        else:
            ew_ab = np.zeros(num_pairs, dtype=np.float64)
            ab_edge = np.zeros(num_pairs, dtype=bool)
        pi_a = (p_sa * p_sa - self._sq[a_ids]) * 0.5
        pi_b = (p_sb * p_sb - self._sq[b_ids]) * 0.5
        tail = np.empty((num_pairs, 3), dtype=np.float64)
        tail[:, 0] = np.where(a_self, se_bits + price * (pi_a - ew_aa), price * ew_aa)
        tail[:, 1] = np.where(b_self, se_bits + price * (pi_b - ew_bb), price * ew_bb)
        tail[:, 2] = np.where(ab_edge, se_bits + price * (p_sa * p_sb - ew_ab), price * ew_ab)
        tail_pair = np.repeat(np.arange(num_pairs, dtype=np.int64), 3)

        before = np.bincount(
            np.concatenate((row_contrib_pair, tail_pair)),
            weights=np.concatenate((row_contrib, tail.ravel())),
            minlength=num_pairs,
        )

        ew_self = (ew_aa + ew_bb) + ew_ab
        pi_self = (p_sm * p_sm - p_qm) * 0.5
        with_loop = se_bits + price * (pi_self - ew_self)
        without_loop = price * ew_self
        loop_term = np.where(with_loop < without_loop, with_loop, without_loop)
        merged = np.bincount(
            np.concatenate((e_pair, np.arange(num_pairs, dtype=np.int64))),
            weights=np.concatenate((merged_term, loop_term)),
            minlength=num_pairs,
        )

        delta = before - merged
        relative = np.divide(delta, before, out=np.zeros_like(delta), where=before > 0.0)
        return delta, relative

    # ------------------------------------------------------------------
    # the speculative window
    # ------------------------------------------------------------------
    def evaluate_window(
        self,
        attempts: "List[Tuple[np.ndarray, np.ndarray, np.ndarray]]",
        *,
        use_relative: bool = True,
    ):
        """Score a speculative window of merge attempts.

        Each attempt is ``(members, first, second)`` — its candidate
        group's member array and its ``_sample_pairs`` index draw; every
        attempt sees the current summary state (the caller guarantees no
        merge separates them; attempts may span candidate groups, which
        are disjoint).  Returns per-attempt
        ``(best_scores, best_a, best_b, eval_counts)`` where
        ``best_scores[k]`` / ``(best_a[k], best_b[k])`` reproduce the
        scalar engine's first-wins maximum over attempt *k*'s deduplicated
        pairs bit for bit, and ``eval_counts[k]`` is the number of
        distinct pairs attempt *k* evaluates.  Returns ``None`` when some
        touched row is unclean (see the module docstring) — the caller
        then falls back to the scalar loop.
        """
        with probe("merge.window_eval"):
            return self._evaluate_window(attempts, use_relative=use_relative)

    def _evaluate_window(
        self,
        attempts: "List[Tuple[np.ndarray, np.ndarray, np.ndarray]]",
        *,
        use_relative: bool = True,
    ):
        num_attempts = len(attempts)
        if num_attempts == 1:
            members, first, second = attempts[0]
            mem_cat, f_cat, s_cat = members, first, second
            counts = np.asarray([first.size], dtype=np.int64)
        else:
            mem_cat = np.concatenate([a[0] for a in attempts])
            f_cat = np.concatenate([a[1] for a in attempts])
            s_cat = np.concatenate([a[2] for a in attempts])
            counts = np.fromiter(
                (a[1].size for a in attempts), dtype=np.int64, count=num_attempts
            )

        # Per-attempt dedup with first-occurrence order — the scalar
        # `seen`-set semantics, vectorized: key by (attempt, unordered
        # index pair), keep each key's first sample position.  Each
        # attempt draws exactly |C| samples over |C| members, so the
        # sample offsets double as member-array offsets.
        lo = np.minimum(f_cat, s_cat)
        hi = np.maximum(f_cat, s_cat)
        if num_attempts > 1:
            offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
            space_off = np.concatenate(([0], np.cumsum(counts * counts)))[:-1]
            count_rep = np.repeat(counts, counts)
            pair_key = np.repeat(space_off, counts) + lo * count_rep + hi
        else:
            pair_key = lo * counts[0] + hi
        _, first_pos = np.unique(pair_key, return_index=True)
        retained = np.sort(first_pos)
        if num_attempts > 1:
            goff = np.repeat(offsets, counts)
            ret_a = mem_cat[(f_cat + goff)[retained]]
            ret_b = mem_cat[(s_cat + goff)[retained]]
            eval_counts = np.bincount(
                np.repeat(np.arange(num_attempts, dtype=np.int64), counts)[retained],
                minlength=num_attempts,
            )
        else:
            ret_a = mem_cat[f_cat[retained]]
            ret_b = mem_cat[s_cat[retained]]
            eval_counts = np.asarray([retained.size], dtype=np.int64)

        # Price each distinct *ordered* pair once per merge epoch
        # (orientation matters for the accumulation order, so (A, B) and
        # (B, A) are distinct candidates, exactly as in the scalar loop).
        # Pairs already priced since the last merge come from the sorted
        # epoch cache; only the rest are evaluated.
        ekey = ret_a * np.int64(self._n) + ret_b
        uniq, inverse = np.unique(ekey, return_inverse=True)
        cache_key = self._cache_key
        if cache_key.size:
            pos = np.minimum(np.searchsorted(cache_key, uniq), cache_key.size - 1)
            hit = cache_key[pos] == uniq
            missing = uniq[~hit]
        else:
            pos = hit = None
            missing = uniq
        if missing.size:
            scored = self.evaluate_scores(missing // self._n, missing % self._n)
            if scored is None:
                return None
            delta_m, rel_m = scored
            if hit is None:
                delta, relative = delta_m, rel_m
                self._cache_key = missing
                self._cache_delta = delta_m
                self._cache_rel = rel_m
            else:
                delta = np.empty(uniq.size, dtype=np.float64)
                relative = np.empty(uniq.size, dtype=np.float64)
                hit_pos = pos[hit]
                delta[hit] = self._cache_delta[hit_pos]
                relative[hit] = self._cache_rel[hit_pos]
                miss = ~hit
                delta[miss] = delta_m
                relative[miss] = rel_m
                merged_key = np.concatenate((cache_key, missing))
                order = np.argsort(merged_key)
                self._cache_key = merged_key[order]
                self._cache_delta = np.concatenate((self._cache_delta, delta_m))[order]
                self._cache_rel = np.concatenate((self._cache_rel, rel_m))[order]
        else:
            delta = self._cache_delta[pos]
            relative = self._cache_rel[pos]
        ret_score = (relative if use_relative else delta)[inverse]

        # First-wins maximum per attempt: fmax skips NaN like the scalar
        # strict-> scan; the earliest position attaining the maximum wins
        # ties, matching first-wins.
        seg_starts = np.concatenate(([0], np.cumsum(eval_counts)[:-1]))
        best_scores = np.fmax.reduceat(ret_score, seg_starts)
        candidate = np.where(
            ret_score == np.repeat(best_scores, eval_counts),
            np.arange(ret_score.size, dtype=np.int64),
            ret_score.size,
        )
        best_pos = np.minimum.reduceat(candidate, seg_starts)
        best_pos = np.minimum(best_pos, ret_score.size - 1)  # all-NaN guard
        return best_scores, ret_a[best_pos], ret_b[best_pos], eval_counts

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_merge(self, plan: MergePlan) -> int:
        """Commit a plan through the cost model, keeping mirrors in sync.

        Invalidates the columnar exports of every supernode whose row or
        adjacency the merge can touch: the endpoints, their block
        partners (re-keyed to the union id), and their former superedge
        neighbors.
        """
        with probe("merge.apply"):
            return self._apply_merge(plan)

    def _apply_merge(self, plan: MergePlan) -> int:
        cm = self._cm
        blocks = cm._blocks
        summary = cm.summary
        touched = set(blocks[plan.a])
        touched.update(blocks[plan.b])
        touched.update(summary.superedge_neighbors(plan.a))
        touched.update(summary.superedge_neighbors(plan.b))
        touched.add(plan.a)
        touched.add(plan.b)
        union = cm.apply_merge(plan)
        # Every cached epoch score embeds the pre-merge superedge bit
        # price 2·log2|S|, which this merge just changed — drop them all.
        if self._cache_key.size:
            self._cache_key = np.empty(0, dtype=np.int64)
            self._cache_delta = np.empty(0, dtype=np.float64)
            self._cache_rel = np.empty(0, dtype=np.float64)
        dead = plan.b if union == plan.a else plan.a
        self._sw[union] = cm._sw[union]
        self._sq[union] = cm._sq[union]
        self._sw[dead] = 0.0
        self._sq[dead] = 0.0
        length = self._store.length
        row_len, self_w, self_adj = self._row_len, self._self_w, self._self_adj
        for s in touched:
            length[s] = -1  # lazy re-export at next use
            acc = blocks.get(s)
            if acc is None:
                row_len[s] = 0
                self_w[s] = 0.0
                self_adj[s] = False
            else:
                row_len[s] = len(acc)
                self_w[s] = acc.get(s, 0.0)
                self_adj[s] = s in summary.superedge_neighbors(s)
        return union
