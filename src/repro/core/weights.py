"""Personalized pair weights (Eq. 2 of the paper).

The weight of a node pair ``{u, v}`` is

.. math::

    W^{(T)}_{uv} = \\frac{\\alpha^{-(D(u,T) + D(v,T))}}{Z},

where ``D(u, T)`` is the hop distance from ``u`` to the nearest target and
``Z`` normalizes the *average* pair weight to 1.  The crucial property this
module exposes — and the computational trick PeGaSus relies on — is that the
weight **factorizes**: with ``w_u := alpha^{-D(u,T)}``,

    ``W_uv = w_u * w_v / Z``.

Hence any block sum of pair weights reduces to products of per-supernode
sums ``s_A = sum(w_u for u in A)`` and ``q_A = sum(w_u**2 for u in A)``,
giving O(1) error updates per merge instead of O(|A| * |B|).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._util import as_node_array
from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances


class PersonalizedWeights:
    """Node weights ``w_u = alpha^{-D(u,T)}`` plus the normalizer ``Z``.

    Parameters
    ----------
    graph:
        The input graph.
    targets:
        The target node set ``T`` (non-empty).  ``T = V`` (or equivalently
        ``alpha = 1``) recovers the non-personalized setting: all weights 1.
    alpha:
        Degree of personalization, ``alpha >= 1``.
    unreachable:
        Distance assigned to nodes with no path to any target.  The paper
        works on connected graphs where this never triggers; we default to
        one more than the largest finite distance so unreachable nodes get
        the smallest (but still positive) weight.
    """

    __slots__ = ("graph", "alpha", "targets", "distances", "node_weight", "node_weight_sq", "normalizer")

    def __init__(
        self,
        graph: Graph,
        targets: "Iterable[int] | np.ndarray",
        alpha: float = 1.25,
        *,
        unreachable: "int | None" = None,
    ):
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        target_arr = as_node_array(targets)
        if target_arr.size == 0:
            raise GraphFormatError("target set T must be non-empty")
        if target_arr[0] < 0 or target_arr[-1] >= graph.num_nodes:
            raise GraphFormatError("target node out of range")
        self.graph = graph
        self.alpha = float(alpha)
        self.targets = target_arr

        dist = bfs_distances(graph, target_arr)
        missing = dist < 0
        if missing.any():
            fallback = unreachable if unreachable is not None else int(dist.max()) + 1
            dist = dist.copy()
            dist[missing] = fallback
        self.distances = dist

        if alpha == 1.0:
            weights = np.ones(graph.num_nodes, dtype=np.float64)
        else:
            weights = np.power(self.alpha, -dist.astype(np.float64))
        self.node_weight = weights
        self.node_weight_sq = weights * weights
        self.normalizer = self._compute_normalizer()
        self.node_weight.setflags(write=False)
        self.node_weight_sq.setflags(write=False)

    @classmethod
    def uniform(cls, graph: Graph) -> "PersonalizedWeights":
        """All-ones weights — the non-personalized (SSumM) setting.

        Equivalent to ``T = V`` or ``alpha = 1`` but skips the BFS.
        """
        obj = cls.__new__(cls)
        obj.graph = graph
        obj.alpha = 1.0
        obj.targets = np.arange(graph.num_nodes, dtype=np.int64)
        obj.distances = np.zeros(graph.num_nodes, dtype=np.int64)
        obj.node_weight = np.ones(graph.num_nodes, dtype=np.float64)
        obj.node_weight_sq = np.ones(graph.num_nodes, dtype=np.float64)
        obj.normalizer = obj._compute_normalizer()
        obj.node_weight.setflags(write=False)
        obj.node_weight_sq.setflags(write=False)
        return obj

    def _compute_normalizer(self) -> float:
        """``Z`` from footnote 2: the mean weight over ordered pairs u != v."""
        n = self.graph.num_nodes
        if n < 2:
            return 1.0
        total = float(self.node_weight.sum())
        total_sq = float(self.node_weight_sq.sum())
        z = (total * total - total_sq) / (n * (n - 1))
        # All-zero weights cannot occur (targets always have weight 1), but
        # guard against degenerate floating underflow on huge distances.
        return z if z > 0.0 else 1.0

    # ------------------------------------------------------------------
    # pair-level queries
    # ------------------------------------------------------------------
    def pair_weight(self, u: int, v: int) -> float:
        """``W_uv`` for an ordered or unordered node pair (symmetric)."""
        return float(self.node_weight[u] * self.node_weight[v] / self.normalizer)

    def mean_pair_weight(self) -> float:
        """The average ordered-pair weight — 1.0 by construction of ``Z``."""
        n = self.graph.num_nodes
        if n < 2:
            return 1.0
        total = float(self.node_weight.sum())
        total_sq = float(self.node_weight_sq.sum())
        return (total * total - total_sq) / (n * (n - 1)) / self.normalizer

    @property
    def is_uniform(self) -> bool:
        """Whether all pair weights are equal (the non-personalized case)."""
        return bool(self.alpha == 1.0 or np.all(self.distances == self.distances[0]))
