"""The merging-and-addition step (Alg. 2 of the paper).

Within one candidate group, PeGaSus repeatedly

1. samples ``|C_i|`` random supernode pairs from the group,
2. evaluates the relative cost reduction (Eq. 11) of each and keeps the
   best pair,
3. merges the best pair if its reduction clears the threshold ``θ``
   (with the union's superedges chosen to minimize its cost, line 9),
   otherwise records the rejected value for adaptive thresholding,

until one supernode remains or ``log2|C_i|`` merge attempts fail in a row.

The ablation of Sect. III-B (relative Eq. 11 vs absolute Eq. 10 criterion)
is exposed via ``objective=``.

This loop is storage-backend-agnostic: it talks to the summary only
through the :class:`~repro.core.costs.CostModel`, and it consumes the RNG
in a fixed pattern (one :func:`_sample_pairs` draw per attempt).  Given
the same seed, the same candidate groups, and the same cost arithmetic,
it therefore replays the same merges on the dict and flat backends —
the property the cross-backend equivalence and determinism suites pin
down (``tests/core/test_backend_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.costs import CostModel, MergePlan
from repro.core.threshold import ThresholdPolicy

OBJECTIVES = ("relative", "absolute")


@dataclass
class GroupMergeStats:
    """Counters from processing one candidate group."""

    merges: int = 0
    attempts: int = 0
    evaluations: int = 0


def _sample_pairs(size: int, count: int, rng: np.random.Generator) -> "zip":
    """*count* uniform pairs of distinct indices below *size* (with repeats)."""
    first = rng.integers(0, size, size=count)
    second = rng.integers(0, size - 1, size=count)
    second = second + (second >= first)
    return zip(first.tolist(), second.tolist())


def merge_within_group(
    cost_model: CostModel,
    group: "np.ndarray | List[int]",
    threshold: ThresholdPolicy,
    rng: np.random.Generator,
    *,
    objective: str = "relative",
) -> GroupMergeStats:
    """Run Alg. 2 on one candidate group; mutates the summary via *cost_model*.

    Parameters
    ----------
    cost_model:
        The live :class:`~repro.core.costs.CostModel` (owns the summary).
    group:
        Supernode ids forming the candidate group ``C_i``.
    threshold:
        Threshold policy; its current ``value`` gates merges and failed
        best-candidates are ``record``-ed on it (line 12).
    rng:
        Random generator for pair sampling.
    objective:
        ``"relative"`` (Eq. 11, the paper's choice) or ``"absolute"``
        (Eq. 10, the ablation).
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    use_relative = objective == "relative"
    members: List[int] = [int(x) for x in group]
    stats = GroupMergeStats()
    failures = 0
    while len(members) > 1 and failures <= math.log2(len(members)):
        stats.attempts += 1
        count = len(members)
        best_plan: "MergePlan | None" = None
        best_score = -math.inf
        seen = set()
        for i, j in _sample_pairs(count, count, rng):
            key = (i, j) if i < j else (j, i)
            if key in seen:
                continue
            seen.add(key)
            plan = cost_model.evaluate_merge(members[i], members[j])
            stats.evaluations += 1
            score = plan.relative_delta if use_relative else plan.delta
            if score > best_score:
                best_score = score
                best_plan = plan
        if best_plan is None:  # all samples collided on one pair: impossible, but guard
            break
        if best_score >= threshold.value:
            union = cost_model.apply_merge(best_plan)
            dead = best_plan.b if union == best_plan.a else best_plan.a
            members.remove(dead)
            stats.merges += 1
            failures = 0
        else:
            threshold.record(best_score)
            failures += 1
    return stats
