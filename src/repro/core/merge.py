"""The merging-and-addition step (Alg. 2 of the paper).

Within one candidate group, PeGaSus repeatedly

1. samples ``|C_i|`` random supernode pairs from the group,
2. evaluates the relative cost reduction (Eq. 11) of each and keeps the
   best pair,
3. merges the best pair if its reduction clears the threshold ``θ``
   (with the union's superedges chosen to minimize its cost, line 9),
   otherwise records the rejected value for adaptive thresholding,

until one supernode remains or ``log2|C_i|`` merge attempts fail in a row.

The ablation of Sect. III-B (relative Eq. 11 vs absolute Eq. 10 criterion)
is exposed via ``objective=``.

This loop is storage-backend-agnostic: it talks to the summary only
through the :class:`~repro.core.costs.CostModel`, and it consumes the RNG
in a fixed pattern (one :func:`_sample_pairs` draw per attempt).  Given
the same seed, the same candidate groups, and the same cost arithmetic,
it therefore replays the same merges on the dict and flat backends —
the property the cross-backend equivalence and determinism suites pin
down (``tests/core/test_backend_equivalence.py``).

Two evaluation engines drive step 2:

* the **scalar** engine (:func:`merge_within_group` without an
  evaluator) — one ``evaluate_merge`` call per sampled pair, with a
  ``seen``-set skipping duplicate index pairs; and
* the **batch** engine (:func:`merge_groups` with a
  :class:`~repro.core.batch.BatchCostEvaluator`) — *speculative windows
  over an epoch-scoped score cache*.  A failed merge attempt mutates
  nothing: the block rows, the superedge bit price ``2·log2|S|``, and
  hence every candidate pair's score are frozen between two committed
  merges (one *epoch*).  The batch loop therefore draws a window of up
  to :data:`WINDOW_MAX_ATTEMPTS` attempts ahead (snapshotting the RNG
  state before each draw), prices the window's **not-yet-cached ordered
  pairs in one pass** through the fused columnar kernel
  (:meth:`~repro.core.batch.BatchCostEvaluator.evaluate_scores`) into a
  pair→score dictionary, and then resolves the attempts sequentially
  against the threshold as pure dictionary lookups — the scalar
  ``seen``-set / first-wins scan with ``evaluate_merge`` replaced by a
  cached double.  A committed merge ends the epoch (``|S|`` shrinks, so
  the bit price changes globally): the cache is dropped and the RNG is
  rewound to just after the committing attempt's draw, so the
  not-yet-consumed speculative draws never happened as far as the
  random stream is concerned.

Both engines replay byte-identical merges for the same seed: the batch
path consumes the RNG identically (one :func:`_sample_pairs` draw per
resolved attempt, in attempt order — speculation is always rewound),
dedups index pairs with the same first-occurrence ``seen``-set
semantics, evaluates with bit-identical arithmetic (the cache holds the
same doubles the scalar pass computes, priced once per ordered pair per
epoch), selects per attempt with the same first-wins maximum, and
records the same rejected scores on the threshold
(``tests/core/test_engine_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.batch import BatchCostEvaluator
from repro.core.costs import CostModel, MergePlan
from repro.core.threshold import ThresholdPolicy
from repro.obs.profile import probe

OBJECTIVES = ("relative", "absolute")

#: Speculative-window ramp (in attempts): each window that resolves
#: without a merge doubles the next one, a committed merge halves it.
#: Stalled phases (no merges for many attempts) thereby amortize one
#: fused pricing pass over up to :data:`WINDOW_MAX_ATTEMPTS` attempts,
#: while merge-dense phases shrink back to the floor so little
#: speculative drawing is wasted.  The sample cap bounds a single
#: window's memory.  The ramp is pure performance policy: the engines
#: replay bit-identical merges for *any* window sizing, because
#: un-consumed speculative draws are always rewound.
WINDOW_MIN_ATTEMPTS = 1
WINDOW_MAX_ATTEMPTS = 64
WINDOW_MAX_SAMPLES = 16384

#: Miss batches of at most this many pairs are priced through the shared
#: pricing core's Python entry point (:meth:`CostModel.evaluate_merge`)
#: instead of its numpy entry point — below it, numpy's fixed dispatch
#: cost exceeds the whole batch's arithmetic.  Both entry points compute
#: the same IEEE-754 doubles (the bit-identity contract of
#: :mod:`repro.core.pricing`), so the cutoff is pure dispatch-cost
#: policy, invisible in every output.
SMALL_MISS_PAIRS = 32


@dataclass
class GroupMergeStats:
    """Counters from processing one candidate group (or one iteration)."""

    merges: int = 0
    attempts: int = 0
    evaluations: int = 0


def _sample_pairs(
    size: int, count: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """*count* uniform pairs of distinct indices below *size* (with repeats).

    Two generator calls per attempt is the repo's pinned draw pattern:
    a single flat draw over the ordered-pair space would be ~2.5×
    cheaper and equally uniform, but it changes the random stream —
    and with it every downstream merge — which the integration suite's
    absolute quality pins (fig7) do not allow.
    """
    first = rng.integers(0, size, size=count)
    second = rng.integers(0, size - 1, size=count)
    second = second + (second >= first)
    return first, second


def _scalar_attempt(
    cost_model: CostModel,
    members: List[int],
    first: np.ndarray,
    second: np.ndarray,
    use_relative: bool,
    stats: GroupMergeStats,
) -> "Tuple[MergePlan, float] | None":
    """One attempt's scalar evaluation: dedup, evaluate, first-wins max."""
    with probe("merge.scalar_attempt"):
        best_plan: "MergePlan | None" = None
        best_score = -math.inf
        seen = set()
        for i, j in zip(first.tolist(), second.tolist()):
            key = (i, j) if i < j else (j, i)
            if key in seen:
                continue
            seen.add(key)
            plan = cost_model.evaluate_merge(members[i], members[j])
            stats.evaluations += 1
            score = plan.relative_delta if use_relative else plan.delta
            if score > best_score:
                best_score = score
                best_plan = plan
        if best_plan is None:  # all scores NaN: impossible, but guard
            return None
        return best_plan, best_score


def _resolve_scalar_attempt(
    cost_model: CostModel,
    evaluator: "BatchCostEvaluator",
    members: List[int],
    first: np.ndarray,
    second: np.ndarray,
    use_relative: bool,
    threshold: ThresholdPolicy,
    stats: GroupMergeStats,
) -> str:
    """Evaluate one drawn attempt with the scalar loop and resolve it.

    The batch engine's commit-or-record protocol for the unclean-row
    fallback (baseline-made summaries whose superedges span edgeless
    blocks): returns ``"merged"``, ``"failed"``, or ``"abort"`` (the NaN
    guard, mirroring the scalar engine's group break).  Merges flow
    through the evaluator so its mirrors stay coherent.
    """
    evaluated = _scalar_attempt(cost_model, members, first, second, use_relative, stats)
    if evaluated is None:
        return "abort"
    best_plan, best_score = evaluated
    if best_score >= threshold.value:
        union = evaluator.apply_merge(best_plan)
        dead = best_plan.b if union == best_plan.a else best_plan.a
        members.remove(dead)
        stats.merges += 1
        return "merged"
    threshold.record(best_score)
    return "failed"


def merge_within_group(
    cost_model: CostModel,
    group: "np.ndarray | List[int]",
    threshold: ThresholdPolicy,
    rng: np.random.Generator,
    *,
    objective: str = "relative",
    evaluator: "BatchCostEvaluator | None" = None,
) -> GroupMergeStats:
    """Run Alg. 2 on one candidate group; mutates the summary via *cost_model*.

    Parameters
    ----------
    cost_model:
        The live :class:`~repro.core.costs.CostModel` (owns the summary).
    group:
        Supernode ids forming the candidate group ``C_i``.
    threshold:
        Threshold policy; its current ``value`` gates merges and failed
        best-candidates are ``record``-ed on it (line 12).
    rng:
        Random generator for pair sampling.
    objective:
        ``"relative"`` (Eq. 11, the paper's choice) or ``"absolute"``
        (Eq. 10, the ablation).
    evaluator:
        Optional :class:`~repro.core.batch.BatchCostEvaluator` built on
        *cost_model*; when given, delegates to :func:`merge_groups` for
        fused vectorized evaluation (byte-identical to the scalar loop).
    """
    if evaluator is not None:
        return merge_groups(
            cost_model, [group], threshold, rng, objective=objective, evaluator=evaluator
        )
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    use_relative = objective == "relative"
    members: List[int] = [int(x) for x in group]
    stats = GroupMergeStats()
    failures = 0
    while len(members) > 1 and failures <= math.log2(len(members)):
        stats.attempts += 1
        count = len(members)
        first, second = _sample_pairs(count, count, rng)
        evaluated = _scalar_attempt(cost_model, members, first, second, use_relative, stats)
        if evaluated is None:
            break
        best_plan, best_score = evaluated
        if best_score >= threshold.value:
            union = cost_model.apply_merge(best_plan)
            dead = best_plan.b if union == best_plan.a else best_plan.a
            members.remove(dead)
            stats.merges += 1
            failures = 0
        else:
            threshold.record(best_score)
            failures += 1
    return stats


def merge_groups(
    cost_model: CostModel,
    groups: "Iterable[np.ndarray | List[int]]",
    threshold: ThresholdPolicy,
    rng: np.random.Generator,
    *,
    objective: str = "relative",
    evaluator: "BatchCostEvaluator | None" = None,
) -> GroupMergeStats:
    """Run Alg. 2 over one iteration's candidate groups.

    Without an *evaluator* this is exactly the sequential
    ``for group: merge_within_group(...)`` loop.  With one, speculative
    windows of attempts resolve against an epoch-scoped cache of fused
    pair pricings (see the module docstring) — byte-identical outputs,
    vectorized throughput.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    stats = GroupMergeStats()
    if evaluator is None:
        for group in groups:
            one = merge_within_group(
                cost_model, group, threshold, rng, objective=objective
            )
            stats.merges += one.merges
            stats.attempts += one.attempts
            stats.evaluations += one.evaluations
        return stats

    use_relative = objective == "relative"
    glists: List[List[int]] = [[int(x) for x in group] for group in groups]
    num_groups = len(glists)
    gpos = 0  # current group index
    failures = 0  # current group's consecutive-failure count
    window_attempts = WINDOW_MIN_ATTEMPTS
    bit_generator = rng.bit_generator
    #: The epoch cache: ordered pair (a, b) of supernode ids -> the score
    #: CostModel.evaluate_merge(a, b) would report.  Every entry is
    #: frozen until the next committed merge, which drops the whole cache
    #: (the merge shrinks |S|, repricing every superedge bit globally).
    pair_scores: Dict[Tuple[int, int], float] = {}

    while gpos < num_groups:
        count = len(glists[gpos])
        # `failures > log2(count)` without the float round-trip.
        if count < 2 or (1 << failures) > count:
            gpos += 1
            failures = 0
            continue

        # ---- draw one speculative window of attempts, snapshotting the
        # RNG state before each draw so any attempt invalidated by an
        # earlier commit can be rewound (= never drawn).  The walk mirrors
        # the sequential loop's group advancement under the assumption
        # that every attempt fails — the common case; a commit discards
        # the rest of the window.
        specs: List[Tuple[int, np.ndarray, np.ndarray]] = []
        states: List[dict] = []
        p, fail = gpos, failures
        drawn = 0
        while p < num_groups:
            p_count = len(glists[p])
            if p_count < 2 or (1 << fail) > p_count:
                p += 1
                fail = 0
                continue
            if len(specs) >= window_attempts or drawn >= WINDOW_MAX_SAMPLES:
                break
            states.append(bit_generator.state)
            first, second = _sample_pairs(p_count, p_count, rng)
            specs.append((p, first, second))
            drawn += p_count
            fail += 1
        end_state = (p, fail)

        # ---- dedup each attempt to the scalar seen-set semantics and
        # collect the window's not-yet-priced ordered pairs (the cache
        # key is the ordered supernode-id pair: orientation decides the
        # scalar accumulation order, and a commit clears the cache, so
        # entries never go stale).
        py_specs: List[Tuple[int, List[Tuple[int, int]]]] = []
        miss_a: List[int] = []
        miss_b: List[int] = []
        window_miss: set = set()
        for spec_p, first, second in specs:
            ids = glists[spec_p]
            seen = set()
            pairs: List[Tuple[int, int]] = []
            for i, j in zip(first.tolist(), second.tolist()):
                key = (i, j) if i < j else (j, i)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append((i, j))
                pkey = (ids[i], ids[j])
                if pkey in pair_scores or pkey in window_miss:
                    continue
                window_miss.add(pkey)
                miss_a.append(pkey[0])
                miss_b.append(pkey[1])
            py_specs.append((spec_p, pairs))

        # ---- price every miss in one fused pass (tiny batches through
        # the pricing core's Python entry point — same bits, no numpy
        # dispatch floor).
        if miss_a and len(miss_a) <= SMALL_MISS_PAIRS:
            if use_relative:
                for k in range(len(miss_a)):
                    pair_scores[(miss_a[k], miss_b[k])] = cost_model.evaluate_merge(
                        miss_a[k], miss_b[k]
                    ).relative_delta
            else:
                for k in range(len(miss_a)):
                    pair_scores[(miss_a[k], miss_b[k])] = cost_model.evaluate_merge(
                        miss_a[k], miss_b[k]
                    ).delta
        elif miss_a:
            scored = evaluator.evaluate_scores(
                np.asarray(miss_a, dtype=np.int64), np.asarray(miss_b, dtype=np.int64)
            )
            if scored is None:
                # Unclean rows (baseline-made summary): rewind the
                # speculation and price the first attempt with the
                # scalar loop instead.
                if len(states) > 1:
                    bit_generator.state = states[1]
                window_attempts = WINDOW_MIN_ATTEMPTS
                spec_p, first, second = specs[0]
                outcome = _resolve_scalar_attempt(
                    cost_model, evaluator, glists[spec_p], first, second,
                    use_relative, threshold, stats,
                )
                if outcome == "abort":
                    gpos += 1
                    failures = 0
                elif outcome == "merged":
                    pair_scores.clear()
                    failures = 0
                else:
                    failures += 1
                continue
            delta, relative = scored
            col = (relative if use_relative else delta).tolist()
            for k in range(len(miss_a)):
                pair_scores[(miss_a[k], miss_b[k])] = col[k]

        # ---- resolve the attempts sequentially against the threshold:
        # the scalar first-wins scan over each attempt's deduplicated
        # pairs, with evaluate_merge replaced by a cache lookup.
        committed = -1
        aborted = -1
        for k, (spec_p, pairs) in enumerate(py_specs):
            stats.attempts += 1
            stats.evaluations += len(pairs)
            ids = glists[spec_p]
            best_score = -math.inf
            best_i = -1
            best_j = 0
            for i, j in pairs:
                score = pair_scores[(ids[i], ids[j])]
                if score > best_score:
                    best_score = score
                    best_i = i
                    best_j = j
            if best_i < 0:  # all scores NaN: impossible, but guard
                aborted = k
                break
            if best_score >= threshold.value:
                # Only a committing merge needs the full plan (chosen
                # superedges); rebuild it with one scalar evaluation —
                # bit-identical by the shared-arithmetic contract.
                plan = cost_model.evaluate_merge(ids[best_i], ids[best_j])
                union = evaluator.apply_merge(plan)
                dead = plan.b if union == plan.a else plan.a
                ids.remove(dead)
                pair_scores.clear()  # the epoch ended
                stats.merges += 1
                committed = k
                break
            threshold.record(best_score)

        if committed < 0 and aborted < 0:
            # The whole window failed: the construction walk's end state
            # is exactly where sequential processing stands; speculate
            # further next time (AIMD increase).
            gpos, failures = end_state
            window_attempts = min(window_attempts * 2, WINDOW_MAX_ATTEMPTS)
            continue
        # A commit (or the NaN guard) invalidates the un-resolved tail of
        # the window: rewind the RNG to just after the deciding attempt's
        # draw, so the speculative draws never happened.
        k = committed if committed >= 0 else aborted
        if k + 1 < len(states):
            bit_generator.state = states[k + 1]
        if committed >= 0:
            gpos = py_specs[k][0]
            failures = 0
            window_attempts = max(window_attempts // 2, WINDOW_MIN_ATTEMPTS)
        else:
            gpos = py_specs[k][0] + 1
            failures = 0
    return stats
