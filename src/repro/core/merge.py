"""The merging-and-addition step (Alg. 2 of the paper).

Within one candidate group, PeGaSus repeatedly

1. samples ``|C_i|`` random supernode pairs from the group,
2. evaluates the relative cost reduction (Eq. 11) of each and keeps the
   best pair,
3. merges the best pair if its reduction clears the threshold ``θ``
   (with the union's superedges chosen to minimize its cost, line 9),
   otherwise records the rejected value for adaptive thresholding,

until one supernode remains or ``log2|C_i|`` merge attempts fail in a row.

The ablation of Sect. III-B (relative Eq. 11 vs absolute Eq. 10 criterion)
is exposed via ``objective=``.

This loop is storage-backend-agnostic: it talks to the summary only
through the :class:`~repro.core.costs.CostModel`, and it consumes the RNG
in a fixed pattern (one :func:`_sample_pairs` draw per attempt).  Given
the same seed, the same candidate groups, and the same cost arithmetic,
it therefore replays the same merges on the dict and flat backends —
the property the cross-backend equivalence and determinism suites pin
down (``tests/core/test_backend_equivalence.py``).

Two evaluation engines drive step 2:

* the **scalar** engine (:func:`merge_within_group` without an
  evaluator) — one ``evaluate_merge`` call per sampled pair, with a
  ``seen``-set skipping duplicate index pairs; and
* the **batch** engine (:func:`merge_groups` with a
  :class:`~repro.core.batch.BatchCostEvaluator`) — *speculative window*
  evaluation.  A failed merge attempt mutates nothing, and candidate
  groups are disjoint, so as long as no merge commits, the upcoming
  attempts — across group boundaries — all see exactly the current
  summary state and the threshold value (which only changes between
  iterations).  The engine therefore draws a whole window of future
  attempts up front (snapshotting the RNG before each draw), prices the
  union of their candidate pairs in one vectorized pass
  (:meth:`~repro.core.batch.BatchCostEvaluator.evaluate_window`), and
  resolves the attempts sequentially.  The first committed merge
  invalidates the rest of the window: its RNG draws are rewound to the
  exact post-merge state and speculation restarts.  The window size
  ramps exponentially (``WINDOW_MIN_SAMPLES`` → ``WINDOW_MAX_SAMPLES``),
  so merge-heavy phases waste little speculative work while stalled
  phases amortize the vectorization overhead over thousands of pairs.

Both engines replay byte-identical merges for the same seed: the batch
path consumes the RNG in the same order (rewinding un-consumed
speculative draws), dedups index pairs to the same first-occurrence
order the ``seen`` set produces, evaluates with bit-identical
arithmetic, selects per attempt with the same first-wins maximum, and
records the same rejected scores on the threshold
(``tests/core/test_engine_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.batch import BatchCostEvaluator
from repro.core.costs import CostModel, MergePlan
from repro.core.threshold import ThresholdPolicy
from repro.obs.profile import probe

OBJECTIVES = ("relative", "absolute")

#: Speculative-window ramp (in attempts): each window that resolves
#: without a merge doubles the next one, a committed merge halves it —
#: merge-dense phases speculate almost nothing while stalled phases
#: amortize the vectorization overhead over thousands of pairs.  The
#: sample cap bounds a single window's memory and wasted work.
WINDOW_MAX_ATTEMPTS = 32
WINDOW_MAX_SAMPLES = 16384


@dataclass
class GroupMergeStats:
    """Counters from processing one candidate group (or one iteration)."""

    merges: int = 0
    attempts: int = 0
    evaluations: int = 0


def _sample_pairs(
    size: int, count: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """*count* uniform pairs of distinct indices below *size* (with repeats)."""
    first = rng.integers(0, size, size=count)
    second = rng.integers(0, size - 1, size=count)
    second = second + (second >= first)
    return first, second


def _scalar_attempt(
    cost_model: CostModel,
    members: List[int],
    first: np.ndarray,
    second: np.ndarray,
    use_relative: bool,
    stats: GroupMergeStats,
) -> "Tuple[MergePlan, float] | None":
    """One attempt's scalar evaluation: dedup, evaluate, first-wins max."""
    with probe("merge.scalar_attempt"):
        best_plan: "MergePlan | None" = None
        best_score = -math.inf
        seen = set()
        for i, j in zip(first.tolist(), second.tolist()):
            key = (i, j) if i < j else (j, i)
            if key in seen:
                continue
            seen.add(key)
            plan = cost_model.evaluate_merge(members[i], members[j])
            stats.evaluations += 1
            score = plan.relative_delta if use_relative else plan.delta
            if score > best_score:
                best_score = score
                best_plan = plan
        if best_plan is None:  # all scores NaN: impossible, but guard
            return None
        return best_plan, best_score


def _resolve_scalar_attempt(
    cost_model: CostModel,
    evaluator: "BatchCostEvaluator",
    members: List[int],
    first: np.ndarray,
    second: np.ndarray,
    use_relative: bool,
    threshold: ThresholdPolicy,
    stats: GroupMergeStats,
) -> str:
    """Evaluate one drawn attempt with the scalar loop and resolve it.

    The batch engine's shared commit-or-record protocol for
    scalar-evaluated attempts (the profitability-gate path and the
    unclean-row fallback): returns ``"merged"``, ``"failed"``, or
    ``"abort"`` (the NaN guard, mirroring the scalar engine's group
    break).  Merges flow through the evaluator so its mirrors stay
    coherent.
    """
    evaluated = _scalar_attempt(cost_model, members, first, second, use_relative, stats)
    if evaluated is None:
        return "abort"
    best_plan, best_score = evaluated
    if best_score >= threshold.value:
        union = evaluator.apply_merge(best_plan)
        dead = best_plan.b if union == best_plan.a else best_plan.a
        members.remove(dead)
        stats.merges += 1
        return "merged"
    threshold.record(best_score)
    return "failed"


def merge_within_group(
    cost_model: CostModel,
    group: "np.ndarray | List[int]",
    threshold: ThresholdPolicy,
    rng: np.random.Generator,
    *,
    objective: str = "relative",
    evaluator: "BatchCostEvaluator | None" = None,
) -> GroupMergeStats:
    """Run Alg. 2 on one candidate group; mutates the summary via *cost_model*.

    Parameters
    ----------
    cost_model:
        The live :class:`~repro.core.costs.CostModel` (owns the summary).
    group:
        Supernode ids forming the candidate group ``C_i``.
    threshold:
        Threshold policy; its current ``value`` gates merges and failed
        best-candidates are ``record``-ed on it (line 12).
    rng:
        Random generator for pair sampling.
    objective:
        ``"relative"`` (Eq. 11, the paper's choice) or ``"absolute"``
        (Eq. 10, the ablation).
    evaluator:
        Optional :class:`~repro.core.batch.BatchCostEvaluator` built on
        *cost_model*; when given, delegates to :func:`merge_groups` for
        speculative vectorized evaluation (byte-identical to the scalar
        loop).
    """
    if evaluator is not None:
        return merge_groups(
            cost_model, [group], threshold, rng, objective=objective, evaluator=evaluator
        )
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    use_relative = objective == "relative"
    members: List[int] = [int(x) for x in group]
    stats = GroupMergeStats()
    failures = 0
    while len(members) > 1 and failures <= math.log2(len(members)):
        stats.attempts += 1
        count = len(members)
        first, second = _sample_pairs(count, count, rng)
        evaluated = _scalar_attempt(cost_model, members, first, second, use_relative, stats)
        if evaluated is None:
            break
        best_plan, best_score = evaluated
        if best_score >= threshold.value:
            union = cost_model.apply_merge(best_plan)
            dead = best_plan.b if union == best_plan.a else best_plan.a
            members.remove(dead)
            stats.merges += 1
            failures = 0
        else:
            threshold.record(best_score)
            failures += 1
    return stats


def merge_groups(
    cost_model: CostModel,
    groups: "Iterable[np.ndarray | List[int]]",
    threshold: ThresholdPolicy,
    rng: np.random.Generator,
    *,
    objective: str = "relative",
    evaluator: "BatchCostEvaluator | None" = None,
) -> GroupMergeStats:
    """Run Alg. 2 over one iteration's candidate groups.

    Without an *evaluator* this is exactly the sequential
    ``for group: merge_within_group(...)`` loop.  With one, attempts are
    evaluated in speculative cross-group windows (see the module
    docstring) — byte-identical outputs, vectorized throughput.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    stats = GroupMergeStats()
    if evaluator is None:
        for group in groups:
            one = merge_within_group(
                cost_model, group, threshold, rng, objective=objective
            )
            stats.merges += one.merges
            stats.attempts += one.attempts
            stats.evaluations += one.evaluations
        return stats

    use_relative = objective == "relative"
    glists: List[List[int]] = [[int(x) for x in group] for group in groups]
    member_arrays: Dict[int, np.ndarray] = {}
    gate = evaluator.min_batch_elements
    gpos = 0  # current group index
    failures = 0  # current group's consecutive-failure count
    est = -1  # current group's expected gathered elements per attempt
    window_attempts = 1

    def members_array(index: int) -> np.ndarray:
        arr = member_arrays.get(index)
        if arr is None:
            member_arrays[index] = arr = np.asarray(glists[index], dtype=np.int64)
        return arr

    while gpos < len(glists):
        members = glists[gpos]
        count = len(members)
        if count < 2 or failures > math.log2(count):
            gpos += 1
            failures = 0
            est = -1
            continue
        if est < 0:
            est = 2 * evaluator.total_row_length(members_array(gpos))
        if est < gate:
            # Profitability gate: short rows — one plain scalar attempt
            # (numpy's fixed per-window overhead would dominate here).
            stats.attempts += 1
            first, second = _sample_pairs(count, count, rng)
            outcome = _resolve_scalar_attempt(
                cost_model, evaluator, members, first, second, use_relative, threshold, stats
            )
            if outcome == "abort":
                gpos, failures, est = gpos + 1, 0, -1
            elif outcome == "merged":
                member_arrays.pop(gpos, None)
                failures, est = 0, -1
            else:
                failures += 1
            continue

        # ---- construct a speculative window (assume every attempt
        # fails), spanning consecutive gate-passing groups
        specs: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        states: List[object] = []
        p, fail, p_est = gpos, failures, est
        drawn = 0
        while p < len(glists):
            p_members = glists[p]
            p_count = len(p_members)
            if p_count < 2 or fail > math.log2(p_count):
                p += 1
                fail = 0
                p_est = -1
                continue
            if p_est < 0:
                p_est = 2 * evaluator.total_row_length(members_array(p))
            if p_est < gate:
                break  # the scalar fast path picks this group up next
            if len(specs) >= window_attempts or drawn >= WINDOW_MAX_SAMPLES:
                break
            states.append(rng.bit_generator.state)
            first, second = _sample_pairs(p_count, p_count, rng)
            specs.append((p, members_array(p), first, second))
            drawn += p_count
            fail += 1
        end_state = (p, fail, p_est)

        resolved = evaluator.evaluate_window(
            [spec[1:] for spec in specs], use_relative=use_relative
        )
        if resolved is None:
            # Unclean rows (baseline-made summary): rewind the speculative
            # draws and process the first attempt with the scalar loop.
            if len(states) > 1:
                rng.bit_generator.state = states[1]
            p, _arr, first, second = specs[0]
            stats.attempts += 1
            outcome = _resolve_scalar_attempt(
                cost_model, evaluator, glists[p], first, second, use_relative, threshold, stats
            )
            if outcome == "abort":
                gpos, failures, est = p + 1, 0, -1
            elif outcome == "merged":
                member_arrays.pop(p, None)
                gpos, failures, est = p, 0, -1
            else:
                gpos = p
                failures += 1
            continue

        # ---- resolve the window sequentially against the threshold
        best_scores, best_a, best_b, eval_counts = resolved
        outcome = 0  # 0 = all failed, 1 = merged, 2 = aborted (NaN guard)
        k = 0
        for k in range(len(specs)):
            p = specs[k][0]
            stats.attempts += 1
            stats.evaluations += int(eval_counts[k])
            best_score = float(best_scores[k])
            if best_score != best_score:  # all-NaN: impossible, but guard
                outcome = 2
                break
            if best_score >= threshold.value:
                # Only a committing merge needs the full plan (chosen
                # superedges); rebuild it with one scalar evaluation —
                # bit-identical by the shared-arithmetic contract.
                plan = cost_model.evaluate_merge(int(best_a[k]), int(best_b[k]))
                union = evaluator.apply_merge(plan)
                dead = plan.b if union == plan.a else plan.a
                glists[p].remove(dead)
                member_arrays.pop(p, None)
                stats.merges += 1
                outcome = 1
                break
            threshold.record(best_score)
        if outcome == 0:
            gpos, failures, est = end_state
            window_attempts = min(window_attempts * 2, WINDOW_MAX_ATTEMPTS)
        else:
            # Rewind the RNG to just after the last resolved attempt's
            # draw: the speculative draws beyond it never happened.
            if k + 1 < len(specs):
                rng.bit_generator.state = states[k + 1]
            if outcome == 1:
                gpos, failures, est = specs[k][0], 0, -1
                window_attempts = max(window_attempts // 2, 1)
            else:  # aborted: mirror the scalar engine's per-group break
                gpos, failures, est = specs[k][0] + 1, 0, -1
    return stats
