"""The fused Eq. 9/10 pricing core shared by every merge-evaluation path.

PeGaSus prices one thing, everywhere: the cost of a supernode block
``{A, X}`` (Eq. 9) and the cost change of replacing two supernodes with
their union under the optimal superedge choice (Eq. 10/11).  Before this
module, that arithmetic lived in three separate implementations — the
scalar ``CostModel.evaluate_merge`` pass, the columnar window kernel in
:mod:`repro.core.batch`, and the vectorized ``superedge_drop_order`` —
and keeping them bit-identical meant auditing three copies of the same
IEEE-754 expressions.  Now there is one core:

* :func:`evaluate_pair` / :func:`evaluate_pair_rebuild` — the scalar
  reference pass (one fused loop over the two endpoints' block-edge-weight
  rows), consumed by :meth:`CostModel.evaluate_merge`.  This *defines*
  the bit pattern every other implementation must reproduce.
* :func:`block_cost_masked` — the columnar Eq. 9 block cost, consumed by
  the batch window kernel for every before-merge term (row elements and
  the ``{a,a}``/``{b,b}``/``{a,b}`` tails alike).
* :func:`merged_cost_masked` — the columnar post-merge cost with the
  optimal superedge choice (Alg. 2 line 9), consumed by the batch window
  kernel for every merged-side term including the self loop.
* :func:`superedge_cost_columns` — the superedge-present branch alone,
  consumed by :meth:`CostModel.superedge_drop_order` (every priced block
  there carries a superedge by construction).

Bitwise-equality contract
-------------------------

The columnar helpers are *branch-free*: instead of ``np.where`` they
select with mask multiplication, ``flag * A + ~flag * B``.  That is
bitwise-equal to the branched scalar expressions because every masked-out
product lands on ``±0.0`` and the kept operand can never be ``-0.0``:

* all inputs are non-negative (``pi``, ``ew``, ``price``, ``se_bits`` are
  weights/bit prices), so products and the kept sums are ``>= +0.0``;
* a finite IEEE-754 subtraction ``x - y`` only produces ``-0.0`` for
  ``(-0.0) - (+0.0)``, which non-negative inputs rule out — in
  round-to-nearest, ``x - x == +0.0``;
* adding ``±0.0`` to any non-``-0.0`` value is the identity, and
  ``+0.0 + -0.0 == +0.0``, so the masked-out terms vanish without
  flipping a single result bit (also the reason the batch kernel may
  feed these outputs to ``np.bincount`` as padding for terms the scalar
  loop never adds).

``tests/core/test_fused_pricing.py`` pins the equality element-for-element
on adversarial inputs; ``tests/core/test_engine_equivalence.py`` pins the
end-to-end consequence (byte-identical summaries across engines).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (costs imports us)
    from repro.core.costs import CostModel

__all__ = [
    "MergePlan",
    "block_cost_masked",
    "evaluate_pair",
    "evaluate_pair_rebuild",
    "merged_cost_masked",
    "superedge_cost_columns",
]


@dataclass
class MergePlan:
    """The outcome of evaluating a candidate merge ``{A, B}`` (Eq. 10/11).

    Attributes
    ----------
    a, b:
        The candidate supernodes.
    delta:
        Absolute cost reduction ``ΔCost`` (Eq. 10), in bits.
    relative_delta:
        Relative reduction ``ΔCost / (Cost_A + Cost_B − Cost_AB)`` (Eq. 11).
    superedges:
        Supernodes ``X`` that should receive a superedge ``{A∪B, X}``.
    self_loop:
        Whether ``A∪B`` should receive a self-loop.
    merged_cost:
        ``Cost_{A∪B}`` after the optimal superedge additions.
    """

    a: int
    b: int
    delta: float
    relative_delta: float
    superedges: List[int] = field(default_factory=list)
    self_loop: bool = False
    merged_cost: float = 0.0


# ----------------------------------------------------------------------
# columnar primitives (the batch kernel's and drop order's element math)
# ----------------------------------------------------------------------
def superedge_cost_columns(
    pi: np.ndarray, ew: np.ndarray, se_bits: float, price: float
) -> np.ndarray:
    """Eq. 9 block cost of superedge-carrying blocks, columnwise.

    ``2·log2|S| + 2·log2|V| · (Π − ew)``: the superedge's own bits plus
    the false-positive corrections on the block's non-edges.
    """
    return se_bits + price * (pi - ew)


def block_cost_masked(
    flag: np.ndarray,
    pi: np.ndarray,
    ew: np.ndarray,
    se_bits: float,
    price: float,
) -> np.ndarray:
    """Eq. 9 block cost, columnwise and branch-free.

    Where ``flag`` (the block carries a superedge) the cost is
    ``se_bits + price·(pi − ew)``; elsewhere it is ``price·ew`` (every
    block edge becomes a false-negative correction).  Bitwise-equal to
    the branched scalar expressions — see the module docstring for why
    the mask products cannot perturb the kept branch.
    """
    keep = ~flag
    return flag * se_bits + price * (flag * (pi - ew) + keep * ew)


def merged_cost_masked(
    pi: np.ndarray, ew: np.ndarray, se_bits: float, price: float
) -> np.ndarray:
    """Post-merge block cost under the optimal superedge choice (line 9).

    Per column: ``min(se_bits + price·(pi − ew), price·ew)`` with the
    scalar engine's strict ``<`` preference for the sparser summary on
    ties, evaluated branch-free (same bitwise argument as
    :func:`block_cost_masked`; the comparison itself is exact).
    """
    with_edge = se_bits + price * (pi - ew)
    without_edge = price * ew
    keep = with_edge < without_edge
    return keep * with_edge + ~keep * without_edge


# ----------------------------------------------------------------------
# the scalar reference pass (cache="incremental")
# ----------------------------------------------------------------------
def evaluate_pair(cm: "CostModel", a: int, b: int) -> MergePlan:
    """Evaluate merging supernodes *a* and *b* (Eq. 10 and Eq. 11).

    The scalar reference implementation of the pricing core: one fused
    pass over the two endpoints' maintained block-edge-weight rows,
    accumulating the pre-merge cost of every affected block (``before``,
    which is all of ``Cost_A + Cost_B − Cost_AB``) and the post-merge
    cost under the optimal superedge choice (line 9 of Alg. 2; ties
    prefer the sparser summary).  Self blocks ``{a,a}``, ``{b,b}`` and
    the cross block ``{a,b}`` are priced after the loops.

    Every other implementation — the columnar helpers above, hence the
    batch window kernel — must reproduce these accumulation orders and
    expressions bit for bit.
    """
    summary = cm.summary
    se_bits = cm._se_bits
    price = cm._error_bit_price
    sw, sq = cm._sw, cm._sq
    blocks = cm._blocks
    assert blocks is not None  # callers dispatch on the cache strategy
    try:
        acc_a = blocks[a]
        acc_b = blocks[b]
    except KeyError as exc:
        raise GraphFormatError(f"supernode {exc.args[0]} does not exist") from None
    adj_a = summary.superedge_neighbors(a)
    adj_b = summary.superedge_neighbors(b)
    s_a = sw[a]
    s_b = sw[b]
    s_m = s_a + s_b
    q_m = sq[a] + sq[b]

    before = 0.0
    merged_cost = 0.0
    chosen: List[int] = []
    ew_aa = 0.0
    ew_bb = 0.0
    ew_ab = 0.0
    get_b = acc_b.get

    for x, ew in acc_a.items():
        if x == a:
            ew_aa = ew
            continue
        if x == b:
            ew_ab = ew
            continue
        sx = sw[x]
        if x in adj_a:
            before += se_bits + price * (s_a * sx - ew)
        else:
            before += price * ew
        ew_b_x = get_b(x, 0.0)
        if ew_b_x:
            if x in adj_b:
                before += se_bits + price * (s_b * sx - ew_b_x)
            else:
                before += price * ew_b_x
            ew = ew + ew_b_x
        elif x in adj_b:
            before += se_bits + price * (s_b * sx)
        with_edge = se_bits + price * (s_m * sx - ew)
        without_edge = price * ew
        if with_edge < without_edge:
            merged_cost += with_edge
            chosen.append(x)
        else:
            merged_cost += without_edge

    in_a = acc_a.__contains__
    for x, ew in acc_b.items():
        if x == b:
            ew_bb = ew
            continue
        if x == a or in_a(x):
            continue
        sx = sw[x]
        if x in adj_b:
            before += se_bits + price * (s_b * sx - ew)
        else:
            before += price * ew
        with_edge = se_bits + price * (s_m * sx - ew)
        without_edge = price * ew
        if with_edge < without_edge:
            merged_cost += with_edge
            chosen.append(x)
        else:
            merged_cost += without_edge

    # Superedges over edgeless blocks (only baseline-made summaries
    # have these; a summarize() run never does).
    for x in adj_a:
        if x != a and x != b and x not in acc_a:
            before += se_bits + price * (s_a * sw[x])
    for x in adj_b:
        if x != a and x != b and x not in acc_b and x not in acc_a:
            before += se_bits + price * (s_b * sw[x])

    if ew_aa or a in adj_a:
        pi = (s_a * s_a - sq[a]) * 0.5
        if a in adj_a:
            before += se_bits + price * (pi - ew_aa)
        else:
            before += price * ew_aa
    if ew_bb or b in adj_b:
        pi = (s_b * s_b - sq[b]) * 0.5
        if b in adj_b:
            before += se_bits + price * (pi - ew_bb)
        else:
            before += price * ew_bb
    if ew_ab or b in adj_a:
        if b in adj_a:
            before += se_bits + price * (s_a * s_b - ew_ab)
        else:
            before += price * ew_ab

    ew_self = ew_aa + ew_bb + ew_ab
    pi_self = (s_m * s_m - q_m) * 0.5
    with_loop = se_bits + price * (pi_self - ew_self)
    without_loop = price * ew_self
    self_loop = with_loop < without_loop
    merged_cost += with_loop if self_loop else without_loop

    delta = before - merged_cost
    relative = delta / before if before > 0.0 else 0.0
    return MergePlan(
        a=a,
        b=b,
        delta=delta,
        relative_delta=relative,
        superedges=chosen,
        self_loop=self_loop,
        merged_cost=merged_cost,
    )


def evaluate_pair_rebuild(cm: "CostModel", a: int, b: int) -> MergePlan:
    """The original per-candidate rebuild evaluation (``cache="rebuild"``)."""
    summary = cm.summary
    se_bits = cm._superedge_bits()
    price = cm._error_bit_price
    sw, sq = cm._sw, cm._sq

    acc_a = cm._walk_block_edge_weights(a)
    acc_b = cm._walk_block_edge_weights(b)
    adj_a = summary.superedge_neighbors(a)
    adj_b = summary.superedge_neighbors(b)

    cost_a = cm._side_cost(a, acc_a, adj_a, se_bits)
    cost_b = cm._side_cost(b, acc_b, adj_b, se_bits)
    ew_ab = acc_a.get(b, 0.0)
    pi_ab = sw[a] * sw[b]
    if b in adj_a:
        cost_ab = se_bits + price * (pi_ab - ew_ab)
    else:
        cost_ab = price * ew_ab
    before = cost_a + cost_b - cost_ab

    # Merged bookkeeping: s/q add; cross-edge weights add per partner.
    s_m = sw[a] + sw[b]
    q_m = sq[a] + sq[b]
    acc_m: Dict[int, float] = {}
    get_m = acc_m.get
    for acc in (acc_a, acc_b):
        for x, ew in acc.items():
            if x != a and x != b:
                acc_m[x] = get_m(x, 0.0) + ew
    ew_self = acc_a.get(a, 0.0) + acc_b.get(b, 0.0) + ew_ab

    merged_cost = 0.0
    chosen: List[int] = []
    for x, ew in acc_m.items():
        pi = s_m * sw[x]
        with_edge = se_bits + price * (pi - ew)
        without_edge = price * ew
        if with_edge < without_edge:
            merged_cost += with_edge
            chosen.append(x)
        else:
            merged_cost += without_edge
    pi_self = (s_m * s_m - q_m) * 0.5
    with_loop = se_bits + price * (pi_self - ew_self)
    without_loop = price * ew_self
    self_loop = with_loop < without_loop
    merged_cost += with_loop if self_loop else without_loop

    delta = before - merged_cost
    relative = delta / before if before > 0.0 else 0.0
    return MergePlan(
        a=a,
        b=b,
        delta=delta,
        relative_delta=relative,
        superedges=chosen,
        self_loop=self_loop,
        merged_cost=merged_cost,
    )
