"""The paper's primary contribution: personalized graph summarization.

Public entry points:

* :func:`repro.core.pegasus.summarize` / :class:`repro.core.pegasus.Pegasus`
  — the PeGaSus algorithm (Alg. 1 of the paper);
* :class:`repro.core.weights.PersonalizedWeights` — the Eq. 2 weight model;
* :class:`repro.core.summary.SummaryGraph` — the summary-graph structure;
* :class:`repro.core.costs.CostModel` — the MDL cost bookkeeping (Eqs. 5–11).
"""

from repro.core.weights import PersonalizedWeights
from repro.core.summary import BACKENDS, FlatSummaryGraph, SummaryGraph
from repro.core.costs import COST_CACHES, CostModel, personalized_error
from repro.core.batch import BatchCostEvaluator
from repro.core.corrections import CorrectionSet, compute_corrections, decode, lossless_size_in_bits
from repro.core.shingle import candidate_groups, node_shingles
from repro.core.threshold import AdaptiveThreshold, FixedSchedule
from repro.core.pegasus import ENGINES, Pegasus, PegasusConfig, PegasusResult, summarize
from repro.core.summary_io import load_summary, save_summary

__all__ = [
    "PersonalizedWeights",
    "SummaryGraph",
    "FlatSummaryGraph",
    "BACKENDS",
    "BatchCostEvaluator",
    "CostModel",
    "COST_CACHES",
    "ENGINES",
    "personalized_error",
    "CorrectionSet",
    "compute_corrections",
    "decode",
    "lossless_size_in_bits",
    "candidate_groups",
    "node_shingles",
    "AdaptiveThreshold",
    "FixedSchedule",
    "Pegasus",
    "PegasusConfig",
    "PegasusResult",
    "summarize",
    "load_summary",
    "save_summary",
]
