"""Graph partitioning substrates for the distributed application (Sect. IV).

Alg. 3 partitions the node set with the Louvain method; the Fig. 12
comparison distributes plain subgraphs produced by balanced partitioners
(BLP and the SHP family).  All partitioners return a dense label array
``assignment[u] ∈ 0..m-1``.
"""

from repro.partitioning.quality import balance, edge_cut, fanout, modularity, validate_partition
from repro.partitioning.louvain import louvain_communities, louvain_partition
from repro.partitioning.blp import blp_partition
from repro.partitioning.shp import shp_partition

__all__ = [
    "balance",
    "edge_cut",
    "fanout",
    "modularity",
    "validate_partition",
    "louvain_communities",
    "louvain_partition",
    "blp_partition",
    "shp_partition",
]
