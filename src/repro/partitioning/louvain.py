"""The Louvain method (Blondel et al., 2008) — Alg. 3's partitioner.

Standard two-phase modularity optimization: a local-moving pass shifts
nodes to the neighboring community with the best modularity gain, then the
community graph is aggregated and the process repeats until modularity
stops improving.  :func:`louvain_partition` post-processes the communities
into exactly ``m`` balanced parts (merge smallest / split largest), which
is what the distributed pipeline needs for ``m`` machines.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro._util import ensure_rng
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.partitioning.quality import validate_partition


def _local_moving(
    adjacency: List[Dict[int, float]],
    strengths: np.ndarray,
    total_weight: float,
    rng: np.random.Generator,
    max_passes: int = 10,
) -> np.ndarray:
    """One Louvain phase: greedy modularity moves until stable."""
    n = len(adjacency)
    community = np.arange(n, dtype=np.int64)
    community_strength = strengths.copy()
    two_m = 2.0 * total_weight
    if two_m <= 0:
        return community
    improved = True
    passes = 0
    while improved and passes < max_passes:
        improved = False
        passes += 1
        for u in rng.permutation(n):
            current = community[u]
            k_u = strengths[u]
            # Weights from u to each adjacent community.
            weights_to: Dict[int, float] = {}
            for v, w in adjacency[u].items():
                if v == u:
                    continue
                c = int(community[v])
                weights_to[c] = weights_to.get(c, 0.0) + w
            community_strength[current] -= k_u
            best_community = current
            best_gain = weights_to.get(current, 0.0) - community_strength[current] * k_u / two_m
            for c, w_to in weights_to.items():
                if c == current:
                    continue
                gain = w_to - community_strength[c] * k_u / two_m
                if gain > best_gain:
                    best_gain = gain
                    best_community = c
            community_strength[best_community] += k_u
            if best_community != current:
                community[u] = best_community
                improved = True
    return community


def _aggregate(
    adjacency: List[Dict[int, float]], community: np.ndarray
) -> Tuple[List[Dict[int, float]], np.ndarray]:
    """Collapse communities into single nodes with summed edge weights."""
    labels, compact = np.unique(community, return_inverse=True)
    k = labels.size
    new_adjacency: List[Dict[int, float]] = [{} for _ in range(k)]
    for u, row in enumerate(adjacency):
        cu = int(compact[u])
        target = new_adjacency[cu]
        for v, w in row.items():
            cv = int(compact[v])
            target[cv] = target.get(cv, 0.0) + w
    return new_adjacency, compact


def louvain_communities(graph: Graph, *, seed: "int | np.random.Generator | None" = 0) -> np.ndarray:
    """Community labels from the Louvain method (arbitrary community count)."""
    rng = ensure_rng(seed)
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    adjacency: List[Dict[int, float]] = [{} for _ in range(n)]
    for u, v in graph.edge_array():
        adjacency[int(u)][int(v)] = adjacency[int(u)].get(int(v), 0.0) + 1.0
        adjacency[int(v)][int(u)] = adjacency[int(v)].get(int(u), 0.0) + 1.0
    total_weight = float(graph.num_edges)
    membership = np.arange(n, dtype=np.int64)  # original node -> current level node
    while True:
        strengths = np.asarray([sum(row.values()) for row in adjacency], dtype=np.float64)
        community = _local_moving(adjacency, strengths, total_weight, rng)
        labels, compact = np.unique(community, return_inverse=True)
        if labels.size == len(adjacency):  # no merge happened: converged
            break
        membership = compact[membership]
        adjacency, _ = _aggregate_with_selfloops(adjacency, community)
        if len(adjacency) <= 1:
            break
    # Compact final labels.
    _, final = np.unique(membership, return_inverse=True)
    return final.astype(np.int64)


def _aggregate_with_selfloops(
    adjacency: List[Dict[int, float]], community: np.ndarray
) -> Tuple[List[Dict[int, float]], np.ndarray]:
    """Aggregate keeping self-loop weights (within-community edges)."""
    return _aggregate(adjacency, community)


def _rebalance_to_parts(graph: Graph, labels: np.ndarray, num_parts: int, rng: np.random.Generator) -> np.ndarray:
    """Merge/split community labels into exactly *num_parts* parts."""
    n = graph.num_nodes
    groups: List[List[int]] = []
    for label in np.unique(labels):
        groups.append(np.flatnonzero(labels == label).tolist())
    # Split oversized groups (BFS halves keep them connected-ish) until we
    # have at least num_parts groups and no group dwarfs the ideal size.
    ideal = max(n // num_parts, 1)
    changed = True
    while changed:
        changed = False
        groups.sort(key=len)
        largest = groups[-1]
        if len(groups) < num_parts or len(largest) > 2 * ideal:
            if len(largest) < 2:
                break
            half = _bfs_split(graph, largest)
            groups.pop()
            groups.extend(half)
            changed = True
        if len(groups) >= num_parts and len(groups[-1]) <= 2 * ideal:
            break
    # Merge smallest groups until exactly num_parts remain.
    while len(groups) > num_parts:
        groups.sort(key=len)
        smallest = groups.pop(0)
        groups[0].extend(smallest)
    while len(groups) < num_parts:  # degenerate tiny graphs
        groups.sort(key=len)
        largest = groups.pop()
        if len(largest) < 2:
            groups.append(largest)
            groups.append([])
            continue
        groups.extend(_bfs_split(graph, largest))
    assignment = np.zeros(n, dtype=np.int64)
    for part, nodes in enumerate(groups):
        assignment[np.asarray(nodes, dtype=np.int64)] = part if nodes else part
    return assignment


def _bfs_split(graph: Graph, nodes: List[int]) -> List[List[int]]:
    """Split a node group into two halves by BFS order from its first node."""
    subgraph, originals = graph.induced_subgraph(nodes)
    dist = bfs_distances(subgraph, 0)
    order = np.argsort(np.where(dist < 0, np.iinfo(np.int64).max, dist), kind="stable")
    half = subgraph.num_nodes // 2
    first = originals[order[:half]].tolist()
    second = originals[order[half:]].tolist()
    return [first, second]


def louvain_partition(
    graph: Graph, num_parts: int, *, seed: "int | np.random.Generator | None" = 0
) -> np.ndarray:
    """Exactly *num_parts* balanced parts from Louvain communities.

    This is the preprocessing step of Alg. 3 (line 1).
    """
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    rng = ensure_rng(seed)
    labels = louvain_communities(graph, seed=rng)
    assignment = _rebalance_to_parts(graph, labels, num_parts, rng)
    return validate_partition(graph, assignment, num_parts=num_parts)
