"""Balanced Label Propagation (Ugander & Backstrom, WSDM 2013).

BLP alternates label-propagation steps with a balance constraint: every
node requests a move to the part holding most of its neighbors, and moves
are granted in gain order as long as part sizes stay within a slack of the
ideal size.  (The original solves a small LP per pair of parts to pick the
number of granted moves; the greedy capacity rule here is the standard
simplification and keeps the same fixed points — documented deviation, see
DESIGN.md.)
"""

from __future__ import annotations

import numpy as np

from repro._util import ensure_rng
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partitioning.quality import validate_partition


def _random_balanced(num_nodes: int, num_parts: int, rng: np.random.Generator) -> np.ndarray:
    assignment = np.arange(num_nodes, dtype=np.int64) % num_parts
    rng.shuffle(assignment)
    return assignment


def blp_partition(
    graph: Graph,
    num_parts: int,
    *,
    max_iterations: int = 10,
    slack: float = 0.1,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Partition *graph* into *num_parts* balanced parts with BLP.

    Parameters
    ----------
    graph:
        Input graph.
    num_parts:
        Number of parts ``m``.
    max_iterations:
        Label-propagation rounds (paper setting in Sect. V-A: 10).
    slack:
        Allowed relative imbalance; part sizes stay below
        ``(1 + slack) * |V| / m``.
    seed:
        RNG seed for the initial balanced assignment and tie breaking.
    """
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    assignment = _random_balanced(n, num_parts, rng)
    if n == 0 or num_parts == 1:
        return validate_partition(graph, assignment, num_parts=num_parts)
    capacity = int(np.ceil((1.0 + slack) * n / num_parts))

    for _ in range(max_iterations):
        sizes = np.bincount(assignment, minlength=num_parts)
        requests = []  # (negative gain, node, target part)
        for u in range(n):
            neighbors = graph.neighbors(u)
            if neighbors.size == 0:
                continue
            counts = np.bincount(assignment[neighbors], minlength=num_parts)
            current = int(assignment[u])
            target = int(np.argmax(counts))
            gain = int(counts[target] - counts[current])
            if target != current and gain > 0:
                requests.append((-gain, u, target))
        if not requests:
            break
        requests.sort()
        moved = 0
        for neg_gain, u, target in requests:
            current = int(assignment[u])
            if sizes[target] < capacity:
                assignment[u] = target
                sizes[target] += 1
                sizes[current] -= 1
                moved += 1
        if moved == 0:
            break
    return validate_partition(graph, assignment, num_parts=num_parts)
