"""Partition quality measures: cut, fanout, balance, modularity.

* **edge cut** — fraction of edges crossing parts (classic partitioning
  objective);
* **fanout** — average number of distinct parts among a node's closed
  neighborhood, the objective of the Social Hash Partitioner (queries on a
  node touch every machine holding one of its neighbors);
* **balance** — largest part size over the ideal ``|V|/m``;
* **modularity** — Newman modularity, the objective of Louvain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph


def validate_partition(graph: Graph, assignment: np.ndarray, *, num_parts: "int | None" = None) -> np.ndarray:
    """Check that *assignment* is a dense label array for *graph*.

    Returns the array as ``int64``.  Raises :class:`PartitionError` on
    wrong shape, negative labels, or (if *num_parts* is given) labels
    outside ``0..num_parts-1``.
    """
    arr = np.asarray(assignment, dtype=np.int64)
    if arr.shape != (graph.num_nodes,):
        raise PartitionError(f"assignment must have shape ({graph.num_nodes},), got {arr.shape}")
    if arr.size and arr.min() < 0:
        raise PartitionError("assignment contains negative labels")
    if num_parts is not None and arr.size and arr.max() >= num_parts:
        raise PartitionError(f"labels exceed num_parts={num_parts}")
    return arr


def edge_cut(graph: Graph, assignment: np.ndarray) -> float:
    """Fraction of edges with endpoints in different parts, in ``[0, 1]``."""
    assignment = validate_partition(graph, assignment)
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    crossing = assignment[edges[:, 0]] != assignment[edges[:, 1]]
    return float(crossing.mean())


def fanout(graph: Graph, assignment: np.ndarray) -> float:
    """Average number of distinct parts in each closed neighborhood (≥ 1)."""
    assignment = validate_partition(graph, assignment)
    if graph.num_nodes == 0:
        return 0.0
    total = 0
    for u in range(graph.num_nodes):
        parts = set(assignment[graph.neighbors(u)].tolist())
        parts.add(int(assignment[u]))
        total += len(parts)
    return total / graph.num_nodes


def balance(graph: Graph, assignment: np.ndarray, num_parts: "int | None" = None) -> float:
    """Largest part size divided by the ideal part size ``|V|/m`` (≥ 1)."""
    assignment = validate_partition(graph, assignment)
    if graph.num_nodes == 0:
        return 1.0
    if num_parts is None:
        num_parts = int(assignment.max()) + 1
    sizes = np.bincount(assignment, minlength=num_parts)
    ideal = graph.num_nodes / num_parts
    return float(sizes.max() / ideal) if ideal > 0 else 1.0


def modularity(graph: Graph, assignment: np.ndarray) -> float:
    """Newman modularity ``Q`` of the partition, in ``[-0.5, 1]``."""
    assignment = validate_partition(graph, assignment)
    m = graph.num_edges
    if m == 0:
        return 0.0
    edges = graph.edge_array()
    internal = float((assignment[edges[:, 0]] == assignment[edges[:, 1]]).sum())
    degrees = graph.degrees().astype(np.float64)
    strength = np.zeros(int(assignment.max()) + 1, dtype=np.float64)
    np.add.at(strength, assignment, degrees)
    return internal / m - float(np.sum((strength / (2.0 * m)) ** 2))
