"""Social Hash Partitioner variants: SHP-I, SHP-II, SHP-KL.

SHP (Kabiljo et al., 2017) assigns nodes to ``m`` buckets minimizing
**fanout** — the number of distinct buckets a node's neighborhood spans —
under a balance constraint, via iterations of bucket-local refinement.
The three variants reproduced here differ in their move mechanics, matching
the roles they play as Fig. 12 comparison points:

* ``SHP-I`` — probabilistic greedy: each node moves to its best bucket if
  capacity allows (single-constraint greedy);
* ``SHP-II`` — pairwise balanced exchange: move requests between each
  bucket pair are granted in gain order, equal numbers in each direction,
  so balance is preserved exactly;
* ``SHP-KL`` — Kernighan–Lin-style: like SHP-II but gains are recomputed
  after each granted swap within a pass (steepest descent).

All three start from a random balanced assignment; gains are measured as
the reduction in neighbor edge cut (the local surrogate SHP's fanout
objective optimizes in expectation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro._util import ensure_rng
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partitioning.quality import validate_partition

SHP_VARIANTS = ("shp1", "shp2", "shpkl")


def _neighbor_counts(graph: Graph, assignment: np.ndarray, u: int, num_parts: int) -> np.ndarray:
    neighbors = graph.neighbors(u)
    if neighbors.size == 0:
        return np.zeros(num_parts, dtype=np.int64)
    return np.bincount(assignment[neighbors], minlength=num_parts)


def _greedy_pass(graph: Graph, assignment: np.ndarray, num_parts: int, capacity: int) -> int:
    """SHP-I: single-constraint greedy moves; returns number of moves."""
    sizes = np.bincount(assignment, minlength=num_parts)
    moves = 0
    for u in range(graph.num_nodes):
        counts = _neighbor_counts(graph, assignment, u, num_parts)
        current = int(assignment[u])
        target = int(np.argmax(counts))
        if target != current and counts[target] > counts[current] and sizes[target] < capacity:
            assignment[u] = target
            sizes[target] += 1
            sizes[current] -= 1
            moves += 1
    return moves


def _collect_requests(
    graph: Graph, assignment: np.ndarray, num_parts: int
) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
    """Move requests keyed by (from_part, to_part), valued (gain, node)."""
    requests: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for u in range(graph.num_nodes):
        counts = _neighbor_counts(graph, assignment, u, num_parts)
        current = int(assignment[u])
        target = int(np.argmax(counts))
        gain = int(counts[target] - counts[current])
        if target != current and gain > 0:
            requests.setdefault((current, target), []).append((gain, u))
    return requests


def _exchange_pass(graph: Graph, assignment: np.ndarray, num_parts: int, *, recompute: bool) -> int:
    """SHP-II / SHP-KL: balanced pairwise exchanges; returns swap count."""
    requests = _collect_requests(graph, assignment, num_parts)
    swaps = 0
    for a in range(num_parts):
        for b in range(a + 1, num_parts):
            forward = sorted(requests.get((a, b), ()), reverse=True)
            backward = sorted(requests.get((b, a), ()), reverse=True)
            granted = min(len(forward), len(backward))
            for idx in range(granted):
                gain_f, u = forward[idx]
                gain_b, v = backward[idx]
                if recompute:
                    # KL-style: verify the pair still improves after the
                    # swaps already granted in this pass.
                    counts_u = _neighbor_counts(graph, assignment, u, num_parts)
                    counts_v = _neighbor_counts(graph, assignment, v, num_parts)
                    gain_f = int(counts_u[b] - counts_u[a])
                    gain_b = int(counts_v[a] - counts_v[b])
                    adjustment = 2 if graph.has_edge(u, v) else 0
                    if gain_f + gain_b - adjustment <= 0:
                        continue
                if assignment[u] == a and assignment[v] == b:
                    assignment[u] = b
                    assignment[v] = a
                    swaps += 1
    return swaps


def shp_partition(
    graph: Graph,
    num_parts: int,
    *,
    variant: str = "shp2",
    max_iterations: int = 10,
    slack: float = 0.1,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Partition *graph* into *num_parts* buckets with an SHP variant.

    Parameters
    ----------
    graph:
        Input graph.
    num_parts:
        Number of buckets (shards); the paper uses 8.
    variant:
        ``"shp1"``, ``"shp2"`` or ``"shpkl"`` (see module docstring).
    max_iterations:
        Refinement rounds (paper setting in Sect. V-A: 10).
    slack:
        Capacity slack for SHP-I (the exchange variants preserve balance
        exactly).
    seed:
        RNG seed for the initial balanced assignment.
    """
    if variant not in SHP_VARIANTS:
        raise PartitionError(f"variant must be one of {SHP_VARIANTS}, got {variant!r}")
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    assignment = np.arange(n, dtype=np.int64) % num_parts
    rng.shuffle(assignment)
    if n == 0 or num_parts == 1:
        return validate_partition(graph, assignment, num_parts=num_parts)
    capacity = int(np.ceil((1.0 + slack) * n / num_parts))
    for _ in range(max_iterations):
        if variant == "shp1":
            changed = _greedy_pass(graph, assignment, num_parts, capacity)
        else:
            changed = _exchange_pass(graph, assignment, num_parts, recompute=variant == "shpkl")
        if changed == 0:
            break
    return validate_partition(graph, assignment, num_parts=num_parts)
