"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class at an API boundary
instead of enumerating failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """An edge list or graph file could not be parsed or validated."""


class BudgetError(ReproError):
    """A size budget is invalid (non-positive, or impossible to satisfy)."""


class PartitionError(ReproError):
    """A node partition is malformed (missing nodes, empty parts, ...)."""


class QueryError(ReproError):
    """A graph query was issued with invalid arguments (e.g. unknown node)."""


class ServingError(ReproError):
    """The async serving layer rejected a request or hit a lifecycle error.

    Raised on admission-control rejection (bounded queue full), on
    submitting to a server that is not running, and on attempts to serve
    an unsupported source type.
    """


class StreamingError(ReproError):
    """The streaming layer was misused (bad refresh target, bad threshold)."""


class DeadlineExceeded(ServingError):
    """A request's deadline budget ran out before an answer was produced.

    Raised client-side when the per-request budget expires locally, and
    shipped server-side as a typed error frame when expired work is shed
    from a dispatch batch instead of being computed.
    """


class Overloaded(ServingError):
    """A tenant was explicitly shed because it keeps burning its deadline
    budget (per-tenant breaker open).  Carries a ``retry_after_ms`` hint;
    the client should back off at least that long before retrying.
    """

    def __init__(self, message: str = "tenant overloaded", *, retry_after_ms: float = 0.0):
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class CircuitOpen(ServingError):
    """A circuit breaker is open for the requested resource (lane or
    tenant): recent failures crossed the breaker's threshold and the
    cooldown has not elapsed.  Carries a ``retry_after_ms`` hint.
    """

    def __init__(self, message: str = "circuit open", *, retry_after_ms: float = 0.0):
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class RecoveryError(ReproError):
    """A persisted serving state dir could not be recovered (missing or
    corrupt manifest, checksum mismatch, or an unreplayable delta log)."""


class ProtocolError(ReproError):
    """A network peer violated the serving wire protocol.

    Base class for every failure the framing/codec layer reports; raw
    ``struct`` / ``json`` / ``msgpack`` exceptions never escape it.
    """


class FrameError(ProtocolError):
    """A length-prefixed frame was malformed (truncated header, zero or
    oversized length, bytes left over where a header was expected)."""


class CodecError(ProtocolError):
    """A complete frame's payload could not be decoded into a message
    (invalid JSON/msgpack, wrong top-level type, malformed array field)."""


class TenantError(ServingError):
    """A multi-tenant request named an unknown tenant, re-registered an
    existing one, or exceeded its tenant's admission quota."""
