"""Alg. 3 end to end: partition → per-part artifacts → routed answering.

Two cluster builders mirror the two sides of Fig. 12:

* :func:`build_summary_cluster` — PeGaSus' application: one summary graph
  per machine, personalized to the machine's node part ``V_i``, each within
  the per-machine memory budget ``k``;
* :func:`build_subgraph_cluster` — the graph-partitioning alternative: one
  budgeted subgraph per machine (edges closest to ``V_i``).

Both return a :class:`~repro.distributed.cluster.DistributedCluster` whose
queries are answered without communication.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.core.pegasus import PegasusConfig, summarize
from repro.core.weights import PersonalizedWeights
from repro.distributed.cluster import DistributedCluster, Machine
from repro.distributed.subgraph import budgeted_subgraph
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partitioning.louvain import louvain_partition
from repro.partitioning.quality import validate_partition

Partitioner = Callable[[Graph, int], np.ndarray]


def _parts_from_assignment(graph: Graph, assignment: np.ndarray, num_machines: int) -> List[np.ndarray]:
    assignment = validate_partition(graph, assignment, num_parts=num_machines)
    parts = [np.flatnonzero(assignment == i) for i in range(num_machines)]
    if any(p.size == 0 for p in parts):
        raise PartitionError("every machine needs a non-empty node part")
    return parts


def build_summary_cluster(
    graph: Graph,
    num_machines: int,
    budget_bits: float,
    *,
    partitioner: "Partitioner | None" = None,
    assignment: "np.ndarray | None" = None,
    config: "PegasusConfig | None" = None,
) -> DistributedCluster:
    """Alg. 3 preprocessing with personalized summary graphs.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    num_machines:
        Number of machines ``m`` (the paper uses 8).
    budget_bits:
        Per-machine memory ``k`` in bits.
    partitioner:
        ``(graph, m) -> assignment``; defaults to the Louvain-based
        balanced partitioner, as in Alg. 3.
    assignment:
        Precomputed node partition (overrides *partitioner*).
    config:
        PeGaSus hyper-parameters for the per-part summaries.
    """
    if assignment is None:
        partitioner = partitioner or (lambda g, m: louvain_partition(g, m, seed=0))
        assignment = partitioner(graph, num_machines)
    parts = _parts_from_assignment(graph, assignment, num_machines)
    config = config or PegasusConfig()
    machines = []
    for machine_id, part in enumerate(parts):
        weights = PersonalizedWeights(graph, part, alpha=config.alpha)
        result = summarize(graph, budget_bits=budget_bits, config=config, weights=weights)
        machines.append(
            Machine(
                machine_id=machine_id,
                part_nodes=part,
                source=result.summary,
                memory_bits=result.summary.size_in_bits(),
            )
        )
    return DistributedCluster(graph, machines)


def build_subgraph_cluster(
    graph: Graph,
    num_machines: int,
    budget_bits: float,
    *,
    partitioner: "Partitioner | None" = None,
    assignment: "np.ndarray | None" = None,
    seed: "int | None" = 0,
) -> DistributedCluster:
    """The Sect. IV alternative: budgeted subgraphs from a partitioner."""
    if assignment is None:
        partitioner = partitioner or (lambda g, m: louvain_partition(g, m, seed=0))
        assignment = partitioner(graph, num_machines)
    parts = _parts_from_assignment(graph, assignment, num_machines)
    machines = []
    for machine_id, part in enumerate(parts):
        subgraph = budgeted_subgraph(graph, part, budget_bits, seed=seed)
        machines.append(
            Machine(
                machine_id=machine_id,
                part_nodes=part,
                source=subgraph,
                memory_bits=subgraph.size_in_bits(),
            )
        )
    return DistributedCluster(graph, machines)
