"""Alg. 3 end to end: partition → per-part artifacts → routed answering.

Two cluster builders mirror the two sides of Fig. 12:

* :func:`build_summary_cluster` — PeGaSus' application: one summary graph
  per machine, personalized to the machine's node part ``V_i``, each within
  the per-machine memory budget ``k``;
* :func:`build_subgraph_cluster` — the graph-partitioning alternative: one
  budgeted subgraph per machine (edges closest to ``V_i``).

Both return a :class:`~repro.distributed.cluster.DistributedCluster` whose
queries are answered without communication.

The ``m`` per-machine artifacts are mutually independent, so both builders
accept ``workers=`` and fan the machines out over a
:class:`~repro.parallel.ParallelExecutor`.  Each machine's build is
self-contained and seeded, so the cluster is byte-identical at any worker
count.

With ``workers > 1`` the immutable input graph's CSR is packed once into
shared memory (:class:`~repro.parallel.graphship.GraphShipment`) and each
worker attaches it zero-copy instead of receiving a pickled copy through
the pool initializer — ``spawn`` workers stop re-pickling the graph
entirely.  Where shared memory is unavailable the pickle path is used
automatically, and ``workers=1`` runs inline with no shipping at all.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.core.pegasus import PegasusConfig, summarize
from repro.core.weights import PersonalizedWeights
from repro.distributed.cluster import DistributedCluster, Machine
from repro.distributed.subgraph import budgeted_subgraph
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.parallel import ParallelExecutor
from repro.parallel.graphship import GraphShipment, restore_graphs
from repro.partitioning.louvain import louvain_partition
from repro.partitioning.quality import validate_partition

Partitioner = Callable[[Graph, int], np.ndarray]


def _parts_from_assignment(graph: Graph, assignment: np.ndarray, num_machines: int) -> List[np.ndarray]:
    assignment = validate_partition(graph, assignment, num_parts=num_machines)
    parts = [np.flatnonzero(assignment == i) for i in range(num_machines)]
    if any(p.size == 0 for p in parts):
        raise PartitionError("every machine needs a non-empty node part")
    return parts


def _resolve_parts(
    graph: Graph,
    num_machines: int,
    partitioner: "Partitioner | None",
    assignment: "np.ndarray | None",
    seed: "int | None",
) -> List[np.ndarray]:
    """Partition once in the parent process (Alg. 3, line 1)."""
    if assignment is None:
        partitioner = partitioner or (lambda g, m: louvain_partition(g, m, seed=seed))
        assignment = partitioner(graph, num_machines)
    return _parts_from_assignment(graph, assignment, num_machines)


def _summary_machine_task(shared, task) -> Machine:
    """Build one machine's personalized summary (runs in a pool worker)."""
    graph, budget_bits, config = restore_graphs(shared)
    machine_id, part = task
    weights = PersonalizedWeights(graph, part, alpha=config.alpha)
    result = summarize(graph, budget_bits=budget_bits, config=config, weights=weights)
    return Machine(
        machine_id=machine_id,
        part_nodes=part,
        source=result.summary,
        memory_bits=result.summary.size_in_bits(),
    )


def _subgraph_machine_task(shared, task) -> Machine:
    """Build one machine's budgeted subgraph (runs in a pool worker)."""
    graph, budget_bits, seed = restore_graphs(shared)
    machine_id, part = task
    subgraph = budgeted_subgraph(graph, part, budget_bits, seed=seed)
    return Machine(
        machine_id=machine_id,
        part_nodes=part,
        source=subgraph,
        memory_bits=subgraph.size_in_bits(),
    )


def build_summary_cluster(
    graph: Graph,
    num_machines: int,
    budget_bits: float,
    *,
    partitioner: "Partitioner | None" = None,
    assignment: "np.ndarray | None" = None,
    config: "PegasusConfig | None" = None,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
    use_shared_memory: bool = True,
) -> DistributedCluster:
    """Alg. 3 preprocessing with personalized summary graphs.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    num_machines:
        Number of machines ``m`` (the paper uses 8).
    budget_bits:
        Per-machine memory ``k`` in bits.
    partitioner:
        ``(graph, m) -> assignment``; defaults to the Louvain-based
        balanced partitioner, as in Alg. 3.
    assignment:
        Precomputed node partition (overrides *partitioner*).
    config:
        PeGaSus hyper-parameters for the per-part summaries.
    seed:
        Seed for the default Louvain partitioner and, when *config* is
        not given, for the default ``PegasusConfig`` (the seed used to
        be silently dropped on both paths, leaving the default build
        non-reproducible).
    workers:
        Process-pool size for the ``m`` per-machine summary builds
        (``1`` = sequential, ``0`` = all cores).  With a seeded config
        the machine summaries are byte-identical at any worker count;
        ``config.seed=None`` opts into fresh entropy per build.
    use_shared_memory:
        Ship the input graph's CSR to the workers through one
        shared-memory block (default; zero-copy attach per worker).
        ``False`` pickles the graph once per worker as before — the
        cluster is identical either way, only the shipping cost differs.
    """
    parts = _resolve_parts(graph, num_machines, partitioner, assignment, seed)
    config = config or PegasusConfig(seed=seed)
    executor = ParallelExecutor(workers)
    shared = (graph, float(budget_bits), config)
    tasks = list(enumerate(parts))
    if executor.workers > 1:
        with GraphShipment(shared, use_shared_memory=use_shared_memory) as shipment:
            machines = executor.map(_summary_machine_task, tasks, shared=shipment.payload)
    else:
        machines = executor.map(_summary_machine_task, tasks, shared=shared)
    return DistributedCluster(graph, machines)


def build_subgraph_cluster(
    graph: Graph,
    num_machines: int,
    budget_bits: float,
    *,
    partitioner: "Partitioner | None" = None,
    assignment: "np.ndarray | None" = None,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
    use_shared_memory: bool = True,
) -> DistributedCluster:
    """The Sect. IV alternative: budgeted subgraphs from a partitioner.

    *seed* feeds both the default Louvain partitioner and the per-machine
    :func:`~repro.distributed.subgraph.budgeted_subgraph` tie-breaking;
    *workers* fans the per-machine subgraph builds out, byte-identically
    at any worker count, and *use_shared_memory* ships the input graph
    zero-copy to the workers, as in :func:`build_summary_cluster`.
    """
    parts = _resolve_parts(graph, num_machines, partitioner, assignment, seed)
    executor = ParallelExecutor(workers)
    shared = (graph, float(budget_bits), seed)
    tasks = list(enumerate(parts))
    if executor.workers > 1:
        with GraphShipment(shared, use_shared_memory=use_shared_memory) as shipment:
            machines = executor.map(_subgraph_machine_task, tasks, shared=shipment.payload)
    else:
        machines = executor.map(_subgraph_machine_task, tasks, shared=shared)
    return DistributedCluster(graph, machines)
