"""Alg. 3 end to end: partition → per-part artifacts → routed answering.

Two cluster builders mirror the two sides of Fig. 12:

* :func:`build_summary_cluster` — PeGaSus' application: one summary graph
  per machine, personalized to the machine's node part ``V_i``, each within
  the per-machine memory budget ``k``;
* :func:`build_subgraph_cluster` — the graph-partitioning alternative: one
  budgeted subgraph per machine (edges closest to ``V_i``).

Both return a :class:`~repro.distributed.cluster.DistributedCluster` whose
queries are answered without communication.

The ``m`` per-machine artifacts are mutually independent, so both builders
accept ``workers=`` and fan the machines out over a
:class:`~repro.parallel.ParallelExecutor`.  Each machine's build is
self-contained and seeded, so the cluster is byte-identical at any worker
count.

With ``workers > 1`` the immutable input graph's CSR is packed once into
shared memory (:class:`~repro.parallel.graphship.GraphShipment`) and each
worker attaches it zero-copy instead of receiving a pickled copy through
the pool initializer — ``spawn`` workers stop re-pickling the graph
entirely.  Where shared memory is unavailable the pickle path is used
automatically, and ``workers=1`` runs inline with no shipping at all.
"""

from __future__ import annotations

import os
from typing import Callable, List, Tuple

import numpy as np

from repro.core.pegasus import PegasusConfig, summarize
from repro.core.weights import PersonalizedWeights
from repro.distributed.cluster import DistributedCluster, Machine
from repro.distributed.subgraph import budgeted_subgraph
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.obs.profile import probe
from repro.parallel import ParallelExecutor
from repro.parallel.graphship import GraphShipment, restore_graphs
from repro.partitioning.louvain import louvain_partition
from repro.partitioning.quality import validate_partition

Partitioner = Callable[[Graph, int], np.ndarray]


def _parts_from_assignment(graph: Graph, assignment: np.ndarray, num_machines: int) -> List[np.ndarray]:
    assignment = validate_partition(graph, assignment, num_parts=num_machines)
    parts = [np.flatnonzero(assignment == i) for i in range(num_machines)]
    if any(p.size == 0 for p in parts):
        raise PartitionError("every machine needs a non-empty node part")
    return parts


def _resolve_parts(
    graph: Graph,
    num_machines: int,
    partitioner: "Partitioner | None",
    assignment: "np.ndarray | None",
    seed: "int | None",
) -> List[np.ndarray]:
    """Partition once in the parent process (Alg. 3, line 1)."""
    if assignment is None:
        partitioner = partitioner or (lambda g, m: louvain_partition(g, m, seed=seed))
        assignment = partitioner(graph, num_machines)
    return _parts_from_assignment(graph, assignment, num_machines)


def _summary_machine_task(shared, task) -> Machine:
    """Build one machine's personalized summary (runs in a pool worker)."""
    graph, budget_bits, config = restore_graphs(shared)
    machine_id, part = task
    weights = PersonalizedWeights(graph, part, alpha=config.alpha)
    result = summarize(graph, budget_bits=budget_bits, config=config, weights=weights)
    return Machine(
        machine_id=machine_id,
        part_nodes=part,
        source=result.summary,
        memory_bits=result.summary.size_in_bits(),
    )


def _subgraph_machine_task(shared, task) -> Machine:
    """Build one machine's budgeted subgraph (runs in a pool worker)."""
    graph, budget_bits, seed = restore_graphs(shared)
    machine_id, part = task
    subgraph = budgeted_subgraph(graph, part, budget_bits, seed=seed)
    return Machine(
        machine_id=machine_id,
        part_nodes=part,
        source=subgraph,
        memory_bits=subgraph.size_in_bits(),
    )


def _spill_path(spill_dir: str, machine_id: int) -> str:
    return os.path.join(spill_dir, f"machine-{machine_id:04d}.store")


def _summary_spill_task(shared, task) -> Tuple[int, str, float]:
    """Build one machine's summary, persist it, and drop the in-RAM copy.

    The worker's return payload is a ``(machine_id, path, memory_bits)``
    triple — the summary itself never travels back to (or stays resident
    in) the parent; the parent memory-maps the store file instead.  The
    graph CSR is not embedded (every machine shares the one input graph),
    so each spill file holds exactly one machine's columnar summary.
    """
    from repro.store import save_summary_binary

    graph, budget_bits, config, spill_dir = restore_graphs(shared)
    machine_id, part = task
    weights = PersonalizedWeights(graph, part, alpha=config.alpha)
    result = summarize(graph, budget_bits=budget_bits, config=config, weights=weights)
    path = _spill_path(spill_dir, machine_id)
    with probe("store.spill"):
        save_summary_binary(result.summary, path, include_graph=False)
    return machine_id, path, result.summary.size_in_bits()


def _subgraph_spill_task(shared, task) -> Tuple[int, str, float]:
    """Build one machine's budgeted subgraph, persist it, drop the copy."""
    from repro.store import save_graph

    graph, budget_bits, seed, spill_dir = restore_graphs(shared)
    machine_id, part = task
    subgraph = budgeted_subgraph(graph, part, budget_bits, seed=seed)
    path = _spill_path(spill_dir, machine_id)
    with probe("store.spill"):
        save_graph(subgraph, path)
    return machine_id, path, subgraph.size_in_bits()


def _machines_from_spill(
    graph: "Graph | None",
    parts: List[np.ndarray],
    results: "List[Tuple[int, str, float]]",
    *,
    summaries: bool,
) -> List[Machine]:
    """Reopen spilled stores as memory-mapped machine sources.

    The mapped arrays are paged in on demand by the OS, so the parent's
    resident set stays bounded by one machine's working set instead of the
    whole cluster — the build-beyond-RAM mode of the persistent store.
    """
    from repro.store import load_graph, load_summary_binary

    machines: List[Machine] = []
    for machine_id, path, memory_bits in results:
        if summaries:
            source = load_summary_binary(path, graph, verify=False)
        else:
            source = load_graph(path, verify=False)
        machines.append(
            Machine(
                machine_id=machine_id,
                part_nodes=parts[machine_id],
                source=source,
                memory_bits=memory_bits,
            )
        )
    machines.sort(key=lambda machine: machine.machine_id)
    return machines


def build_summary_cluster(
    graph: Graph,
    num_machines: int,
    budget_bits: float,
    *,
    partitioner: "Partitioner | None" = None,
    assignment: "np.ndarray | None" = None,
    config: "PegasusConfig | None" = None,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
    use_shared_memory: bool = True,
    spill_dir: "str | os.PathLike[str] | None" = None,
) -> DistributedCluster:
    """Alg. 3 preprocessing with personalized summary graphs.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    num_machines:
        Number of machines ``m`` (the paper uses 8).
    budget_bits:
        Per-machine memory ``k`` in bits.
    partitioner:
        ``(graph, m) -> assignment``; defaults to the Louvain-based
        balanced partitioner, as in Alg. 3.
    assignment:
        Precomputed node partition (overrides *partitioner*).
    config:
        PeGaSus hyper-parameters for the per-part summaries.
    seed:
        Seed for the default Louvain partitioner and, when *config* is
        not given, for the default ``PegasusConfig`` (the seed used to
        be silently dropped on both paths, leaving the default build
        non-reproducible).
    workers:
        Process-pool size for the ``m`` per-machine summary builds
        (``1`` = sequential, ``0`` = all cores).  With a seeded config
        the machine summaries are byte-identical at any worker count;
        ``config.seed=None`` opts into fresh entropy per build.
    use_shared_memory:
        Ship the input graph's CSR to the workers through one
        shared-memory block (default; zero-copy attach per worker).
        ``False`` pickles the graph once per worker as before — the
        cluster is identical either way, only the shipping cost differs.
    spill_dir:
        Out-of-core mode: each machine's summary is written to
        ``<spill_dir>/machine-<id>.store`` (crash-atomic, checksummed)
        as it is built and the in-RAM copy is dropped; the returned
        cluster memory-maps the store files, so peak resident memory is
        bounded by one machine's working set rather than the whole
        cluster.  The saved files are byte-identical to what
        :func:`repro.store.save_summary_binary` would write from an
        in-RAM build (``include_graph=False``).  The directory is
        created if missing and must outlive the cluster.
    """
    parts = _resolve_parts(graph, num_machines, partitioner, assignment, seed)
    config = config or PegasusConfig(seed=seed)
    executor = ParallelExecutor(workers)
    tasks = list(enumerate(parts))
    if spill_dir is not None:
        spill_dir = os.fspath(spill_dir)
        os.makedirs(spill_dir, exist_ok=True)
        shared = (graph, float(budget_bits), config, spill_dir)
        task_fn = _summary_spill_task
    else:
        shared = (graph, float(budget_bits), config)
        task_fn = _summary_machine_task
    if executor.workers > 1:
        with GraphShipment(shared, use_shared_memory=use_shared_memory) as shipment:
            results = executor.map(task_fn, tasks, shared=shipment.payload)
    else:
        results = executor.map(task_fn, tasks, shared=shared)
    if spill_dir is not None:
        machines = _machines_from_spill(graph, parts, results, summaries=True)
    else:
        machines = results
    return DistributedCluster(graph, machines)


def build_subgraph_cluster(
    graph: Graph,
    num_machines: int,
    budget_bits: float,
    *,
    partitioner: "Partitioner | None" = None,
    assignment: "np.ndarray | None" = None,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
    use_shared_memory: bool = True,
    spill_dir: "str | os.PathLike[str] | None" = None,
) -> DistributedCluster:
    """The Sect. IV alternative: budgeted subgraphs from a partitioner.

    *seed* feeds both the default Louvain partitioner and the per-machine
    :func:`~repro.distributed.subgraph.budgeted_subgraph` tie-breaking;
    *workers* fans the per-machine subgraph builds out, byte-identically
    at any worker count, and *use_shared_memory* ships the input graph
    zero-copy to the workers, as in :func:`build_summary_cluster`.
    *spill_dir* is the same out-of-core mode: each machine's subgraph is
    persisted as it is built and the cluster memory-maps the files.
    """
    parts = _resolve_parts(graph, num_machines, partitioner, assignment, seed)
    executor = ParallelExecutor(workers)
    tasks = list(enumerate(parts))
    if spill_dir is not None:
        spill_dir = os.fspath(spill_dir)
        os.makedirs(spill_dir, exist_ok=True)
        shared = (graph, float(budget_bits), seed, spill_dir)
        task_fn = _subgraph_spill_task
    else:
        shared = (graph, float(budget_bits), seed)
        task_fn = _subgraph_machine_task
    if executor.workers > 1:
        with GraphShipment(shared, use_shared_memory=use_shared_memory) as shipment:
            results = executor.map(task_fn, tasks, shared=shipment.payload)
    else:
        results = executor.map(task_fn, tasks, shared=shared)
    if spill_dir is not None:
        machines = _machines_from_spill(None, parts, results, summaries=False)
    else:
        machines = results
    return DistributedCluster(graph, machines)
