"""Communication-free distributed multi-query answering (Sect. IV, Alg. 3).

The pipeline simulates ``m`` machines, each holding either a personalized
summary graph (PeGaSus' application) or a budgeted subgraph (the
partitioning alternative).  Queries are routed to the machine owning the
query node and answered there with no inter-machine communication — the
cluster asserts that the communication counter stays at zero.
"""

from repro.distributed.cluster import DistributedCluster, Machine
from repro.distributed.subgraph import budgeted_subgraph
from repro.distributed.pipeline import (
    build_summary_cluster,
    build_subgraph_cluster,
)

__all__ = [
    "DistributedCluster",
    "Machine",
    "budgeted_subgraph",
    "build_summary_cluster",
    "build_subgraph_cluster",
]
