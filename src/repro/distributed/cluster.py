"""A simulated cluster for communication-free multi-query answering.

Each :class:`Machine` holds one query source (a personalized summary graph
or a budgeted subgraph) in its simulated main memory; the
:class:`DistributedCluster` routes a query on node ``q`` to the machine
whose node-set partition contains ``q`` (Alg. 3, lines 5–7) and answers it
locally.  A communication counter exists purely to *prove* the
communication-free property: nothing in this module ever increments it,
and :meth:`DistributedCluster.assert_communication_free` is checked in
tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import PartitionError, QueryError
from repro.graph.graph import Graph
from repro.queries.hop import hop_distances
from repro.queries.operator import QuerySource, ReconstructedOperator
from repro.queries.php import php_scores
from repro.queries.rwr import rwr_scores


@dataclass
class Machine:
    """One simulated machine: an id, its node partition, and its data.

    Attributes
    ----------
    machine_id:
        Index in ``0..m-1``.
    part_nodes:
        The nodes ``V_i`` whose queries route here.
    source:
        The locally held query source (summary graph or subgraph).
    memory_bits:
        Size of *source* in bits (checked against the budget upstream).
    """

    machine_id: int
    part_nodes: np.ndarray
    source: QuerySource
    memory_bits: float
    _operator: "ReconstructedOperator | None" = field(default=None, repr=False)

    def operator(self) -> ReconstructedOperator:
        """Lazily built reconstruction operator, shared across queries."""
        if self._operator is None:
            self._operator = ReconstructedOperator(self.source)
        return self._operator

    def answer(self, node: int, query_type: str) -> np.ndarray:
        """Answer one query locally (no communication)."""
        if query_type == "rwr":
            return rwr_scores(self.source, node, operator=self.operator())
        if query_type == "hop":
            return hop_distances(self.source, node).astype(np.float64)
        if query_type == "php":
            return php_scores(self.source, node, operator=self.operator())
        raise QueryError(f"unknown query type {query_type!r}")


class DistributedCluster:
    """``m`` machines plus the node→machine routing table (Alg. 3)."""

    def __init__(self, graph: Graph, machines: List[Machine]):
        if not machines:
            raise PartitionError("a cluster needs at least one machine")
        self.graph = graph
        self.machines = machines
        self._route = np.full(graph.num_nodes, -1, dtype=np.int64)
        for machine in machines:
            if np.any(self._route[machine.part_nodes] >= 0):
                raise PartitionError("machine parts overlap")
            self._route[machine.part_nodes] = machine.machine_id
        if np.any(self._route < 0):
            raise PartitionError("machine parts do not cover all nodes")
        self.communication_count = 0

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return len(self.machines)

    def machine_for(self, node: int) -> Machine:
        """The machine whose part contains *node* (Alg. 3, line 6)."""
        if not 0 <= node < self.graph.num_nodes:
            raise QueryError(f"node {node} out of range")
        return self.machines[int(self._route[node])]

    def answer(self, node: int, query_type: str) -> np.ndarray:
        """Route and answer one query; never touches another machine."""
        return self.machine_for(node).answer(node, query_type)

    def answer_many(self, nodes, query_type: str) -> Dict[int, np.ndarray]:
        """Answer a batch of queries (the multi-query workload of Sect. IV)."""
        return {int(q): self.answer(int(q), query_type) for q in nodes}

    def memory_per_machine(self) -> List[float]:
        """Bits held by each machine (must respect the per-machine budget)."""
        return [machine.memory_bits for machine in self.machines]

    def assert_communication_free(self) -> None:
        """Raise if any inter-machine communication was recorded."""
        if self.communication_count != 0:
            raise QueryError(
                f"expected communication-free answering, saw {self.communication_count} messages"
            )
