"""A simulated cluster for communication-free multi-query answering.

Each :class:`Machine` holds one query source (a personalized summary graph
or a budgeted subgraph) in its simulated main memory; the
:class:`DistributedCluster` routes a query on node ``q`` to the machine
whose node-set partition contains ``q`` (Alg. 3, lines 5–7) and answers it
locally.  A communication counter exists purely to *prove* the
communication-free property: nothing in this module ever increments it,
and :meth:`DistributedCluster.assert_communication_free` is checked in
tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.summary import SummaryGraph
from repro.errors import PartitionError, QueryError
from repro.graph.graph import Graph
from repro.parallel import ParallelExecutor
from repro.queries.hop import hop_distances
from repro.queries.operator import QuerySource, ReconstructedOperator
from repro.queries.php import php_scores
from repro.queries.rwr import rwr_scores


@dataclass
class Machine:
    """One simulated machine: an id, its node partition, and its data.

    Attributes
    ----------
    machine_id:
        Index in ``0..m-1``.
    part_nodes:
        The nodes ``V_i`` whose queries route here.
    source:
        The locally held query source (summary graph or subgraph).
    memory_bits:
        Size of *source* in bits (checked against the budget upstream).
    """

    machine_id: int
    part_nodes: np.ndarray
    source: QuerySource
    memory_bits: float
    _operator: "ReconstructedOperator | None" = field(default=None, repr=False)

    def operator(self) -> ReconstructedOperator:
        """Lazily built reconstruction operator, shared across queries."""
        if self._operator is None:
            self._operator = ReconstructedOperator(self.source)
        return self._operator

    def replace_source(self, source: QuerySource, *, memory_bits: "float | None" = None) -> None:
        """Swap in a new query source (the streaming layer's refresh path).

        Drops the cached reconstruction operator — it encodes the old
        source's arrays — and updates the memory accounting.  Routing
        (``part_nodes``) is untouched: the streaming layer pins the
        partition, so a swapped machine keeps answering the same nodes.
        """
        self.source = source
        self.memory_bits = float(
            memory_bits if memory_bits is not None else source.size_in_bits()
        )
        self._operator = None

    def answer(self, node: int, query_type: str) -> np.ndarray:
        """Answer one query locally (no communication)."""
        if query_type == "rwr":
            return rwr_scores(self.source, node, operator=self.operator())
        if query_type == "hop":
            return hop_distances(self.source, node).astype(np.float64)
        if query_type == "php":
            return php_scores(self.source, node, operator=self.operator())
        raise QueryError(f"unknown query type {query_type!r}")


def _machine_batch_task(shared, task) -> List[np.ndarray]:
    """Answer one machine's routed batch (the inline, no-shipping path).

    The machine's reconstruction operator is built once and reused across
    the whole batch (``Machine.operator`` caches it).  The parallel path
    of :meth:`DistributedCluster.answer_batch` does not use this: it ships
    the serving blueprint's array reduction instead of Machine objects.
    """
    query_type = shared
    machine, nodes = task
    return [machine.answer(node, query_type) for node in nodes]


class DistributedCluster:
    """``m`` machines plus the node→machine routing table (Alg. 3)."""

    def __init__(self, graph: Graph, machines: List[Machine]):
        if not machines:
            raise PartitionError("a cluster needs at least one machine")
        self.graph = graph
        self.machines = machines
        self._route = np.full(graph.num_nodes, -1, dtype=np.int64)
        for machine in machines:
            if np.any(self._route[machine.part_nodes] >= 0):
                raise PartitionError("machine parts overlap")
            self._route[machine.part_nodes] = machine.machine_id
        if np.any(self._route < 0):
            raise PartitionError("machine parts do not cover all nodes")
        self.communication_count = 0

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return len(self.machines)

    def machine_for(self, node: int) -> Machine:
        """The machine whose part contains *node* (Alg. 3, line 6)."""
        if not 0 <= node < self.graph.num_nodes:
            raise QueryError(f"node {node} out of range")
        return self.machines[int(self._route[node])]

    def answer(self, node: int, query_type: str) -> np.ndarray:
        """Route and answer one query; never touches another machine."""
        return self.machine_for(node).answer(node, query_type)

    def answer_many(self, nodes, query_type: str) -> Dict[int, np.ndarray]:
        """Answer a batch of queries (the multi-query workload of Sect. IV).

        Returns a dict keyed by node id, so **repeated query nodes
        collapse to a single entry** — harmless for accuracy experiments
        (every occurrence has the same answer) but wrong for serving,
        where each request must get its own response.  The serving layer
        (:class:`repro.serving.QueryServer`) therefore keeps one future
        per *request* and never routes through this dict.
        """
        return {int(q): self.answer(int(q), query_type) for q in nodes}

    def answer_batch(
        self, nodes, query_type: str, *, workers: "int | None" = 1
    ) -> Dict[int, np.ndarray]:
        """Serve a batch of routed queries with per-machine batching.

        Queries are grouped by owning machine (Alg. 3's routing), each
        machine answers its whole group against one reconstruction
        operator built once per machine — not once per query — and the
        groups optionally fan out over a
        :class:`~repro.parallel.ParallelExecutor` (*workers* processes;
        ``1`` = inline).  Answers are exactly those of
        :meth:`answer_many`, keyed by node in input order, and no
        inter-machine communication happens in either mode.

        Like :meth:`answer_many`, the dict return **dedupes repeated
        query nodes** (pinned by a regression test); per-request
        answering lives in :class:`repro.serving.QueryServer`.
        """
        node_list = [int(q) for q in nodes]
        groups: Dict[int, List[int]] = {}
        for node in node_list:
            machine = self.machine_for(node)  # validates the node id
            groups.setdefault(machine.machine_id, []).append(node)
        executor = ParallelExecutor(workers)
        order = sorted(groups)
        shipping = executor.workers > 1 and len(groups) > 1
        if shipping:
            # Every summary holds a reference to the full input graph, so
            # pickling Machine objects would ship the graph once per
            # machine.  Ship the serving layer's array reduction instead:
            # workers rebuild each machine from its determining arrays
            # (shared memory where available) and build its operator once.
            from repro.serving.blueprint import ClusterBlueprint, serve_batch_task

            tasks = [
                (machine_id, [(node, query_type) for node in groups[machine_id]])
                for machine_id in order
            ]
            with ClusterBlueprint(self) as blueprint:
                batches = executor.map(serve_batch_task, tasks, shared=blueprint.payload)
        else:
            inline_tasks = [(self.machines[machine_id], groups[machine_id]) for machine_id in order]
            batches = executor.map(_machine_batch_task, inline_tasks, shared=query_type)
        answers: Dict[int, np.ndarray] = {}
        for machine_id, vectors in zip(order, batches):
            answers.update(zip(groups[machine_id], vectors))
        return {node: answers[node] for node in node_list}

    def memory_per_machine(self) -> List[float]:
        """Bits held by each machine (must respect the per-machine budget)."""
        return [machine.memory_bits for machine in self.machines]

    def assert_communication_free(self) -> None:
        """Raise if any inter-machine communication was recorded."""
        if self.communication_count != 0:
            raise QueryError(
                f"expected communication-free answering, saw {self.communication_count} messages"
            )
