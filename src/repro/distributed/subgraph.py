"""The "potential alternative" of Sect. IV: budgeted subgraphs per machine.

Instead of a personalized summary, machine ``i`` can hold an uncompressed
subgraph of size ``k`` composed of the edges *closest* to its node part
``V_i`` (closeness = hop distance of an edge's nearer endpoint to ``V_i``).
The subgraph keeps the global node numbering so query answers align with
the full graph; its size follows the input-graph encoding of Eq. 4,
``2 |E_i| log2 |V|``.
"""

from __future__ import annotations

import numpy as np

from repro._util import ensure_rng, log2_capped
from repro.errors import BudgetError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances


def budgeted_subgraph(
    graph: Graph,
    part_nodes: np.ndarray,
    budget_bits: float,
    *,
    seed: "int | np.random.Generator | None" = 0,
) -> Graph:
    """The edges closest to *part_nodes*, as many as fit in *budget_bits*.

    Edges are ranked by ``min(D(u, V_i), D(v, V_i))`` then by
    ``max(...)``, with random tie-breaking, and taken greedily until the
    Eq. 4 size ``2 |E_i| log2|V|`` would exceed the budget.
    """
    if budget_bits <= 0:
        raise BudgetError(f"budget_bits must be positive, got {budget_bits}")
    part_nodes = np.asarray(part_nodes, dtype=np.int64)
    if part_nodes.size == 0:
        return Graph.empty(graph.num_nodes)
    bits_per_edge = 2.0 * log2_capped(max(graph.num_nodes, 2))
    max_edges = int(budget_bits // bits_per_edge)
    if max_edges <= 0:
        return Graph.empty(graph.num_nodes)

    edges = graph.edge_array()
    if edges.shape[0] <= max_edges:
        return graph  # whole graph fits

    rng = ensure_rng(seed)
    distance = bfs_distances(graph, part_nodes)
    unreachable = distance < 0
    if unreachable.any():
        distance = distance.copy()
        distance[unreachable] = int(distance.max()) + 1
    near = np.minimum(distance[edges[:, 0]], distance[edges[:, 1]])
    far = np.maximum(distance[edges[:, 0]], distance[edges[:, 1]])
    jitter = rng.random(edges.shape[0])
    order = np.lexsort((jitter, far, near))
    chosen = edges[order[:max_edges]]
    return Graph.from_edges(graph.num_nodes, chosen, validate=False)
