"""Tests for the communication-free distributed application (Alg. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PegasusConfig
from repro.distributed import (
    DistributedCluster,
    Machine,
    budgeted_subgraph,
    build_subgraph_cluster,
    build_summary_cluster,
)
from repro.errors import BudgetError, PartitionError, QueryError
from repro.graph import Graph, planted_partition


@pytest.fixture(scope="module")
def graph():
    return planted_partition(160, 4, avg_degree_in=8.0, avg_degree_out=1.0, seed=2)


@pytest.fixture(scope="module")
def summary_cluster(graph):
    return build_summary_cluster(
        graph, 4, 0.5 * graph.size_in_bits(), config=PegasusConfig(seed=1, t_max=10)
    )


class TestBudgetedSubgraph:
    def test_respects_budget(self, graph):
        budget = 0.3 * graph.size_in_bits()
        sub = budgeted_subgraph(graph, np.arange(40), budget)
        assert sub.size_in_bits() <= budget
        assert sub.num_nodes == graph.num_nodes

    def test_prefers_close_edges(self, graph):
        part = np.arange(40)
        sub = budgeted_subgraph(graph, part, 0.2 * graph.size_in_bits(), seed=0)
        from repro.graph import bfs_distances

        dist = bfs_distances(graph, part)
        kept = sub.edge_array()
        all_edges = graph.edge_array()
        kept_near = np.minimum(dist[kept[:, 0]], dist[kept[:, 1]]).mean()
        all_near = np.minimum(dist[all_edges[:, 0]], dist[all_edges[:, 1]]).mean()
        assert kept_near <= all_near

    def test_whole_graph_fits(self, graph):
        sub = budgeted_subgraph(graph, np.arange(10), 10 * graph.size_in_bits())
        assert sub == graph

    def test_zero_budget_rejected(self, graph):
        with pytest.raises(BudgetError):
            budgeted_subgraph(graph, np.arange(10), 0.0)

    def test_tiny_budget_gives_empty(self, graph):
        sub = budgeted_subgraph(graph, np.arange(10), 1.0)
        assert sub.num_edges == 0

    def test_empty_part(self, graph):
        sub = budgeted_subgraph(graph, np.asarray([], dtype=np.int64), 100.0)
        assert sub.num_edges == 0


class TestCluster:
    def test_machine_count_and_memory(self, graph, summary_cluster):
        assert summary_cluster.num_machines == 4
        budget = 0.5 * graph.size_in_bits()
        for bits in summary_cluster.memory_per_machine():
            assert bits <= budget

    def test_routing_matches_parts(self, graph, summary_cluster):
        for machine in summary_cluster.machines:
            for node in machine.part_nodes[:5]:
                assert summary_cluster.machine_for(int(node)).machine_id == machine.machine_id

    def test_communication_free(self, graph, summary_cluster):
        summary_cluster.answer(0, "rwr")
        summary_cluster.answer(1, "hop")
        summary_cluster.answer(2, "php")
        summary_cluster.assert_communication_free()

    def test_answer_many(self, graph, summary_cluster):
        answers = summary_cluster.answer_many([0, 5, 9], "hop")
        assert set(answers) == {0, 5, 9}
        for vec in answers.values():
            assert vec.shape == (graph.num_nodes,)

    def test_unknown_query_type(self, graph, summary_cluster):
        with pytest.raises(QueryError):
            summary_cluster.answer(0, "pagerank")

    def test_node_out_of_range(self, graph, summary_cluster):
        with pytest.raises(QueryError):
            summary_cluster.answer(10_000, "rwr")

    def test_overlapping_parts_rejected(self, graph):
        m = Machine(0, np.asarray([0, 1]), graph, 0.0)
        m2 = Machine(1, np.asarray([1, 2]), graph, 0.0)
        with pytest.raises(PartitionError):
            DistributedCluster(graph, [m, m2])

    def test_uncovered_nodes_rejected(self, graph):
        m = Machine(0, np.asarray([0, 1]), graph, 0.0)
        with pytest.raises(PartitionError):
            DistributedCluster(graph, [m])

    def test_empty_cluster_rejected(self, graph):
        with pytest.raises(PartitionError):
            DistributedCluster(graph, [])


class TestPipelines:
    def test_subgraph_cluster_builds(self, graph):
        cluster = build_subgraph_cluster(graph, 4, 0.4 * graph.size_in_bits())
        assert cluster.num_machines == 4
        for bits in cluster.memory_per_machine():
            assert bits <= 0.4 * graph.size_in_bits()

    def test_custom_assignment(self, graph):
        assignment = np.arange(graph.num_nodes) % 4
        cluster = build_subgraph_cluster(graph, 4, 0.4 * graph.size_in_bits(), assignment=assignment)
        assert cluster.machine_for(0).machine_id == 0
        assert cluster.machine_for(1).machine_id == 1

    def test_empty_part_rejected(self, graph):
        assignment = np.zeros(graph.num_nodes, dtype=np.int64)
        with pytest.raises(PartitionError):
            build_subgraph_cluster(graph, 2, 1000.0, assignment=assignment)

    def test_summary_cluster_personalization_helps(self, graph):
        """Each machine answers queries on its own part more accurately than
        on a foreign part (the Alg. 3 routing rationale)."""
        from repro.eval import smape
        from repro.queries import rwr_scores

        cluster = build_summary_cluster(
            graph, 2, 0.35 * graph.size_in_bits(), config=PegasusConfig(seed=3, alpha=2.0)
        )
        home_errors, away_errors = [], []
        for machine in cluster.machines:
            other = cluster.machines[1 - machine.machine_id]
            for node in machine.part_nodes[:8]:
                exact = rwr_scores(graph, int(node))
                home_errors.append(smape(exact, machine.answer(int(node), "rwr")))
                away_errors.append(smape(exact, other.answer(int(node), "rwr")))
        assert np.mean(home_errors) < np.mean(away_errors)
