"""Parallel cluster builds and batch serving: the determinism contract.

Pins the PR-2 guarantees: (a) ``build_summary_cluster`` /
``build_subgraph_cluster`` produce byte-identical machines at any worker
count, (b) ``answer_batch`` answers exactly like the per-query loop for
every query type, sequentially and in parallel, and (c) the
communication-free property survives both parallel paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PegasusConfig, save_summary
from repro.distributed import build_subgraph_cluster, build_summary_cluster
from repro.errors import QueryError
from repro.graph import planted_partition
from repro.partitioning import louvain_partition

QUERY_TYPES = ("rwr", "hop", "php")


@pytest.fixture(scope="module")
def graph():
    return planted_partition(160, 4, avg_degree_in=8.0, avg_degree_out=1.0, seed=2)


@pytest.fixture(scope="module")
def config():
    return PegasusConfig(seed=1, t_max=8)


@pytest.fixture(scope="module")
def sequential_cluster(graph, config):
    return build_summary_cluster(graph, 4, 0.5 * graph.size_in_bits(), config=config, workers=1)


@pytest.fixture(scope="module")
def parallel_cluster(graph, config):
    return build_summary_cluster(graph, 4, 0.5 * graph.size_in_bits(), config=config, workers=4)


def _summary_bytes(summary, tmp_path, name):
    path = tmp_path / name
    save_summary(summary, path)
    return path.read_bytes()


class TestParallelSummaryCluster:
    def test_machine_summaries_byte_identical(
        self, sequential_cluster, parallel_cluster, tmp_path
    ):
        assert sequential_cluster.num_machines == parallel_cluster.num_machines
        for seq, par in zip(sequential_cluster.machines, parallel_cluster.machines):
            assert seq.machine_id == par.machine_id
            assert np.array_equal(seq.part_nodes, par.part_nodes)
            assert seq.memory_bits == par.memory_bits
            assert _summary_bytes(seq.source, tmp_path, f"seq{seq.machine_id}") == _summary_bytes(
                par.source, tmp_path, f"par{par.machine_id}"
            )

    def test_flat_backend_builds_in_parallel(self, graph, tmp_path):
        budget = 0.5 * graph.size_in_bits()
        clusters = [
            build_summary_cluster(
                graph,
                2,
                budget,
                config=PegasusConfig(seed=1, t_max=5, backend="flat"),
                workers=workers,
            )
            for workers in (1, 2)
        ]
        for seq, par in zip(clusters[0].machines, clusters[1].machines):
            assert _summary_bytes(seq.source, tmp_path, "fseq") == _summary_bytes(
                par.source, tmp_path, "fpar"
            )

    def test_communication_free_after_parallel_build(self, parallel_cluster):
        parallel_cluster.answer(0, "rwr")
        parallel_cluster.answer(1, "hop")
        parallel_cluster.assert_communication_free()

    def test_partitioner_seed_is_threaded(self, graph, config):
        cluster = build_summary_cluster(
            graph, 4, 0.5 * graph.size_in_bits(), config=config, seed=7
        )
        expected = louvain_partition(graph, 4, seed=7)
        route = np.full(graph.num_nodes, -1, dtype=np.int64)
        for machine in cluster.machines:
            route[machine.part_nodes] = machine.machine_id
        assert np.array_equal(route, expected)

    def test_default_config_build_is_reproducible(self, graph, tmp_path):
        """Without an explicit config, *seed* also seeds the summarizer —
        the seed used to stop at the partitioner, leaving default builds
        non-reproducible at any worker count."""
        budget = 0.5 * graph.size_in_bits()
        first = build_summary_cluster(graph, 2, budget, seed=3, workers=1)
        second = build_summary_cluster(graph, 2, budget, seed=3, workers=2)
        for seq, par in zip(first.machines, second.machines):
            assert _summary_bytes(seq.source, tmp_path, "d1") == _summary_bytes(
                par.source, tmp_path, "d2"
            )


class TestParallelSubgraphCluster:
    def test_machines_identical_at_any_worker_count(self, graph):
        budget = 0.4 * graph.size_in_bits()
        seq = build_subgraph_cluster(graph, 4, budget, workers=1)
        par = build_subgraph_cluster(graph, 4, budget, workers=3)
        for m_seq, m_par in zip(seq.machines, par.machines):
            assert np.array_equal(m_seq.part_nodes, m_par.part_nodes)
            assert m_seq.source == m_par.source
            assert m_seq.memory_bits == m_par.memory_bits

    def test_partitioner_seed_is_threaded(self, graph):
        budget = 0.4 * graph.size_in_bits()
        cluster = build_subgraph_cluster(graph, 4, budget, seed=9)
        expected = louvain_partition(graph, 4, seed=9)
        route = np.full(graph.num_nodes, -1, dtype=np.int64)
        for machine in cluster.machines:
            route[machine.part_nodes] = machine.machine_id
        assert np.array_equal(route, expected)


class TestAnswerBatch:
    @pytest.mark.parametrize("query_type", QUERY_TYPES)
    def test_matches_per_query_loop(self, sequential_cluster, query_type):
        nodes = [0, 5, 9, 40, 80, 121]
        expected = sequential_cluster.answer_many(nodes, query_type)
        batch = sequential_cluster.answer_batch(nodes, query_type)
        assert list(batch) == [int(n) for n in nodes]
        for node in expected:
            assert np.array_equal(expected[node], batch[node])

    @pytest.mark.parametrize("query_type", QUERY_TYPES)
    def test_parallel_matches_sequential(self, parallel_cluster, query_type):
        nodes = [0, 5, 9, 40, 80, 121]
        sequential = parallel_cluster.answer_batch(nodes, query_type, workers=1)
        parallel = parallel_cluster.answer_batch(nodes, query_type, workers=2)
        for node in sequential:
            assert np.array_equal(sequential[node], parallel[node])

    def test_duplicate_nodes_preserved(self, sequential_cluster):
        batch = sequential_cluster.answer_batch([3, 3, 7], "hop")
        assert set(batch) == {3, 7}
        assert np.array_equal(batch[3], sequential_cluster.answer(3, "hop"))

    def test_dict_return_dedupes_duplicate_nodes(self, sequential_cluster):
        """Documented contract: the dict-returning batch APIs collapse
        repeated query nodes to one entry, so callers that need one
        answer per *request* (the serving layer) must not route through
        them.  ``repro.serving`` pins the per-request side."""
        nodes = [5, 5, 5, 9]
        for api in (sequential_cluster.answer_many, sequential_cluster.answer_batch):
            answers = api(nodes, "rwr")
            assert len(answers) == 2  # not 4: duplicates silently collapse
            assert list(answers) == [5, 9]

    def test_empty_batch(self, sequential_cluster):
        assert sequential_cluster.answer_batch([], "rwr") == {}

    def test_out_of_range_node_rejected(self, sequential_cluster):
        with pytest.raises(QueryError):
            sequential_cluster.answer_batch([0, 10_000], "rwr")

    def test_unknown_query_type_rejected(self, sequential_cluster):
        with pytest.raises(QueryError):
            sequential_cluster.answer_batch([0], "pagerank")

    def test_batch_stays_communication_free(self, parallel_cluster):
        parallel_cluster.answer_batch([0, 41, 81, 121], "rwr", workers=2)
        parallel_cluster.assert_communication_free()

    def test_subgraph_cluster_batch(self, graph):
        cluster = build_subgraph_cluster(graph, 4, 0.4 * graph.size_in_bits())
        nodes = [1, 50, 100]
        expected = cluster.answer_many(nodes, "rwr")
        batch = cluster.answer_batch(nodes, "rwr", workers=2)
        for node in expected:
            assert np.array_equal(expected[node], batch[node])
