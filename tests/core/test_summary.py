"""Unit tests for the SummaryGraph structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SummaryGraph
from repro.errors import GraphFormatError
from repro.graph import Graph


class TestIdentityInitialization:
    def test_singleton_supernodes(self, two_cliques):
        s = SummaryGraph(two_cliques)
        assert s.num_supernodes == two_cliques.num_nodes
        assert s.num_superedges == two_cliques.num_edges

    def test_identity_reconstructs_exactly(self, two_cliques):
        s = SummaryGraph(two_cliques)
        assert s.reconstruct() == two_cliques

    def test_identity_neighbors_match(self, ba_small):
        s = SummaryGraph(ba_small)
        for u in (0, 5, 50):
            assert np.array_equal(s.reconstructed_neighbors(u), ba_small.neighbors(u))

    def test_invariants_hold(self, ba_small):
        SummaryGraph(ba_small).check_invariants()


class TestMerging:
    def test_merge_updates_partition(self, two_cliques):
        s = SummaryGraph(two_cliques)
        union, former = s.merge_supernodes(0, 1)
        assert union == 0
        assert s.num_supernodes == 7
        assert s.supernode_of[1] == 0
        assert set(s.members(0).tolist()) == {0, 1}
        assert former  # the cliques give both endpoints neighbors

    def test_merge_drops_incident_superedges(self, triangle):
        s = SummaryGraph(triangle)
        s.merge_supernodes(0, 1)
        assert not s.has_superedge(0, 2)
        assert s.num_superedges == 0  # superedge {1,2} was incident to 1 too

    def test_merge_self_rejected(self, triangle):
        s = SummaryGraph(triangle)
        with pytest.raises(GraphFormatError):
            s.merge_supernodes(0, 0)

    def test_merge_dead_supernode_rejected(self, triangle):
        s = SummaryGraph(triangle)
        s.merge_supernodes(0, 1)
        with pytest.raises(GraphFormatError):
            s.merge_supernodes(1, 2)

    def test_invariants_after_merges(self, ba_small, rng):
        s = SummaryGraph(ba_small)
        alive = s.supernodes()
        for _ in range(30):
            a, b = rng.choice(len(alive), size=2, replace=False)
            union, _ = s.merge_supernodes(alive[a], alive[b])
            alive = s.supernodes()
        s.check_invariants()


class TestSuperedges:
    def test_add_remove_roundtrip(self, path4):
        s = SummaryGraph(path4)
        before = s.num_superedges
        s.remove_superedge(0, 1)
        assert s.num_superedges == before - 1
        s.add_superedge(0, 1)
        assert s.num_superedges == before

    def test_add_idempotent(self, path4):
        s = SummaryGraph(path4)
        before = s.num_superedges
        s.add_superedge(0, 1)
        assert s.num_superedges == before

    def test_self_loop_counts_once(self, two_cliques):
        s = SummaryGraph(two_cliques)
        s.merge_supernodes(0, 1)
        before = s.num_superedges
        s.add_superedge(0, 0)
        assert s.num_superedges == before + 1
        assert s.has_superedge(0, 0)

    def test_remove_missing_is_noop(self, path4):
        s = SummaryGraph(path4)
        before = s.num_superedges
        s.remove_superedge(0, 3)
        assert s.num_superedges == before

    def test_superedge_to_dead_supernode_rejected(self, triangle):
        s = SummaryGraph(triangle)
        s.merge_supernodes(0, 1)
        with pytest.raises(GraphFormatError):
            s.add_superedge(0, 1)


class TestReconstruction:
    def test_self_loop_connects_members(self, two_cliques):
        s = SummaryGraph(two_cliques)
        for b in (1, 2, 3):
            s.merge_supernodes(0, b)
        s.add_superedge(0, 0)
        neighbors = s.reconstructed_neighbors(0)
        assert set(neighbors.tolist()) >= {1, 2, 3}
        assert 0 not in neighbors

    def test_reconstructed_degree_matches_neighbors(self, two_cliques):
        s = SummaryGraph(two_cliques)
        s.merge_supernodes(0, 1)
        s.add_superedge(0, 0)
        s.add_superedge(0, 2)
        for u in range(two_cliques.num_nodes):
            assert s.reconstructed_degree(u) == s.reconstructed_neighbors(u).size

    def test_reconstructed_edge_count(self, two_cliques):
        s = SummaryGraph(two_cliques)
        assert s.reconstructed_edge_count() == two_cliques.num_edges
        s.merge_supernodes(0, 1)
        s.add_superedge(0, 0)
        assert s.reconstructed_edge_count() == s.reconstruct().num_edges

    def test_out_of_range_node(self, triangle):
        s = SummaryGraph(triangle)
        with pytest.raises(GraphFormatError):
            s.reconstructed_neighbors(10)


class TestSizeModel:
    def test_identity_size_eq3(self, ba_small):
        s = SummaryGraph(ba_small)
        n = ba_small.num_nodes
        expected = 2 * ba_small.num_edges * np.log2(n) + n * np.log2(n)
        assert s.size_in_bits() == pytest.approx(expected)

    def test_size_shrinks_with_merges_and_drops(self, two_cliques):
        s = SummaryGraph(two_cliques)
        before = s.size_in_bits()
        s.merge_supernodes(0, 1)
        s.add_superedge(0, 0)
        assert s.size_in_bits() < before

    def test_compression_ratio_identity_above_zero(self, ba_small):
        s = SummaryGraph(ba_small)
        # Identity summary costs strictly more than the input encoding
        # (membership bits on top of the edges).
        assert s.compression_ratio() > 1.0

    def test_weighted_size_uses_weight_bits(self, two_cliques):
        unweighted = SummaryGraph(two_cliques)
        weighted = SummaryGraph(two_cliques, weighted=True)
        # All weights are 1 -> no extra bits.
        assert weighted.size_in_bits() == pytest.approx(unweighted.size_in_bits())
        weighted.add_superedge(0, 1, weight=9.0)
        assert weighted.size_in_bits() > unweighted.size_in_bits()


class TestWeightedSummaries:
    def test_weight_roundtrip(self, path4):
        s = SummaryGraph(path4, weighted=True)
        s.add_superedge(0, 1, weight=3.0)
        assert s.superedge_weight(0, 1) == 3.0
        assert s.superedge_weight(1, 0) == 3.0

    def test_weight_on_unweighted_rejected(self, path4):
        s = SummaryGraph(path4)
        with pytest.raises(GraphFormatError):
            s.superedge_weight(0, 1)

    def test_density_unweighted_is_presence(self, path4):
        s = SummaryGraph(path4)
        assert s.superedge_density(0, 1) == 1.0
        assert s.superedge_density(0, 3) == 0.0

    def test_density_weighted_is_count_over_pairs(self, two_cliques):
        assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        s = SummaryGraph.from_partition(two_cliques, assignment, weighted=True, superedge_rule="all_blocks")
        # Each clique block: 6 edges over 6 pairs.
        assert s.superedge_density(0, 0) == pytest.approx(1.0)
        # Bridge block: 1 edge over 16 pairs.
        assert s.superedge_density(0, 4) == pytest.approx(1.0 / 16.0)


class TestFromPartition:
    def test_partition_shapes(self, two_cliques):
        assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        s = SummaryGraph.from_partition(two_cliques, assignment)
        assert s.num_supernodes == 2
        assert sorted(s.supernodes()) == [0, 4]
        s.check_invariants()

    def test_majority_rule_keeps_dense_blocks_only(self, two_cliques):
        assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        s = SummaryGraph.from_partition(two_cliques, assignment, superedge_rule="majority")
        assert s.has_superedge(0, 0)
        assert s.has_superedge(4, 4)
        assert not s.has_superedge(0, 4)  # bridge density 1/16 < 0.5

    def test_all_blocks_rule_keeps_bridge(self, two_cliques):
        assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        s = SummaryGraph.from_partition(two_cliques, assignment, superedge_rule="all_blocks")
        assert s.has_superedge(0, 4)

    def test_arbitrary_labels_compacted(self, triangle):
        s = SummaryGraph.from_partition(triangle, np.asarray([7, 7, 99]))
        assert s.num_supernodes == 2
        assert set(s.members(0).tolist()) == {0, 1}

    def test_wrong_shape_rejected(self, triangle):
        with pytest.raises(GraphFormatError):
            SummaryGraph.from_partition(triangle, np.asarray([0, 1]))

    def test_unknown_rule_rejected(self, triangle):
        with pytest.raises(GraphFormatError):
            SummaryGraph.from_partition(triangle, np.zeros(3), superedge_rule="bogus")
