"""Unit tests for the personalized weight model (Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PersonalizedWeights
from repro.errors import GraphFormatError
from repro.graph import Graph


class TestBasics:
    def test_distances_from_target(self, path4):
        w = PersonalizedWeights(path4, [0], alpha=2.0)
        assert w.distances.tolist() == [0, 1, 2, 3]

    def test_node_weights_decay_geometrically(self, path4):
        w = PersonalizedWeights(path4, [0], alpha=2.0)
        assert np.allclose(w.node_weight, [1.0, 0.5, 0.25, 0.125])

    def test_multi_target_minimum_distance(self, path4):
        w = PersonalizedWeights(path4, [0, 3], alpha=2.0)
        assert w.distances.tolist() == [0, 1, 1, 0]

    def test_pair_weight_factorizes(self, ba_small):
        w = PersonalizedWeights(ba_small, [0], alpha=1.5)
        u, v = 5, 17
        expected = w.node_weight[u] * w.node_weight[v] / w.normalizer
        assert w.pair_weight(u, v) == pytest.approx(expected)
        assert w.pair_weight(u, v) == pytest.approx(w.pair_weight(v, u))

    def test_pair_weight_matches_definition(self, ba_small):
        """W_uv = alpha^{-(D(u,T)+D(v,T))} / Z, straight from Eq. 2."""
        alpha = 1.25
        w = PersonalizedWeights(ba_small, [3, 9], alpha=alpha)
        u, v = 20, 77
        direct = alpha ** -(int(w.distances[u]) + int(w.distances[v])) / w.normalizer
        assert w.pair_weight(u, v) == pytest.approx(direct)


class TestNormalization:
    def test_mean_pair_weight_is_one(self, ba_small):
        """Footnote 2: Z makes the average ordered-pair weight equal 1."""
        for alpha in (1.0, 1.25, 2.0):
            w = PersonalizedWeights(ba_small, [0], alpha=alpha)
            assert w.mean_pair_weight() == pytest.approx(1.0)

    def test_mean_pair_weight_exhaustive(self, path4):
        w = PersonalizedWeights(path4, [1], alpha=1.75)
        n = path4.num_nodes
        total = sum(w.pair_weight(u, v) for u in range(n) for v in range(n) if u != v)
        assert total / (n * (n - 1)) == pytest.approx(1.0)

    def test_alpha_one_gives_uniform(self, ba_small):
        w = PersonalizedWeights(ba_small, [0], alpha=1.0)
        assert np.allclose(w.node_weight, 1.0)
        assert w.normalizer == pytest.approx(1.0)
        assert w.is_uniform

    def test_full_target_set_gives_uniform(self, ba_small):
        """T = V means D(u, T) = 0 everywhere — the non-personalized case."""
        w = PersonalizedWeights(ba_small, range(ba_small.num_nodes), alpha=2.0)
        assert np.allclose(w.node_weight, 1.0)
        assert w.is_uniform

    def test_uniform_constructor_matches_full_targets(self, ba_small):
        explicit = PersonalizedWeights(ba_small, range(ba_small.num_nodes), alpha=2.0)
        uniform = PersonalizedWeights.uniform(ba_small)
        assert np.allclose(explicit.node_weight, uniform.node_weight)
        assert explicit.normalizer == pytest.approx(uniform.normalizer)


class TestPersonalization:
    def test_weights_larger_near_target(self, ba_small):
        w = PersonalizedWeights(ba_small, [0], alpha=1.5)
        far = int(np.argmax(w.distances))
        assert w.pair_weight(0, int(ba_small.neighbors(0)[0])) > w.pair_weight(far, far - 1)

    def test_larger_alpha_sharpens_focus(self, ba_small):
        mild = PersonalizedWeights(ba_small, [0], alpha=1.25)
        sharp = PersonalizedWeights(ba_small, [0], alpha=2.0)
        far = int(np.argmax(mild.distances))
        near = int(ba_small.neighbors(0)[0])
        ratio_mild = mild.pair_weight(0, near) / mild.pair_weight(far, far)
        ratio_sharp = sharp.pair_weight(0, near) / sharp.pair_weight(far, far)
        assert ratio_sharp > ratio_mild


class TestEdgeCases:
    def test_empty_targets_rejected(self, triangle):
        with pytest.raises(GraphFormatError):
            PersonalizedWeights(triangle, [], alpha=1.5)

    def test_target_out_of_range_rejected(self, triangle):
        with pytest.raises(GraphFormatError):
            PersonalizedWeights(triangle, [10], alpha=1.5)

    def test_alpha_below_one_rejected(self, triangle):
        with pytest.raises(ValueError):
            PersonalizedWeights(triangle, [0], alpha=0.5)

    def test_unreachable_nodes_get_fallback_distance(self):
        g = Graph.from_edges(4, [(0, 1)])
        w = PersonalizedWeights(g, [0], alpha=2.0)
        assert w.distances[2] == 2  # max finite (1) + 1
        assert w.node_weight[2] > 0

    def test_unreachable_override(self):
        g = Graph.from_edges(4, [(0, 1)])
        w = PersonalizedWeights(g, [0], alpha=2.0, unreachable=10)
        assert w.distances[2] == 10

    def test_weights_are_readonly(self, triangle):
        w = PersonalizedWeights(triangle, [0], alpha=1.5)
        with pytest.raises(ValueError):
            w.node_weight[0] = 5.0

    def test_single_node_graph(self):
        g = Graph.empty(1)
        w = PersonalizedWeights(g, [0], alpha=1.5)
        assert w.normalizer == 1.0
