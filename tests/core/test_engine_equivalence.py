"""Cross-engine equivalence: the batch engine is pinned to the scalar engine.

The scalar per-pair loop is the reference semantics; the speculative
vectorized window engine (:mod:`repro.core.batch`) must replay **byte
identical** merges and summaries for the same seed — same RNG consumption
(speculative draws are rewound on merge), same first-occurrence pair
dedup, bit-identical float arithmetic, same first-wins argmax, and the
same rejected scores recorded on the threshold.  The checks here are
therefore *exact* (``==``), across storage backends × objectives ×
threshold policies × generator families, plus a determinism regression
(same seed ⇒ byte-identical summaries twice on the batch engine).

The profitability gate normally routes short-row groups to the scalar
loop; ``force_batch`` removes it so the vectorized path is exercised even
on the small graphs used here (the default-gate path is covered too —
any gate setting must yield the same bits).
"""

from __future__ import annotations

from unittest import mock

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.batch as batch_module
from repro.core import (
    AdaptiveThreshold,
    BatchCostEvaluator,
    CostModel,
    PegasusConfig,
    PersonalizedWeights,
    SummaryGraph,
    summarize,
)
from repro.core.merge import merge_groups, merge_within_group
from repro.core.summary_io import save_summary
from repro.errors import GraphFormatError
from repro.graph import (
    barabasi_albert,
    connected_caveman,
    erdos_renyi,
    planted_partition,
    watts_strogatz,
)

SETTINGS = settings(
    max_examples=16,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

GRAPH_FAMILIES = {
    "ba": lambda n, seed: barabasi_albert(n, 3, seed=seed),
    "er": lambda n, seed: erdos_renyi(n, 3 * n, seed=seed),
    "sbm": lambda n, seed: planted_partition(
        n, 4, avg_degree_in=6.0, avg_degree_out=1.0, seed=seed
    ),
    "ws": lambda n, seed: watts_strogatz(n, 3, 0.1, seed=seed),
}


def force_batch():
    """Disable the profitability gate so every window vectorizes."""
    return mock.patch.object(batch_module, "DEFAULT_MIN_BATCH_ELEMENTS", 0)


def summarize_on(graph, engine, *, targets=None, ratio=0.4, **config_kwargs):
    config = PegasusConfig(engine=engine, **config_kwargs)
    return summarize(graph, targets=targets, compression_ratio=ratio, config=config)


def summary_bytes(summary, tmp_path, label) -> bytes:
    path = tmp_path / f"{label}.txt"
    save_summary(summary, path)
    return path.read_bytes()


def assert_summaries_identical(left: SummaryGraph, right: SummaryGraph) -> None:
    left.check_invariants()
    right.check_invariants()
    assert left.num_supernodes == right.num_supernodes
    assert left.num_superedges == right.num_superedges
    assert np.array_equal(left.supernode_of, right.supernode_of)
    assert sorted(left.superedges()) == sorted(right.superedges())
    assert left.size_in_bits() == right.size_in_bits()  # exact, not approx
    probe = range(0, left.num_nodes, max(left.num_nodes // 16, 1))
    for node in probe:
        assert np.array_equal(
            left.reconstructed_neighbors(node), right.reconstructed_neighbors(node)
        ), f"reconstructed neighbors differ at node {node}"


def assert_equivalent_run(graph, *, targets=None, ratio=0.4, **config_kwargs):
    scalar = summarize_on(graph, "scalar", targets=targets, ratio=ratio, **config_kwargs)
    with force_batch():
        batch = summarize_on(graph, "batch", targets=targets, ratio=ratio, **config_kwargs)
    gated = summarize_on(graph, "batch", targets=targets, ratio=ratio, **config_kwargs)
    # The runs must replay merge-for-merge, not just end at the same place.
    for other in (batch, gated):
        assert scalar.iterations == other.iterations
        assert scalar.total_merges == other.total_merges
        assert scalar.dropped_superedges == other.dropped_superedges
        assert scalar.budget_met == other.budget_met
        assert scalar.size_trajectory == other.size_trajectory
        assert scalar.theta_trajectory == other.theta_trajectory
        assert_summaries_identical(scalar.summary, other.summary)
    return scalar, batch


class TestSummarizeEquivalence:
    """Full Alg. 1 runs produce identical summaries on both engines."""

    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_default_config(self, family, backend):
        graph = GRAPH_FAMILIES[family](120, 3)
        assert_equivalent_run(graph, targets=[0, 1], seed=4, t_max=8, backend=backend)

    @pytest.mark.parametrize(
        "alpha,targets", [(1.0, None), (1.25, [0, 5]), (2.0, [3])]
    )
    @pytest.mark.parametrize(
        "threshold,beta", [("adaptive", 0.1), ("adaptive", 0.3), ("fixed", 0.1)]
    )
    def test_alpha_threshold_matrix(self, alpha, targets, threshold, beta):
        graph = barabasi_albert(150, 3, seed=7)
        assert_equivalent_run(
            graph,
            targets=targets,
            alpha=alpha,
            threshold=threshold,
            beta=beta,
            seed=3,
            t_max=8,
        )

    @pytest.mark.parametrize("objective", ["relative", "absolute"])
    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_objective_ablation(self, objective, backend):
        graph = planted_partition(160, 4, avg_degree_in=6.0, avg_degree_out=1.0, seed=2)
        assert_equivalent_run(
            graph, targets=[0], objective=objective, seed=1, t_max=6, backend=backend
        )

    def test_tight_budget_exercises_sparsification(self):
        graph = connected_caveman(8, 6)
        scalar, batch = assert_equivalent_run(graph, targets=[0], ratio=0.2, seed=0)
        assert scalar.dropped_superedges == batch.dropped_superedges

    def test_caveman_exact_ties(self):
        """Symmetric cliques produce exactly tied merge candidates; the
        batch argmax must break them first-wins like the scalar scan."""
        graph = connected_caveman(6, 5)
        assert_equivalent_run(graph, ratio=0.3, seed=4, t_max=10)

    def test_saved_bytes_identical(self, tmp_path):
        graph = barabasi_albert(180, 3, seed=9)
        scalar = summarize_on(graph, "scalar", targets=[2], ratio=0.4, seed=5)
        with force_batch():
            batch = summarize_on(graph, "batch", targets=[2], ratio=0.4, seed=5)
        assert summary_bytes(scalar.summary, tmp_path, "scalar") == summary_bytes(
            batch.summary, tmp_path, "batch"
        )

    def test_rebuild_cache_degrades_to_scalar(self):
        """engine='batch' with cost_cache='rebuild' has no block rows to
        gather and must silently run the scalar loop — identical bits."""
        graph = barabasi_albert(120, 3, seed=1)
        rebuild_scalar = summarize_on(
            graph, "scalar", targets=[0], seed=2, cost_cache="rebuild"
        )
        rebuild_batch = summarize_on(
            graph, "batch", targets=[0], seed=2, cost_cache="rebuild"
        )
        assert_summaries_identical(rebuild_scalar.summary, rebuild_batch.summary)

    @SETTINGS
    @given(
        family=st.sampled_from(sorted(GRAPH_FAMILIES)),
        num_nodes=st.integers(min_value=30, max_value=120),
        graph_seed=st.integers(min_value=0, max_value=2**31 - 1),
        run_seed=st.integers(min_value=0, max_value=2**31 - 1),
        alpha=st.sampled_from([1.0, 1.25, 1.75]),
        ratio=st.sampled_from([0.3, 0.5]),
        backend=st.sampled_from(["dict", "flat"]),
    )
    def test_property_random_graphs(
        self, family, num_nodes, graph_seed, run_seed, alpha, ratio, backend
    ):
        graph = GRAPH_FAMILIES[family](num_nodes, graph_seed)
        targets = None if alpha == 1.0 else [graph_seed % max(graph.num_nodes, 1)]
        assert_equivalent_run(
            graph,
            targets=targets,
            alpha=alpha,
            ratio=ratio,
            seed=run_seed,
            t_max=5,
            backend=backend,
        )


class TestMergeGroupsEquivalence:
    """Direct merge-loop equivalence, independent of the Alg. 1 driver."""

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_windowed_groups_match_scalar(self, backend):
        graph = barabasi_albert(160, 4, seed=6)
        results = []
        for engine in ("scalar", "batch"):
            summary = SummaryGraph(graph, backend=backend)
            weights = PersonalizedWeights.uniform(graph)
            model = CostModel(summary, weights)
            rng = np.random.default_rng(11)
            groups = [np.arange(0, 40), np.arange(40, 44), np.arange(44, 90)]
            threshold = AdaptiveThreshold(beta=0.1, initial=0.2)
            evaluator = (
                BatchCostEvaluator(model, min_batch_elements=0)
                if engine == "batch"
                else None
            )
            stats = merge_groups(
                model, groups, threshold, rng, evaluator=evaluator
            )
            results.append((summary, stats, threshold.value, threshold.rejected_count))
        (scalar_summary, scalar_stats, _, scalar_rejected) = results[0]
        (batch_summary, batch_stats, _, batch_rejected) = results[1]
        assert_summaries_identical(scalar_summary, batch_summary)
        assert scalar_stats == batch_stats
        assert scalar_rejected == batch_rejected

    def test_merge_within_group_delegates(self):
        graph = connected_caveman(4, 6)
        outputs = []
        for engine in ("scalar", "batch"):
            summary = SummaryGraph(graph, backend="flat")
            model = CostModel(summary, PersonalizedWeights.uniform(graph))
            evaluator = (
                BatchCostEvaluator(model, min_batch_elements=0)
                if engine == "batch"
                else None
            )
            stats = merge_within_group(
                model,
                np.arange(12),
                AdaptiveThreshold(beta=0.1, initial=0.0),
                np.random.default_rng(3),
                evaluator=evaluator,
            )
            outputs.append((sorted(summary.supernodes()), stats))
        assert outputs[0] == outputs[1]

    def test_rng_rewind_preserves_stream(self):
        """After a window is cut short by a merge, the next draws must
        match the scalar engine's — i.e. speculative draws are rewound."""
        graph = barabasi_albert(120, 5, seed=8)
        streams = []
        for engine in ("scalar", "batch"):
            summary = SummaryGraph(graph, backend="flat")
            model = CostModel(summary, PersonalizedWeights.uniform(graph))
            rng = np.random.default_rng(21)
            evaluator = (
                BatchCostEvaluator(model, min_batch_elements=0)
                if engine == "batch"
                else None
            )
            merge_groups(
                model,
                [np.arange(0, 60), np.arange(60, 120)],
                AdaptiveThreshold(beta=0.1, initial=0.3),
                rng,
                evaluator=evaluator,
            )
            streams.append(rng.integers(0, 2**31, size=8).tolist())
        assert streams[0] == streams[1]

    def test_unclean_summary_falls_back_to_scalar(self):
        """Superedges over edgeless blocks (baseline-made summaries) are
        priced by the scalar fallback — identical merges either way."""
        graph = connected_caveman(4, 5)
        outputs = []
        for engine in ("scalar", "batch"):
            summary = SummaryGraph(graph, backend="flat")
            summary.add_superedge(0, 10)  # edgeless block
            model = CostModel(summary, PersonalizedWeights.uniform(graph))
            evaluator = (
                BatchCostEvaluator(model, min_batch_elements=0)
                if engine == "batch"
                else None
            )
            merge_groups(
                model,
                [np.arange(0, 10)],
                AdaptiveThreshold(beta=0.1, initial=0.0),
                np.random.default_rng(5),
                evaluator=evaluator,
            )
            outputs.append(
                (summary.supernode_of.tolist(), sorted(summary.superedges()))
            )
        assert outputs[0] == outputs[1]


class TestEvaluatorContract:
    def test_requires_incremental_cache(self, sbm_medium):
        summary = SummaryGraph(sbm_medium)
        model = CostModel(summary, PersonalizedWeights.uniform(sbm_medium), cache="rebuild")
        with pytest.raises(GraphFormatError):
            BatchCostEvaluator(model)

    def test_scores_match_scalar_bitwise(self, sbm_medium):
        """evaluate_scores columns equal evaluate_merge's outputs exactly."""
        summary = SummaryGraph(sbm_medium, backend="flat")
        model = CostModel(summary, PersonalizedWeights(sbm_medium, [0], alpha=1.5))
        evaluator = BatchCostEvaluator(model, min_batch_elements=0)
        rng = np.random.default_rng(0)
        a_ids = rng.integers(0, sbm_medium.num_nodes, size=64)
        b_ids = (a_ids + 1 + rng.integers(0, sbm_medium.num_nodes - 1, size=64)) % (
            sbm_medium.num_nodes
        )
        keep = a_ids != b_ids
        a_ids, b_ids = a_ids[keep], b_ids[keep]
        delta, relative = evaluator.evaluate_scores(a_ids, b_ids)
        for k in range(a_ids.size):
            plan = model.evaluate_merge(int(a_ids[k]), int(b_ids[k]))
            assert plan.delta == delta[k]
            assert plan.relative_delta == relative[k]

    def test_apply_merge_keeps_mirrors_in_sync(self, sbm_medium):
        summary = SummaryGraph(sbm_medium, backend="flat")
        model = CostModel(summary, PersonalizedWeights.uniform(sbm_medium))
        evaluator = BatchCostEvaluator(model, min_batch_elements=0)
        plan = model.evaluate_merge(0, 1)
        union = evaluator.apply_merge(plan)
        # Scores computed after the merge still match the scalar engine.
        partner = next(s for s in summary.supernodes() if s != union)
        delta, relative = evaluator.evaluate_scores(
            np.asarray([union]), np.asarray([partner])
        )
        check = model.evaluate_merge(union, partner)
        assert check.delta == delta[0]
        assert check.relative_delta == relative[0]


class TestDeterminism:
    """Same seed ⇒ byte-identical summaries, run to run, on the batch engine."""

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_repeat_runs_byte_identical(self, tmp_path, backend):
        graph = barabasi_albert(200, 3, seed=11)
        blobs = []
        for repeat in range(2):
            result = summarize_on(
                graph, "batch", targets=[0, 7], ratio=0.4, seed=13, backend=backend
            )
            blobs.append(summary_bytes(result.summary, tmp_path, f"{backend}-{repeat}"))
        assert blobs[0] == blobs[1]

    def test_seed_changes_output(self):
        graph = barabasi_albert(200, 3, seed=11)
        first = summarize_on(graph, "batch", targets=[0], ratio=0.4, seed=0).summary
        second = summarize_on(graph, "batch", targets=[0], ratio=0.4, seed=99).summary
        assert not np.array_equal(first.supernode_of, second.supernode_of)
