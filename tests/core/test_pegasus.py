"""Integration-grade tests for the PeGaSus driver (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Pegasus,
    PegasusConfig,
    PersonalizedWeights,
    personalized_error,
    summarize,
)
from repro.errors import BudgetError
from repro.graph import barabasi_albert, planted_partition


class TestBudget:
    def test_budget_met_at_common_ratios(self, sbm_medium):
        for ratio in (0.3, 0.5, 0.8):
            result = summarize(
                sbm_medium, targets=[0], compression_ratio=ratio, config=PegasusConfig(seed=1)
            )
            assert result.budget_met
            assert result.summary.size_in_bits() <= ratio * sbm_medium.size_in_bits() + 1e-6

    def test_budget_bits_direct(self, sbm_medium):
        budget = 0.4 * sbm_medium.size_in_bits()
        result = summarize(sbm_medium, budget_bits=budget, config=PegasusConfig(seed=1))
        assert result.summary.size_in_bits() <= budget

    def test_both_budgets_rejected(self, sbm_medium):
        with pytest.raises(BudgetError):
            summarize(sbm_medium, budget_bits=10.0, compression_ratio=0.5)

    def test_no_budget_rejected(self, sbm_medium):
        with pytest.raises(BudgetError):
            summarize(sbm_medium)

    def test_non_positive_budget_rejected(self, sbm_medium):
        with pytest.raises(BudgetError):
            summarize(sbm_medium, budget_bits=0.0)
        with pytest.raises(BudgetError):
            summarize(sbm_medium, compression_ratio=-0.1)

    def test_generous_budget_stops_early(self, sbm_medium):
        result = summarize(sbm_medium, compression_ratio=5.0, config=PegasusConfig(seed=1))
        assert result.iterations == 0
        assert result.summary.num_supernodes == sbm_medium.num_nodes

    def test_sparsification_kicks_in_when_merging_stalls(self, sbm_medium):
        """With a single iteration the merge phase cannot reach a tight
        budget, so superedge dropping must close the gap."""
        result = summarize(
            sbm_medium,
            compression_ratio=0.3,
            config=PegasusConfig(seed=1, t_max=1),
        )
        assert result.dropped_superedges > 0
        assert result.budget_met


class TestOutputValidity:
    def test_invariants(self, sbm_medium):
        result = summarize(sbm_medium, targets=[0], compression_ratio=0.5, config=PegasusConfig(seed=3))
        result.summary.check_invariants()

    def test_deterministic_with_seed(self, sbm_medium):
        a = summarize(sbm_medium, targets=[1], compression_ratio=0.5, config=PegasusConfig(seed=11))
        b = summarize(sbm_medium, targets=[1], compression_ratio=0.5, config=PegasusConfig(seed=11))
        assert sorted(a.summary.supernodes()) == sorted(b.summary.supernodes())
        assert sorted(a.summary.superedges()) == sorted(b.summary.superedges())

    def test_result_diagnostics_populated(self, sbm_medium):
        result = summarize(sbm_medium, targets=[0], compression_ratio=0.4, config=PegasusConfig(seed=1))
        assert result.iterations >= 1
        assert result.total_merges > 0
        assert result.elapsed_seconds > 0
        assert len(result.theta_trajectory) == result.iterations
        assert result.compression_ratio <= 0.4 + 1e-9

    def test_theta_trajectory_non_increasing(self, sbm_medium):
        result = summarize(sbm_medium, targets=[0], compression_ratio=0.2, config=PegasusConfig(seed=1))
        traj = result.theta_trajectory
        assert all(b <= a + 1e-12 for a, b in zip(traj, traj[1:]))

    def test_weights_reuse(self, sbm_medium):
        weights = PersonalizedWeights(sbm_medium, [0], alpha=1.5)
        result = summarize(sbm_medium, compression_ratio=0.5, weights=weights, config=PegasusConfig(seed=2))
        assert result.weights is weights

    def test_weights_graph_mismatch_rejected(self, sbm_medium, ba_small):
        weights = PersonalizedWeights(ba_small, [0])
        with pytest.raises(ValueError):
            summarize(sbm_medium, compression_ratio=0.5, weights=weights)


class TestPersonalizationEffect:
    def test_personalized_beats_nonpersonalized_near_target(self):
        """The Fig. 5 effect: under target weights, the personalized summary
        has lower error than the non-personalized one of equal budget."""
        graph = planted_partition(600, 10, avg_degree_in=8.0, avg_degree_out=0.8, seed=5)
        target = [0]
        weights = PersonalizedWeights(graph, target, alpha=2.0)
        personalized = summarize(
            graph, compression_ratio=0.3, weights=weights, config=PegasusConfig(seed=7, alpha=2.0)
        )
        plain = summarize(graph, compression_ratio=0.3, config=PegasusConfig(seed=7))
        err_personalized = personalized_error(personalized.summary, weights)
        err_plain = personalized_error(plain.summary, weights)
        assert err_personalized < err_plain

    def test_alpha_one_equals_uniform_setting(self, sbm_medium):
        """alpha = 1 makes targets irrelevant (Sect. III-G)."""
        with_targets = summarize(
            sbm_medium, targets=[0], compression_ratio=0.5, config=PegasusConfig(seed=4, alpha=1.0)
        )
        without = summarize(sbm_medium, compression_ratio=0.5, config=PegasusConfig(seed=4, alpha=1.0))
        assert sorted(with_targets.summary.supernodes()) == sorted(without.summary.supernodes())


class TestConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PegasusConfig(alpha=0.9)
        with pytest.raises(ValueError):
            PegasusConfig(beta=2.0)
        with pytest.raises(ValueError):
            PegasusConfig(t_max=0)
        with pytest.raises(ValueError):
            PegasusConfig(threshold="sometimes")
        with pytest.raises(ValueError):
            PegasusConfig(objective="best")

    def test_fixed_threshold_runs(self, sbm_medium):
        result = summarize(
            sbm_medium, compression_ratio=0.5, config=PegasusConfig(seed=1, threshold="fixed")
        )
        assert result.budget_met

    def test_absolute_objective_runs(self, sbm_medium):
        result = summarize(
            sbm_medium,
            targets=[0],
            compression_ratio=0.5,
            config=PegasusConfig(seed=1, objective="absolute"),
        )
        assert result.budget_met

    def test_facade_wrapper(self, sbm_medium):
        result = Pegasus(seed=5, alpha=1.5).summarize(sbm_medium, targets=[2], compression_ratio=0.5)
        assert result.budget_met
        assert result.config.alpha == 1.5


class TestScaling:
    @pytest.mark.slow
    def test_roughly_linear_runtime(self):
        """Theorem 1: runtime grows about linearly in |E| (loose 2x slack)."""
        import time

        sizes = (1000, 4000)
        times = []
        for n in sizes:
            graph = barabasi_albert(n, 3, seed=1)
            started = time.perf_counter()
            summarize(graph, targets=[0], compression_ratio=0.5, config=PegasusConfig(seed=1))
            times.append(time.perf_counter() - started)
        ratio = times[1] / max(times[0], 1e-9)
        assert ratio < 4 * 2.5  # 4x edges, generous constant slack
