"""Tests for summary-graph serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PegasusConfig, SummaryGraph, summarize
from repro.core.summary_io import load_summary, save_summary
from repro.errors import GraphFormatError
from repro.graph import Graph


def test_roundtrip_identity(two_cliques, tmp_path):
    summary = SummaryGraph(two_cliques)
    path = tmp_path / "summary.txt"
    save_summary(summary, path)
    loaded = load_summary(path, two_cliques)
    assert sorted(loaded.supernodes()) == sorted(summary.supernodes())
    assert sorted(loaded.superedges()) == sorted(summary.superedges())


def test_roundtrip_after_summarization(sbm_medium, tmp_path):
    result = summarize(sbm_medium, targets=[0], compression_ratio=0.5, config=PegasusConfig(seed=1))
    path = tmp_path / "summary.txt"
    save_summary(result.summary, path)
    loaded = load_summary(path, sbm_medium)
    assert np.array_equal(loaded.supernode_of, result.summary.supernode_of)
    assert sorted(loaded.superedges()) == sorted(result.summary.superedges())
    assert loaded.size_in_bits() == pytest.approx(result.summary.size_in_bits())


def test_roundtrip_weighted(two_cliques, tmp_path):
    assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
    summary = SummaryGraph.from_partition(
        two_cliques, assignment, weighted=True, superedge_rule="all_blocks"
    )
    path = tmp_path / "summary.txt"
    save_summary(summary, path)
    loaded = load_summary(path, two_cliques)
    assert loaded.is_weighted
    assert loaded.superedge_weight(0, 4) == summary.superedge_weight(0, 4)


def test_queries_identical_after_roundtrip(sbm_medium, tmp_path):
    from repro.queries import rwr_scores

    result = summarize(sbm_medium, targets=[3], compression_ratio=0.4, config=PegasusConfig(seed=2))
    path = tmp_path / "summary.txt"
    save_summary(result.summary, path)
    loaded = load_summary(path, sbm_medium)
    assert np.allclose(rwr_scores(result.summary, 3), rwr_scores(loaded, 3))


def test_wrong_header_rejected(tmp_path, triangle):
    path = tmp_path / "bad.txt"
    path.write_text("not a summary\n")
    with pytest.raises(GraphFormatError):
        load_summary(path, triangle)


def test_node_count_mismatch_rejected(tmp_path, triangle, path4):
    path = tmp_path / "summary.txt"
    save_summary(SummaryGraph(triangle), path)
    with pytest.raises(GraphFormatError):
        load_summary(path, path4)


def test_partial_partition_rejected(tmp_path, triangle):
    path = tmp_path / "bad.txt"
    path.write_text("# repro summary graph v1\nG 3 0\nS 0 0 1\n")
    with pytest.raises(GraphFormatError):
        load_summary(path, triangle)


def test_unknown_record_rejected(tmp_path, triangle):
    path = tmp_path / "bad.txt"
    path.write_text("# repro summary graph v1\nG 3 0\nS 0 0 1 2\nX 1 2\n")
    with pytest.raises(GraphFormatError):
        load_summary(path, triangle)


class TestMalformedFilesRejected:
    """Regressions: untrusted summary files must fail loudly as
    GraphFormatError — never a raw ValueError/IndexError, and never a
    silently corrupted partition."""

    def _load(self, tmp_path, triangle, body):
        path = tmp_path / "bad.txt"
        path.write_text("# repro summary graph v1\n" + body)
        return load_summary(path, triangle)

    def test_negative_member_id_rejected_not_wrapped(self, tmp_path, triangle):
        """The worst pre-fix case: ``assignment[int('-1')]`` wrapped via
        numpy negative indexing and silently assigned the *last* node,
        producing a structurally valid but wrong partition."""
        with pytest.raises(GraphFormatError, match="member id -1 out of range"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1\nS 2 -1\nP 0 0\n")

    def test_out_of_range_member_rejected(self, tmp_path, triangle):
        # Pre-fix: raw IndexError from the assignment array.
        with pytest.raises(GraphFormatError, match="member id 5 out of range"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1 5\n")

    def test_truncated_g_header_rejected(self, tmp_path, triangle):
        # Pre-fix: raw ValueError from tuple unpacking.
        with pytest.raises(GraphFormatError, match="G header"):
            self._load(tmp_path, triangle, "G 3\nS 0 0 1 2\n")

    def test_overlong_g_header_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="G header"):
            self._load(tmp_path, triangle, "G 3 0 7\nS 0 0 1 2\n")

    def test_non_numeric_node_count_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="not an integer"):
            self._load(tmp_path, triangle, "G three 0\nS 0 0 1 2\n")

    def test_bad_weighted_flag_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="weighted flag"):
            self._load(tmp_path, triangle, "G 3 2\nS 0 0 1 2\n")

    def test_negative_supernode_id_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="supernode id -1 out of range"):
            self._load(tmp_path, triangle, "G 3 0\nS -1 0 1 2\n")

    def test_non_numeric_member_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="not an integer"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 zero 1 2\n")

    def test_bare_s_record_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="S record"):
            self._load(tmp_path, triangle, "G 3 0\nS\n")

    def test_duplicate_membership_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="more than one supernode"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1\nS 2 1 2\n")

    def test_p_record_arity_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="P record"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1 2\nP 0\n")

    def test_p_record_out_of_range_endpoint_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="superedge endpoint"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1 2\nP 0 9\n")

    def test_p_record_non_numeric_weight_rejected(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match="not a number"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1 2\nP 0 0 heavy\n")

    def test_error_messages_carry_line_numbers(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError, match=r":4:"):
            self._load(tmp_path, triangle, "G 3 0\nS 0 0 1\nS 2 -1\n")


class TestAtomicSave:
    """``save_summary`` must never leave a torn file at the destination."""

    def test_failure_mid_write_preserves_previous_file(
        self, two_cliques, tmp_path, monkeypatch
    ):
        summary = SummaryGraph(two_cliques)
        path = tmp_path / "summary.txt"
        save_summary(summary, path)
        before = path.read_text()

        # Inject a failure halfway through serialization: the second
        # superedge lookup explodes, after the header and S lines are
        # already in the temp file.
        calls = {"n": 0}
        original = type(summary).superedges

        def exploding(self):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("injected mid-write failure")
            return original(self)

        monkeypatch.setattr(type(summary), "superedges", exploding)
        summary.superedges()  # consume the one allowed call
        with pytest.raises(RuntimeError, match="injected"):
            save_summary(summary, path)
        assert path.read_text() == before  # previous file untouched
        # ...and the temp file was cleaned up.
        leftovers = [p for p in tmp_path.iterdir() if p.name != "summary.txt"]
        assert leftovers == []

    def test_failure_with_no_previous_file(self, two_cliques, tmp_path, monkeypatch):
        summary = SummaryGraph(two_cliques)
        path = tmp_path / "summary.txt"
        monkeypatch.setattr(
            type(summary),
            "superedges",
            lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            save_summary(summary, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_no_temp_files_after_success(self, two_cliques, tmp_path):
        summary = SummaryGraph(two_cliques)
        path = tmp_path / "summary.txt"
        save_summary(summary, path)
        assert [p.name for p in tmp_path.iterdir()] == ["summary.txt"]
