"""Tests for the lossless edge-correction extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PegasusConfig, PersonalizedWeights, SummaryGraph, personalized_error, summarize
from repro.core.corrections import CorrectionSet, compute_corrections, decode, lossless_size_in_bits


class TestComputeCorrections:
    def test_identity_summary_needs_none(self, two_cliques):
        corrections = compute_corrections(SummaryGraph(two_cliques))
        assert corrections.count == 0
        assert corrections.size_in_bits() == 0.0

    def test_dropped_superedge_becomes_positive(self, two_cliques):
        summary = SummaryGraph(two_cliques)
        summary.remove_superedge(3, 4)
        corrections = compute_corrections(summary)
        assert corrections.positive == [(3, 4)]
        assert corrections.negative == []

    def test_spurious_superedge_becomes_negative(self, path4):
        summary = SummaryGraph(path4)
        summary.add_superedge(0, 3)
        corrections = compute_corrections(summary)
        assert corrections.positive == []
        assert corrections.negative == [(0, 3)]

    def test_self_loop_block_negatives(self, two_cliques):
        summary = SummaryGraph(two_cliques)
        summary.merge_supernodes(0, 4)  # nodes 0 and 4 are NOT adjacent
        summary.add_superedge(0, 0)
        corrections = compute_corrections(summary)
        assert (0, 4) in corrections.negative

    def test_correction_count_matches_uniform_error(self, sbm_medium):
        """|E+|+|E−| equals half the uniform personalized error (Eq. 1
        counts each flipped pair twice)."""
        result = summarize(sbm_medium, compression_ratio=0.4, config=PegasusConfig(seed=1))
        corrections = compute_corrections(result.summary)
        uniform = PersonalizedWeights.uniform(sbm_medium)
        assert corrections.count == pytest.approx(
            personalized_error(result.summary, uniform) / 2.0
        )


class TestDecode:
    def test_lossless_roundtrip_after_summarization(self, sbm_medium):
        result = summarize(sbm_medium, compression_ratio=0.3, config=PegasusConfig(seed=2))
        corrections = compute_corrections(result.summary)
        assert decode(result.summary, corrections) == sbm_medium

    def test_lossless_roundtrip_random_partition(self, two_cliques, rng):
        assignment = rng.integers(0, 3, two_cliques.num_nodes)
        summary = SummaryGraph.from_partition(two_cliques, assignment)
        corrections = compute_corrections(summary)
        assert decode(summary, corrections) == two_cliques

    def test_empty_graph_decode(self):
        from repro.graph import Graph

        graph = Graph.empty(4)
        summary = SummaryGraph(graph)
        assert decode(summary, compute_corrections(summary)) == graph


class TestSizeAccounting:
    def test_lossless_size_components(self, sbm_medium):
        result = summarize(sbm_medium, compression_ratio=0.4, config=PegasusConfig(seed=1))
        corrections = compute_corrections(result.summary)
        total = lossless_size_in_bits(result.summary, corrections)
        assert total == pytest.approx(
            result.summary.size_in_bits() + corrections.size_in_bits()
        )

    def test_lossless_size_without_precomputed(self, sbm_medium):
        result = summarize(sbm_medium, compression_ratio=0.4, config=PegasusConfig(seed=1))
        assert lossless_size_in_bits(result.summary) == pytest.approx(
            lossless_size_in_bits(result.summary, compute_corrections(result.summary))
        )

    def test_correction_bits_formula(self):
        corrections = CorrectionSet(num_nodes=16, positive=[(0, 1)], negative=[(2, 3), (4, 5)])
        assert corrections.size_in_bits() == pytest.approx(2.0 * 3 * 4.0)  # log2(16) = 4
