"""Unit tests for the MDL cost model (Eqs. 5–11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostModel, PersonalizedWeights, SummaryGraph, personalized_error
from repro.graph import Graph


def make_model(graph, targets=None, alpha=1.5):
    weights = (
        PersonalizedWeights.uniform(graph)
        if targets is None
        else PersonalizedWeights(graph, targets, alpha=alpha)
    )
    summary = SummaryGraph(graph)
    return CostModel(summary, weights), summary, weights


class TestBlockPrimitives:
    def test_block_edge_weights_identity_uniform(self, path4):
        model, _, _ = make_model(path4)
        acc = model.block_edge_weights(1)
        # Node 1 touches nodes 0 and 2, one edge each, weight 1 each.
        assert acc.keys() == {0, 2}
        assert acc[0] == pytest.approx(1.0)

    def test_self_block_counts_edges_once(self, triangle):
        model, summary, _ = make_model(triangle)
        plan = model.evaluate_merge(0, 1)
        model.apply_merge(plan)
        acc = model.block_edge_weights(0)
        assert acc[0] == pytest.approx(1.0)  # the single internal edge {0,1}

    def test_potential_weight_cross(self, path4):
        model, _, w = make_model(path4, targets=[0], alpha=2.0)
        s0, _ = model.supernode_weight_sums(0)
        s1, _ = model.supernode_weight_sums(1)
        assert model.potential_weight(0, 1) == pytest.approx(s0 * s1)
        assert model.potential_weight(0, 1) == pytest.approx(w.pair_weight(0, 1))

    def test_potential_weight_self_of_singleton_is_zero(self, path4):
        model, _, _ = make_model(path4)
        assert model.potential_weight(2, 2) == pytest.approx(0.0)

    def test_mismatched_graph_rejected(self, path4, triangle):
        weights = PersonalizedWeights.uniform(triangle)
        with pytest.raises(ValueError):
            CostModel(SummaryGraph(path4), weights)


class TestCostDecomposition:
    def test_decomposition_sums_to_total(self, two_cliques):
        """Eq. 8: |V| log2|S| + sum of block costs == Size + log2|V| * RE."""
        model, summary, weights = make_model(two_cliques, targets=[0], alpha=1.5)
        supernodes = summary.supernodes()
        block_sum = 0.0
        for i, a in enumerate(supernodes):
            for b in supernodes[i:]:
                block_sum += model.pair_cost(a, b)
        total = summary.num_nodes * np.log2(summary.num_supernodes) + block_sum
        assert total == pytest.approx(model.total_cost())

    def test_decomposition_after_merges(self, two_cliques, rng):
        model, summary, weights = make_model(two_cliques, targets=[5], alpha=1.25)
        for pair in [(0, 1), (4, 5)]:
            model.apply_merge(model.evaluate_merge(*pair))
        supernodes = summary.supernodes()
        block_sum = 0.0
        for i, a in enumerate(supernodes):
            for b in supernodes[i:]:
                block_sum += model.pair_cost(a, b)
        total = summary.num_nodes * np.log2(summary.num_supernodes) + block_sum
        assert total == pytest.approx(model.total_cost())

    def test_supernode_cost_is_row_sum(self, two_cliques):
        model, summary, _ = make_model(two_cliques)
        a = 3
        expected = sum(model.pair_cost(a, b) for b in summary.supernodes())
        assert model.supernode_cost(a) == pytest.approx(expected)


class TestMergeEvaluation:
    def test_lossless_twin_merge_maximal_relative_delta(self, twins_graph):
        """Merging twins (identical neighborhoods) loses nothing: the new
        superedges encode the same edges with fewer bits."""
        model, _, _ = make_model(twins_graph)
        plan = model.evaluate_merge(0, 1)
        assert plan.delta > 0
        assert plan.relative_delta > 0.4
        assert set(plan.superedges) == {2, 3}
        assert not plan.self_loop

    def test_dissimilar_merge_scores_lower(self, twins_graph):
        model, _, _ = make_model(twins_graph)
        twin_plan = model.evaluate_merge(0, 1)
        other_plan = model.evaluate_merge(0, 2)  # disjoint neighborhoods
        assert twin_plan.relative_delta > other_plan.relative_delta

    def test_clique_collapse_prefers_self_loop(self, two_cliques):
        model, _, _ = make_model(two_cliques)
        model.apply_merge(model.evaluate_merge(0, 1))
        model.apply_merge(model.evaluate_merge(0, 2))
        plan = model.evaluate_merge(0, 3)
        assert plan.self_loop

    def test_delta_matches_exhaustive_recomputation(self, two_cliques):
        """Eq. 10 vs recomputing the block-level cost before/after the merge.

        The decomposition prices superedges at log2|S| of the summary *at
        evaluation time*, so the exact check freezes |S| at its pre-merge
        value and compares superedge bits plus error bits.
        """
        model, summary, weights = make_model(two_cliques, targets=[2], alpha=1.5)
        log_s = np.log2(summary.num_supernodes)
        superedges_before = summary.num_superedges
        error_before = personalized_error(summary, weights)
        plan = model.evaluate_merge(0, 1)
        model.apply_merge(plan)
        superedges_after = summary.num_superedges
        error_after = personalized_error(summary, weights)
        n = summary.num_nodes
        cost_before = 2 * superedges_before * log_s + np.log2(n) * error_before
        cost_after = 2 * superedges_after * log_s + np.log2(n) * error_after
        assert plan.delta == pytest.approx(cost_before - cost_after, rel=1e-9)

    def test_merge_plan_superedges_are_optimal(self, sbm_medium, rng):
        """Flipping any single superedge decision must not lower the cost."""
        model, summary, weights = make_model(sbm_medium, targets=[0], alpha=1.25)
        plan = model.evaluate_merge(10, 11)
        model.apply_merge(plan)
        base_cost = model.supernode_cost(10)
        neighbors = list(model.block_edge_weights(10))
        for x in neighbors[:5]:
            if summary.has_superedge(10, x):
                summary.remove_superedge(10, x)
                assert model.supernode_cost(10) >= base_cost - 1e-9
                summary.add_superedge(10, x)
            else:
                summary.add_superedge(10, x)
                assert model.supernode_cost(10) >= base_cost - 1e-9
                summary.remove_superedge(10, x)

    def test_relative_delta_zero_for_isolated_pair(self):
        g = Graph.from_edges(4, [(0, 1)])
        model, _, _ = make_model(g)
        plan = model.evaluate_merge(2, 3)
        assert plan.delta == pytest.approx(0.0)
        assert plan.relative_delta == pytest.approx(0.0)


class TestApplyMerge:
    def test_sums_accumulate(self, path4):
        model, _, weights = make_model(path4, targets=[0], alpha=2.0)
        s0_before, q0_before = model.supernode_weight_sums(0)
        s1_before, q1_before = model.supernode_weight_sums(1)
        model.apply_merge(model.evaluate_merge(0, 1))
        s_after, q_after = model.supernode_weight_sums(0)
        assert s_after == pytest.approx(s0_before + s1_before)
        assert q_after == pytest.approx(q0_before + q1_before)

    def test_summary_stays_consistent(self, sbm_medium, rng):
        model, summary, _ = make_model(sbm_medium)
        alive = summary.supernodes()
        for _ in range(40):
            idx = rng.choice(len(alive), size=2, replace=False)
            plan = model.evaluate_merge(alive[idx[0]], alive[idx[1]])
            model.apply_merge(plan)
            alive = summary.supernodes()
        summary.check_invariants()

    def test_block_weights_match_fresh_model_after_merges(self, sbm_medium, rng):
        """Incremental bookkeeping equals a model rebuilt from scratch."""
        model, summary, weights = make_model(sbm_medium, targets=[3], alpha=1.25)
        alive = summary.supernodes()
        for _ in range(25):
            idx = rng.choice(len(alive), size=2, replace=False)
            model.apply_merge(model.evaluate_merge(alive[idx[0]], alive[idx[1]]))
            alive = summary.supernodes()
        fresh = CostModel(summary, weights)
        for a in alive[:10]:
            assert model.block_edge_weights(a) == pytest.approx(fresh.block_edge_weights(a))
            assert model.supernode_weight_sums(a)[0] == pytest.approx(
                fresh.supernode_weight_sums(a)[0]
            )


class TestPersonalizedError:
    def test_identity_summary_zero_error(self, ba_small):
        summary = SummaryGraph(ba_small)
        weights = PersonalizedWeights(ba_small, [0], alpha=1.5)
        assert personalized_error(summary, weights) == pytest.approx(0.0)

    def test_error_matches_bruteforce(self, two_cliques):
        """Eq. 1 computed entrywise over the adjacency matrices."""
        weights = PersonalizedWeights(two_cliques, [0], alpha=1.5)
        summary = SummaryGraph(two_cliques)
        summary.merge_supernodes(0, 1)
        summary.add_superedge(0, 0)
        summary.add_superedge(0, 2)
        reconstructed = summary.reconstruct()
        n = two_cliques.num_nodes
        brute = 0.0
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                a_uv = 1.0 if two_cliques.has_edge(u, v) else 0.0
                ahat_uv = 1.0 if reconstructed.has_edge(u, v) else 0.0
                brute += weights.pair_weight(u, v) * abs(a_uv - ahat_uv)
        assert personalized_error(summary, weights) == pytest.approx(brute)

    def test_uniform_error_counts_flipped_entries(self, two_cliques):
        """With W ≡ 1 the error is the number of flipped adjacency entries."""
        weights = PersonalizedWeights.uniform(two_cliques)
        summary = SummaryGraph(two_cliques)
        summary.remove_superedge(3, 4)  # drop the bridge: 2 flipped entries
        assert personalized_error(summary, weights) == pytest.approx(2.0)

    def test_superedge_over_edgeless_block(self, path4):
        weights = PersonalizedWeights.uniform(path4)
        summary = SummaryGraph(path4)
        summary.add_superedge(0, 3)  # spurious edge: 2 flipped entries
        assert personalized_error(summary, weights) == pytest.approx(2.0)

    def test_drop_order_sorted(self, sbm_medium):
        model, summary, _ = make_model(sbm_medium)
        order = model.superedge_drop_order()
        costs = [cost for cost, _, _ in order]
        assert costs == sorted(costs)
        assert len(order) == summary.num_superedges


def _reference_drop_order(model):
    """The original per-edge Python implementation of Sect. III-F's order,
    kept verbatim as the pin for the vectorized ``superedge_drop_order``."""
    from repro.core.costs import _blockwise_edge_weights

    entries = []
    se_bits = model._superedge_bits()
    edge_weights = _blockwise_edge_weights(model.summary, model.weights)
    for a, b in model.summary.superedges():
        key = (a, b) if a <= b else (b, a)
        ew = edge_weights.get(key, 0.0)
        cost = se_bits + model._error_bit_price * (model.potential_weight(a, b) - ew)
        entries.append((cost, a, b))
    entries.sort()
    return entries


class TestDropOrderVectorized:
    """The lexsort drop order is pinned bit-for-bit to the Python sort."""

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_matches_reference_identity_summary(self, sbm_medium, backend):
        weights = PersonalizedWeights(sbm_medium, [0, 3], alpha=1.5)
        summary = SummaryGraph(sbm_medium, backend=backend)
        model = CostModel(summary, weights)
        assert model.superedge_drop_order() == _reference_drop_order(model)

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_matches_reference_after_merges(self, backend):
        from repro.core import PegasusConfig, summarize
        from repro.graph import barabasi_albert

        graph = barabasi_albert(150, 3, seed=2)
        result = summarize(
            graph,
            targets=[0],
            compression_ratio=0.6,
            config=PegasusConfig(seed=1, t_max=4, backend=backend),
        )
        model = CostModel(result.summary, result.weights)
        order = model.superedge_drop_order()
        assert order == _reference_drop_order(model)
        assert [c for c, _, _ in order] == sorted(c for c, _, _ in order)

    def test_matches_reference_with_edgeless_superedge(self, path4):
        """Baseline-made summaries can hold superedges over edgeless
        blocks; both implementations price them identically (ew = 0)."""
        weights = PersonalizedWeights.uniform(path4)
        summary = SummaryGraph(path4)
        summary.add_superedge(0, 3)
        model = CostModel(summary, weights)
        assert model.superedge_drop_order() == _reference_drop_order(model)

    def test_empty_summary(self):
        graph = Graph.empty(4)
        model = CostModel(SummaryGraph(graph), PersonalizedWeights.uniform(graph))
        assert model.superedge_drop_order() == []

    def test_types_are_python_scalars(self, path4):
        model, _, _ = make_model(path4)
        for cost, a, b in model.superedge_drop_order():
            assert isinstance(cost, float)
            assert isinstance(a, int) and isinstance(b, int)
