"""Property suite for the fused columnar pricing kernel.

The fused batch kernel (:mod:`repro.core.batch`) is pinned to the scalar
pricing core (:mod:`repro.core.pricing`) **element for element**: every
``(delta, relative_delta)`` column it produces must carry the exact bits
``CostModel.evaluate_merge`` reports for that ordered pair — not merely
the same end-of-run summary.  The full-run equivalence suite
(``test_engine_equivalence.py``) pins the composite behavior; this suite
attacks the kernel directly on adversarial row shapes:

* **empty partner rows** — isolated nodes whose block row has no entries;
* **edgeless self-blocks** — multi-node supernodes with no internal edge
  (``Π > 0``, ``ew = 0``);
* **zero-weight edges** — personalization underflow (``alpha^-d == 0.0``)
  produces block edges whose summed weight is exactly ``+0.0``;
* **single-node groups** — degenerate candidate groups the merge loop
  must skip identically on both engines;

plus hypothesis-driven random graphs × weight models × merge prefixes
(merges flow through ``BatchCostEvaluator.apply_merge``, so the
log-structured row invalidation and lazy re-export are on the tested
path), and a branch-vs-mask property for the pricing primitives
themselves.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BatchCostEvaluator, CostModel, PersonalizedWeights, SummaryGraph
from repro.core.merge import _sample_pairs, merge_groups
from repro.core.pricing import block_cost_masked, merged_cost_masked
from repro.core.threshold import FixedSchedule
from repro.graph import Graph

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def bits(value) -> bytes:
    """The IEEE-754 payload of a float, for exact comparison."""
    return np.float64(value).tobytes()


def build_graph(num_nodes: int, edges) -> Graph:
    return Graph.from_edges(num_nodes, edges)


def make_weights(graph: Graph, mode: int) -> PersonalizedWeights:
    if mode == 0 or graph.num_nodes < 2:
        return PersonalizedWeights.uniform(graph)
    targets = [0] if mode == 1 else [0, graph.num_nodes - 1]
    if mode == 3:
        # Underflow on purpose: nodes unreachable from the target get
        # weight 2.0**-5000 == +0.0, so blocks touching them carry
        # exact-zero edge weights — the kernel must price them without
        # the division/selection tricks ever producing different bits.
        return PersonalizedWeights(graph, [0], alpha=2.0, unreachable=5000)
    return PersonalizedWeights(graph, targets, alpha=1.5)


def apply_merge_prefix(model: CostModel, evaluator: BatchCostEvaluator, script, live):
    """Merge random live pairs *through the evaluator* (exercises the
    log-structured invalidation) and return the surviving supernodes."""
    live = list(live)
    for pick in script:
        if len(live) < 2:
            break
        a = live[pick % len(live)]
        rest = [s for s in live if s != a]
        b = rest[pick // max(len(live), 1) % len(rest)]
        union = evaluator.apply_merge(model.evaluate_merge(a, b))
        dead = b if union == a else a
        live.remove(dead)
    return live


def assert_unclean(evaluator: BatchCostEvaluator, ids) -> None:
    """A ``None`` from the kernel must mean exactly one thing: some row
    carries a superedge over an edgeless/zero-weight block."""
    arr = np.unique(np.asarray(list(ids), dtype=np.int64))
    evaluator._ensure_rows(arr)
    assert not evaluator._store.clean[arr].all()


def assert_pairs_bitwise_equal(model: CostModel, evaluator: BatchCostEvaluator, live):
    pairs = [(a, b) for a in live for b in live if a != b]
    if not pairs:
        return
    a_ids = np.asarray([p[0] for p in pairs], dtype=np.int64)
    b_ids = np.asarray([p[1] for p in pairs], dtype=np.int64)
    scored = evaluator.evaluate_scores(a_ids, b_ids)
    if scored is None:
        assert_unclean(evaluator, live)
        return
    delta, relative = scored
    for k, (a, b) in enumerate(pairs):
        plan = model.evaluate_merge(a, b)
        assert bits(plan.delta) == bits(delta[k]), (a, b, plan.delta, delta[k])
        assert bits(plan.relative_delta) == bits(relative[k]), (a, b)


def fresh_engine(graph: Graph, mode: int):
    summary = SummaryGraph(graph, backend="flat")
    weights = make_weights(graph, mode)
    model = CostModel(summary, weights)
    return model, BatchCostEvaluator(model)


class TestAdversarialShapes:
    def test_empty_partner_rows(self):
        # Nodes 3 and 4 are isolated: empty block rows on both sides.
        graph = build_graph(5, [(0, 1), (1, 2)])
        model, evaluator = fresh_engine(graph, 0)
        assert_pairs_bitwise_equal(model, evaluator, range(5))

    def test_edgeless_self_blocks(self):
        # Merging two isolated nodes yields Π > 0, ew = 0 self blocks.
        graph = build_graph(6, [(0, 1)])
        model, evaluator = fresh_engine(graph, 0)
        live = apply_merge_prefix(model, evaluator, [2, 3], range(6))
        assert_pairs_bitwise_equal(model, evaluator, live)

    def test_zero_weight_edges(self):
        # Component {3,4,5} is unreachable from target 0: its node
        # weights underflow to +0.0 and every block it touches prices
        # zero-weight edges.
        graph = build_graph(6, [(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)])
        model, evaluator = fresh_engine(graph, 3)
        assert float(model._sw[4]) == 0.0
        # The identity summary keeps superedges over those zero-weight
        # blocks — the exact shape the kernel must refuse (fall back).
        scored = evaluator.evaluate_scores(
            np.asarray([3], dtype=np.int64), np.asarray([4], dtype=np.int64)
        )
        assert scored is None
        assert_unclean(evaluator, [3, 4])
        # Merging the component drops those superedges (a superedge over
        # a zero-weight block never pays for itself), after which the
        # fused path prices the zero-weight supernode like any other.
        union = evaluator.apply_merge(model.evaluate_merge(3, 4))
        union = evaluator.apply_merge(model.evaluate_merge(union, 5))
        assert float(model._sw[union]) == 0.0
        assert_pairs_bitwise_equal(model, evaluator, [0, 1, 2, union])

    def test_single_node_groups_skip_identically(self):
        graph = build_graph(8, [(0, 1), (2, 3), (4, 5), (5, 6)])
        groups = [[0], [7], [2]]  # all below the minimum merge size
        scalar_model, _ = fresh_engine(graph, 0)
        batch_model, evaluator = fresh_engine(graph, 0)
        scalar = merge_groups(
            scalar_model, groups, FixedSchedule(2), np.random.default_rng(0)
        )
        batch = merge_groups(
            batch_model,
            groups,
            FixedSchedule(2),
            np.random.default_rng(0),
            evaluator=evaluator,
        )
        assert (scalar.merges, scalar.attempts, scalar.evaluations) == (0, 0, 0)
        assert (batch.merges, batch.attempts, batch.evaluations) == (0, 0, 0)


class TestFusedMatchesScalarProperty:
    @SETTINGS
    @given(
        num_nodes=st.integers(min_value=2, max_value=14),
        raw_edges=st.lists(
            st.tuples(st.integers(0, 13), st.integers(0, 13)),
            max_size=30,
        ),
        mode=st.integers(min_value=0, max_value=3),
        script=st.lists(st.integers(min_value=0, max_value=1000), max_size=6),
    )
    def test_all_pairs_bitwise_equal(self, num_nodes, raw_edges, mode, script):
        edges = [
            (u % num_nodes, v % num_nodes)
            for u, v in raw_edges
            if u % num_nodes != v % num_nodes
        ]
        graph = build_graph(num_nodes, edges)
        model, evaluator = fresh_engine(graph, mode)
        assert_pairs_bitwise_equal(model, evaluator, range(num_nodes))
        live = apply_merge_prefix(model, evaluator, script, range(num_nodes))
        assert_pairs_bitwise_equal(model, evaluator, live)

    @SETTINGS
    @given(
        num_nodes=st.integers(min_value=4, max_value=16),
        raw_edges=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            max_size=40,
        ),
        mode=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_attempts=st.integers(min_value=1, max_value=5),
    )
    def test_window_matches_scalar_first_wins(
        self, num_nodes, raw_edges, mode, seed, num_attempts
    ):
        edges = [
            (u % num_nodes, v % num_nodes)
            for u, v in raw_edges
            if u % num_nodes != v % num_nodes
        ]
        graph = build_graph(num_nodes, edges)
        model, evaluator = fresh_engine(graph, mode)
        half = num_nodes // 2
        group_arrays = [
            np.arange(half, dtype=np.int64),
            np.arange(half, num_nodes, dtype=np.int64),
        ]
        rng = np.random.default_rng(seed)
        attempts = []
        for k in range(num_attempts):
            members = group_arrays[k % 2]
            first, second = _sample_pairs(members.size, members.size, rng)
            attempts.append((members, first, second))

        resolved = evaluator.evaluate_window(attempts)
        if resolved is None:
            assert_unclean(evaluator, range(num_nodes))
            return
        best_scores, best_a, best_b, eval_counts = resolved

        for k, (members, first, second) in enumerate(attempts):
            seen = set()
            ref_score, ref_pair, evaluated = -math.inf, None, 0
            for i, j in zip(first.tolist(), second.tolist()):
                key = (i, j) if i < j else (j, i)
                if key in seen:
                    continue
                seen.add(key)
                plan = model.evaluate_merge(int(members[i]), int(members[j]))
                evaluated += 1
                if plan.relative_delta > ref_score:
                    ref_score = plan.relative_delta
                    ref_pair = (plan.a, plan.b)
            assert int(eval_counts[k]) == evaluated
            assert bits(ref_score) == bits(best_scores[k])
            assert ref_pair == (int(best_a[k]), int(best_b[k]))


# Non-negative cost magnitudes as they occur in Eq. 9/10: Π ≥ ew ≥ 0.
_MAGNITUDE = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestPrimitiveMaskEqualsBranch:
    """The mask-multiply selects equal branched ``np.where`` bit for bit."""

    @SETTINGS
    @given(
        rows=st.lists(
            st.tuples(st.booleans(), _MAGNITUDE, _MAGNITUDE),
            min_size=1,
            max_size=64,
        ),
        se_bits=st.floats(min_value=0.0, max_value=128.0, allow_nan=False),
        price=st.floats(min_value=1.0, max_value=128.0, allow_nan=False),
    )
    def test_block_cost(self, rows, se_bits, price):
        flag = np.asarray([r[0] for r in rows], dtype=bool)
        ew = np.asarray([r[1] for r in rows], dtype=np.float64)
        pi = ew + np.asarray([r[2] for r in rows], dtype=np.float64)
        fused = block_cost_masked(flag, pi, ew, se_bits, price)
        branched = np.where(flag, se_bits + price * (pi - ew), price * ew)
        assert fused.tobytes() == branched.tobytes()

    @SETTINGS
    @given(
        rows=st.lists(
            st.tuples(_MAGNITUDE, _MAGNITUDE),
            min_size=1,
            max_size=64,
        ),
        se_bits=st.floats(min_value=0.0, max_value=128.0, allow_nan=False),
        price=st.floats(min_value=1.0, max_value=128.0, allow_nan=False),
    )
    def test_merged_cost(self, rows, se_bits, price):
        ew = np.asarray([r[0] for r in rows], dtype=np.float64)
        pi = ew + np.asarray([r[1] for r in rows], dtype=np.float64)
        fused = merged_cost_masked(pi, ew, se_bits, price)
        with_edge = se_bits + price * (pi - ew)
        without_edge = price * ew
        branched = np.where(with_edge < without_edge, with_edge, without_edge)
        assert fused.tobytes() == branched.tobytes()


class TestInvalidation:
    """Stale rows re-export with the merged state, never the cached one."""

    def test_reprice_after_each_merge(self):
        rng = np.random.default_rng(11)
        u = rng.integers(0, 20, size=50)
        v = rng.integers(0, 20, size=50)
        edges = [(int(a), int(b)) for a, b in zip(u, v) if a != b]
        graph = build_graph(20, edges)
        model, evaluator = fresh_engine(graph, 2)
        live = list(range(20))
        assert_pairs_bitwise_equal(model, evaluator, live)
        for pick in (3, 141, 59, 26, 535):
            live = apply_merge_prefix(model, evaluator, [pick], live)
            assert_pairs_bitwise_equal(model, evaluator, live)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
