"""Unit tests for shingle-based candidate generation (Sect. III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SummaryGraph, candidate_groups, node_shingles
from repro.graph import Graph


class TestNodeShingles:
    def test_closed_neighborhood_minimum(self, path4):
        sh = node_shingles(path4, rng=0)
        # Recompute directly from the permutation implied by determinism:
        # re-run with same seed and verify against a manual computation.
        rng = np.random.default_rng(0)
        f = rng.permutation(4) + 1
        for u in range(4):
            closed = [u] + path4.neighbors(u).tolist()
            assert sh[u] == min(f[v] for v in closed)

    def test_twins_share_shingle(self, twins_graph):
        """Nodes with identical closed-ish neighborhoods often share shingles;
        with identical neighbor sets {2,3} the shingle differs only through
        f(u) itself, so check the guaranteed case: min over neighbors."""
        sh = node_shingles(twins_graph, rng=3)
        rng = np.random.default_rng(3)
        f = rng.permutation(5) + 1
        if min(f[2], f[3]) < min(f[0], f[1]):
            assert sh[0] == sh[1]

    def test_isolated_node(self):
        g = Graph.from_edges(3, [(0, 1)])
        sh = node_shingles(g, rng=0)
        assert sh.shape == (3,)
        assert sh[2] >= 1

    def test_empty_graph(self):
        assert node_shingles(Graph.empty(0), rng=0).size == 0

    def test_range(self, ba_small):
        sh = node_shingles(ba_small, rng=1)
        assert sh.min() >= 1
        assert sh.max() <= ba_small.num_nodes


class TestCandidateGroups:
    def test_groups_partition_subset_of_supernodes(self, ba_small):
        summary = SummaryGraph(ba_small)
        groups = candidate_groups(summary, rng=0)
        seen = set()
        for group in groups:
            assert group.size >= 2
            for a in group.tolist():
                assert a not in seen
                seen.add(a)
        assert seen <= set(summary.supernodes())

    def test_group_size_cap(self, ba_small):
        summary = SummaryGraph(ba_small)
        groups = candidate_groups(summary, rng=0, max_group_size=8)
        assert all(g.size <= 8 for g in groups)

    def test_no_singleton_groups(self, ba_small):
        summary = SummaryGraph(ba_small)
        groups = candidate_groups(summary, rng=0)
        assert all(g.size >= 2 for g in groups)

    def test_different_seeds_differ(self, ba_small):
        summary = SummaryGraph(ba_small)
        a = [tuple(sorted(g.tolist())) for g in candidate_groups(summary, rng=0)]
        b = [tuple(sorted(g.tolist())) for g in candidate_groups(summary, rng=99)]
        assert sorted(a) != sorted(b)

    def test_clique_members_grouped_together(self, caveman):
        """All nodes of a clique share the clique's minimum hash, so each
        clique lands in one candidate group."""
        summary = SummaryGraph(caveman)
        groups = candidate_groups(summary, rng=5)
        group_of = {}
        for idx, group in enumerate(groups):
            for a in group.tolist():
                group_of[a] = idx
        clique_sizes = 5
        grouped_cliques = 0
        for c in range(6):
            members = list(range(c * clique_sizes, (c + 1) * clique_sizes))
            ids = [group_of.get(m) for m in members if group_of.get(m) is not None]
            if ids and max(ids.count(i) for i in set(ids)) >= 4:
                grouped_cliques += 1
        # Bridge endpoints may hop to the adjacent clique's group, but most
        # of every clique should stay together.
        assert grouped_cliques >= 4

    def test_tiny_summary(self, triangle):
        summary = SummaryGraph(triangle)
        summary.merge_supernodes(0, 1)
        summary.merge_supernodes(0, 2)
        assert candidate_groups(summary, rng=0) == []

    def test_invalid_cap(self, triangle):
        with pytest.raises(ValueError):
            candidate_groups(SummaryGraph(triangle), rng=0, max_group_size=1)

    def test_oversized_groups_randomly_chopped(self):
        """A clique's supernodes all share every shingle; the random chop
        must still enforce the cap."""
        clique = Graph.from_edges(30, [(i, j) for i in range(30) for j in range(i + 1, 30)])
        summary = SummaryGraph(clique)
        groups = candidate_groups(summary, rng=0, max_group_size=10, recursive_splits=3)
        assert all(g.size <= 10 for g in groups)
        assert sum(g.size for g in groups) == 30
