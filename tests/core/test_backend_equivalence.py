"""Cross-backend equivalence: the flat backend is pinned to the dict backend.

The dict backend is the reference semantics; the flat array backend must be
indistinguishable from it at the output level.  Because both backends share
the cost-model arithmetic (:mod:`repro.core.costs`) and consume the RNG in
the same pattern, whole ``summarize()`` runs replay the same merges on both
— so the checks here are *exact* (``==``), not approximate.

Also contains the determinism regression suite: a fixed
``PegasusConfig.seed`` must make ``summarize()`` byte-reproducible (this
guards the ``_sample_pairs`` RNG path in :mod:`repro.core.merge` and the
deterministic superedge drop order in sparsification).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FlatSummaryGraph, PegasusConfig, SummaryGraph, summarize
from repro.core.summary_io import load_summary, save_summary
from repro.graph import (
    barabasi_albert,
    connected_caveman,
    erdos_renyi,
    planted_partition,
    watts_strogatz,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

GRAPH_FAMILIES = {
    "ba": lambda n, seed: barabasi_albert(n, 3, seed=seed),
    "er": lambda n, seed: erdos_renyi(n, 3 * n, seed=seed),
    "sbm": lambda n, seed: planted_partition(
        n, 4, avg_degree_in=6.0, avg_degree_out=1.0, seed=seed
    ),
    "ws": lambda n, seed: watts_strogatz(n, 3, 0.1, seed=seed),
}


def summarize_on(graph, backend, *, targets=None, ratio=0.4, **config_kwargs):
    config = PegasusConfig(backend=backend, **config_kwargs)
    return summarize(graph, targets=targets, compression_ratio=ratio, config=config)


def assert_summaries_identical(left: SummaryGraph, right: SummaryGraph) -> None:
    """Exact output-level equality of two summary graphs."""
    left.check_invariants()
    right.check_invariants()
    assert left.num_supernodes == right.num_supernodes
    assert left.num_superedges == right.num_superedges
    assert np.array_equal(left.supernode_of, right.supernode_of)
    assert sorted(left.superedges()) == sorted(right.superedges())
    assert left.size_in_bits() == right.size_in_bits()  # exact, not approx
    probe = range(0, left.num_nodes, max(left.num_nodes // 16, 1))
    for node in probe:
        assert np.array_equal(
            left.reconstructed_neighbors(node), right.reconstructed_neighbors(node)
        ), f"reconstructed neighbors differ at node {node}"


def assert_equivalent_run(graph, *, targets=None, ratio=0.4, **config_kwargs):
    dict_result = summarize_on(graph, "dict", targets=targets, ratio=ratio, **config_kwargs)
    flat_result = summarize_on(graph, "flat", targets=targets, ratio=ratio, **config_kwargs)
    assert isinstance(flat_result.summary, FlatSummaryGraph)
    assert not isinstance(dict_result.summary, FlatSummaryGraph)
    # The runs must replay merge-for-merge, not just end at the same place.
    assert dict_result.iterations == flat_result.iterations
    assert dict_result.total_merges == flat_result.total_merges
    assert dict_result.dropped_superedges == flat_result.dropped_superedges
    assert dict_result.budget_met == flat_result.budget_met
    assert dict_result.size_trajectory == flat_result.size_trajectory
    assert_summaries_identical(dict_result.summary, flat_result.summary)
    return dict_result, flat_result


class TestIdentityEquivalence:
    """The backends agree before any merging happens."""

    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    def test_identity_summary_matches(self, family):
        graph = GRAPH_FAMILIES[family](80, 3)
        dict_summary = SummaryGraph(graph)
        flat_summary = SummaryGraph(graph, backend="flat")
        assert_summaries_identical(dict_summary, flat_summary)
        assert dict_summary.supernodes() == flat_summary.supernodes()

    def test_from_partition_matches(self, two_cliques):
        assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        for rule in ("majority", "all_blocks"):
            dict_summary = SummaryGraph.from_partition(
                two_cliques, assignment, superedge_rule=rule
            )
            flat_summary = SummaryGraph.from_partition(
                two_cliques, assignment, superedge_rule=rule, backend="flat"
            )
            assert_summaries_identical(dict_summary, flat_summary)

    def test_weighted_from_partition_matches(self, two_cliques):
        assignment = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        dict_summary = SummaryGraph.from_partition(
            two_cliques, assignment, weighted=True, superedge_rule="all_blocks"
        )
        flat_summary = SummaryGraph.from_partition(
            two_cliques, assignment, weighted=True, superedge_rule="all_blocks", backend="flat"
        )
        assert_summaries_identical(dict_summary, flat_summary)
        for a, b in dict_summary.superedges():
            assert dict_summary.superedge_weight(a, b) == flat_summary.superedge_weight(a, b)
            assert dict_summary.superedge_density(a, b) == flat_summary.superedge_density(a, b)


class TestSummarizeEquivalence:
    """Full Alg. 1 runs produce identical summaries on both backends."""

    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_default_config(self, family, seed):
        graph = GRAPH_FAMILIES[family](120, seed)
        assert_equivalent_run(graph, targets=[0, 1], seed=seed, t_max=10)

    @pytest.mark.parametrize(
        "alpha,targets", [(1.0, None), (1.25, [0, 5]), (2.0, [3])]
    )
    @pytest.mark.parametrize("threshold,beta", [("adaptive", 0.1), ("adaptive", 0.3), ("fixed", 0.1)])
    def test_alpha_threshold_matrix(self, alpha, targets, threshold, beta):
        graph = barabasi_albert(150, 3, seed=7)
        assert_equivalent_run(
            graph,
            targets=targets,
            alpha=alpha,
            threshold=threshold,
            beta=beta,
            seed=3,
            t_max=10,
        )

    @pytest.mark.parametrize("objective", ["relative", "absolute"])
    def test_objective_ablation(self, objective):
        graph = planted_partition(160, 4, avg_degree_in=6.0, avg_degree_out=1.0, seed=2)
        assert_equivalent_run(graph, targets=[0], objective=objective, seed=1, t_max=8)

    def test_tight_budget_exercises_sparsification(self):
        """A tight budget forces superedge drops; the deterministic drop
        order must keep the backends identical through that phase too."""
        graph = connected_caveman(8, 6)
        dict_result, flat_result = assert_equivalent_run(graph, targets=[0], ratio=0.2, seed=0)
        assert dict_result.dropped_superedges == flat_result.dropped_superedges

    def test_caveman_exact_ties(self):
        """Symmetric cliques produce exactly tied merge candidates; shared
        cost arithmetic must break them identically on both backends."""
        graph = connected_caveman(6, 5)
        assert_equivalent_run(graph, ratio=0.3, seed=4, t_max=12)

    @SETTINGS
    @given(
        family=st.sampled_from(sorted(GRAPH_FAMILIES)),
        num_nodes=st.integers(min_value=30, max_value=120),
        graph_seed=st.integers(min_value=0, max_value=2**31 - 1),
        run_seed=st.integers(min_value=0, max_value=2**31 - 1),
        alpha=st.sampled_from([1.0, 1.25, 1.75]),
        ratio=st.sampled_from([0.3, 0.5]),
    )
    def test_property_random_graphs(self, family, num_nodes, graph_seed, run_seed, alpha, ratio):
        graph = GRAPH_FAMILIES[family](num_nodes, graph_seed)
        targets = None if alpha == 1.0 else [graph_seed % max(graph.num_nodes, 1)]
        assert_equivalent_run(
            graph, targets=targets, alpha=alpha, ratio=ratio, seed=run_seed, t_max=6
        )


class TestRoundTripEquivalence:
    """Serialization is backend-agnostic in both directions."""

    @pytest.mark.parametrize("save_backend", ["dict", "flat"])
    @pytest.mark.parametrize("load_backend", ["dict", "flat"])
    def test_cross_backend_roundtrip(self, sbm_medium, tmp_path, save_backend, load_backend):
        result = summarize_on(sbm_medium, save_backend, targets=[0], ratio=0.5, seed=1)
        path = tmp_path / "summary.txt"
        save_summary(result.summary, path)
        loaded = load_summary(path, sbm_medium, backend=load_backend)
        assert loaded.backend == load_backend
        assert_summaries_identical(result.summary, loaded)

    def test_saved_bytes_identical_across_backends(self, sbm_medium, tmp_path):
        paths = {}
        for backend in ("dict", "flat"):
            result = summarize_on(sbm_medium, backend, targets=[3], ratio=0.4, seed=2)
            paths[backend] = tmp_path / f"{backend}.txt"
            save_summary(result.summary, paths[backend])
        assert paths["dict"].read_bytes() == paths["flat"].read_bytes()


class TestDeterminism:
    """Same seed ⇒ byte-identical summaries, run to run, on each backend."""

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_repeat_runs_byte_identical(self, tmp_path, backend):
        graph = barabasi_albert(200, 3, seed=11)
        blobs = []
        for repeat in range(2):
            result = summarize_on(graph, backend, targets=[0, 7], ratio=0.4, seed=13)
            path = tmp_path / f"{backend}-{repeat}.txt"
            save_summary(result.summary, path)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_seed_changes_output(self, backend):
        """The RNG path is live: different seeds explore different merges
        (guards against the seed being silently ignored)."""
        graph = barabasi_albert(200, 3, seed=11)
        first = summarize_on(graph, backend, targets=[0], ratio=0.4, seed=0).summary
        second = summarize_on(graph, backend, targets=[0], ratio=0.4, seed=99).summary
        assert not np.array_equal(first.supernode_of, second.supernode_of)

    def test_cost_cache_modes_agree_to_tolerance(self):
        """The legacy rebuild engine is not bit-identical to the cached one
        (different float association) but must stay equivalent in quality."""
        graph = barabasi_albert(150, 3, seed=5)
        cached = summarize_on(graph, "dict", targets=[0], ratio=0.4, seed=0)
        rebuilt = summarize_on(graph, "dict", targets=[0], ratio=0.4, seed=0, cost_cache="rebuild")
        assert cached.summary.size_in_bits() <= rebuilt.summary.size_in_bits() * 1.1
        assert cached.budget_met == rebuilt.budget_met
