"""Unit tests for the merging-and-addition step (Alg. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveThreshold, CostModel, PersonalizedWeights, SummaryGraph
from repro.core.merge import GroupMergeStats, merge_within_group
from repro.graph import connected_caveman


def make_state(graph):
    summary = SummaryGraph(graph)
    model = CostModel(summary, PersonalizedWeights.uniform(graph))
    return model, summary


class TestMergeWithinGroup:
    def test_clique_group_collapses(self, caveman):
        """A clique's supernodes merge readily under a permissive threshold."""
        model, summary = make_state(caveman)
        group = np.arange(5)  # first clique
        threshold = AdaptiveThreshold(beta=0.1, initial=0.0)
        stats = merge_within_group(model, group, threshold, np.random.default_rng(0))
        assert stats.merges >= 3
        summary.check_invariants()

    def test_strict_threshold_blocks_merges(self, caveman):
        model, summary = make_state(caveman)
        group = np.arange(5)
        threshold = AdaptiveThreshold(beta=0.1, initial=0.99)
        stats = merge_within_group(model, group, threshold, np.random.default_rng(0))
        assert stats.merges == 0
        assert threshold.rejected_count == stats.attempts

    def test_rejections_recorded(self, caveman):
        model, _ = make_state(caveman)
        threshold = AdaptiveThreshold(beta=0.1, initial=2.0)  # unreachable
        stats = merge_within_group(model, np.arange(5), threshold, np.random.default_rng(0))
        # Fails log2(5) + 1 times in a row, then stops.
        assert stats.attempts >= 2
        assert threshold.rejected_count == stats.attempts

    def test_single_member_group_noop(self, caveman):
        model, _ = make_state(caveman)
        stats = merge_within_group(
            model, np.asarray([0]), AdaptiveThreshold(), np.random.default_rng(0)
        )
        assert stats == GroupMergeStats()

    def test_absolute_objective_supported(self, caveman):
        model, summary = make_state(caveman)
        threshold = AdaptiveThreshold(beta=0.1, initial=0.0)
        stats = merge_within_group(
            model, np.arange(5), threshold, np.random.default_rng(0), objective="absolute"
        )
        assert stats.merges >= 1
        summary.check_invariants()

    def test_unknown_objective_rejected(self, caveman):
        model, _ = make_state(caveman)
        with pytest.raises(ValueError):
            merge_within_group(
                model, np.arange(5), AdaptiveThreshold(), np.random.default_rng(0), objective="x"
            )

    def test_deterministic_given_rng(self, caveman):
        results = []
        for _ in range(2):
            model, summary = make_state(caveman)
            threshold = AdaptiveThreshold(beta=0.1, initial=0.0)
            merge_within_group(model, np.arange(5), threshold, np.random.default_rng(42))
            results.append(sorted(summary.supernodes()))
        assert results[0] == results[1]

    def test_evaluation_budget_bounded(self):
        """Per attempt, at most |C_i| pair evaluations happen."""
        graph = connected_caveman(4, 6)
        model, _ = make_state(graph)
        threshold = AdaptiveThreshold(beta=0.1, initial=0.0)
        group = np.arange(12)
        stats = merge_within_group(model, group, threshold, np.random.default_rng(1))
        assert stats.evaluations <= stats.attempts * group.size
