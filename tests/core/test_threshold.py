"""Unit tests for the threshold schedules (Sect. III-E and III-G)."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveThreshold, FixedSchedule


class TestAdaptive:
    def test_initial_value(self):
        assert AdaptiveThreshold().value == 0.5

    def test_advance_without_rejections_keeps_value(self):
        t = AdaptiveThreshold(beta=0.1, initial=0.4)
        assert t.advance(2) == 0.4

    def test_beta_quantile_selection(self):
        t = AdaptiveThreshold(beta=0.5, initial=0.5)
        for v in (0.1, 0.2, 0.3, 0.4):
            t.record(v)
        # floor(0.5 * 4) = 2nd largest = 0.3
        assert t.advance(2) == pytest.approx(0.3)

    def test_beta_zero_picks_largest(self):
        """Fig. 11's caption: the largest entry is chosen when beta ~ 0."""
        t = AdaptiveThreshold(beta=0.0, initial=0.5)
        for v in (0.05, 0.3, 0.17):
            t.record(v)
        assert t.advance(2) == pytest.approx(0.3)

    def test_list_cleared_between_iterations(self):
        t = AdaptiveThreshold(beta=0.5)
        t.record(0.2)
        t.advance(2)
        assert t.rejected_count == 0
        assert t.advance(3) == pytest.approx(0.2)  # unchanged, L was empty

    def test_threshold_decreases_over_iterations(self):
        """Rejected values sit below θ, so θ is non-increasing."""
        t = AdaptiveThreshold(beta=0.1, initial=0.5)
        previous = t.value
        for it in range(2, 8):
            for k in range(10):
                t.record(previous - 0.01 * (k + 1))
            t.advance(it)
            assert t.value <= previous
            previous = t.value

    def test_larger_beta_drops_faster(self):
        slow = AdaptiveThreshold(beta=0.1)
        fast = AdaptiveThreshold(beta=0.9)
        values = [0.45, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01, 0.3, 0.25, 0.15]
        for v in values:
            slow.record(v)
            fast.record(v)
        assert fast.advance(2) < slow.advance(2)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            AdaptiveThreshold(beta=1.5)


class TestFixedSchedule:
    def test_matches_ssumm_formula(self):
        t = FixedSchedule(t_max=5)
        assert t.value == pytest.approx(0.5)  # 1/(1+1)
        assert t.advance(2) == pytest.approx(1.0 / 3.0)
        assert t.advance(4) == pytest.approx(1.0 / 5.0)

    def test_final_iteration_zero(self):
        t = FixedSchedule(t_max=5)
        assert t.advance(5) == 0.0
        assert t.advance(6) == 0.0

    def test_record_is_ignored(self):
        t = FixedSchedule(t_max=3)
        t.record(0.9)
        assert t.advance(2) == pytest.approx(1.0 / 3.0)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            FixedSchedule(t_max=0)

    def test_t_max_one_starts_at_zero(self):
        assert FixedSchedule(t_max=1).value == 0.0
