"""Profiling hooks: exactly-zero behavior change when off, phase
histograms when on.

The probes live *inside* the merge kernels and store paths, so the
disabled path must be a shared no-op (the engine equivalence suites run
with the instrumentation in place).  Enabled, every probe records into
``repro_phase_seconds{phase=...}`` whose count doubles as a call
counter.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    count,
    disable_profiling,
    enable_profiling,
    probe,
    profiling_enabled,
    samples_for,
)
from repro.obs.profile import _NOOP


class TestSwitch:
    def test_disabled_probe_is_the_shared_noop(self):
        disable_profiling()
        assert probe("merge.fused_join") is _NOOP
        assert probe("anything.else") is _NOOP  # one object, zero allocs

    def test_enable_disable_roundtrip(self):
        assert not profiling_enabled()
        enable_profiling(MetricsRegistry())
        assert profiling_enabled()
        disable_profiling()
        assert not profiling_enabled()

    def test_count_noop_when_disabled(self):
        registry = MetricsRegistry()
        disable_profiling()
        count("repro_stream_swaps_total", kind="refresh")
        assert registry.snapshot() == {"families": []}


class TestRecording:
    def test_probe_records_phase_histogram(self):
        registry = MetricsRegistry()
        enable_profiling(registry)
        with probe("merge.fused_join"):
            pass
        with probe("merge.fused_reduce"):
            pass
        with probe("store.load_graph"):
            pass
        samples = samples_for(registry.snapshot(), "repro_phase_seconds")
        by_phase = {s["labels"]["phase"]: s["count"] for s in samples}
        assert by_phase == {
            "merge.fused_join": 1,
            "merge.fused_reduce": 1,
            "store.load_graph": 1,
        }

    def test_probe_records_even_on_exception(self):
        registry = MetricsRegistry()
        enable_profiling(registry)
        with pytest.raises(RuntimeError):
            with probe("merge.apply"):
                raise RuntimeError("kernel blew up")
        samples = samples_for(registry.snapshot(), "repro_phase_seconds")
        assert samples[0]["count"] == 1

    def test_count_records_labeled_counter(self):
        registry = MetricsRegistry()
        enable_profiling(registry)
        count("repro_stream_swaps_total", kind="residual")
        count("repro_stream_swaps_total", 2.0, kind="residual")
        samples = samples_for(registry.snapshot(), "repro_stream_swaps_total")
        assert samples[0]["labels"] == {"kind": "residual"}
        assert samples[0]["value"] == 3.0


class TestInstrumentedPathsStayExact:
    """The probes sit inside real kernels; answers must not change."""

    def test_summarize_identical_with_profiling_on(self):
        from repro.core import PegasusConfig, summarize
        from repro.graph import planted_partition

        graph = planted_partition(80, 4, avg_degree_in=6.0, avg_degree_out=1.0, seed=3)
        config = PegasusConfig(seed=1, t_max=6)
        baseline = summarize(graph, budget_bits=0.5 * graph.size_in_bits(), config=config)
        registry = MetricsRegistry()
        enable_profiling(registry)
        try:
            probed = summarize(graph, budget_bits=0.5 * graph.size_in_bits(), config=config)
        finally:
            disable_profiling()
        assert probed.summary.size_in_bits() == baseline.summary.size_in_bits()
        phases = {
            s["labels"]["phase"]
            for s in samples_for(registry.snapshot(), "repro_phase_seconds")
        }
        assert "merge.apply" in phases
        assert {"merge.fused_join", "merge.fused_reduce", "merge.scalar_attempt"} & phases
