"""Obs-suite fixtures; makes the chaos hooks importable by workers.

Same arrangement as ``tests/serving/conftest.py``: the fault injectors
in ``tests/_chaos.py`` are resolved by name inside pool workers, so the
``tests`` directory must be on ``sys.path`` of this process (fork
workers inherit it) and of any spawn worker re-importing the module.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_TESTS_DIR = str(Path(__file__).resolve().parent.parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


@pytest.fixture(autouse=True)
def _profiling_off():
    """Leave the process-wide profiling switch the way we found it."""
    from repro.obs import disable_profiling, profiling_enabled

    was_on = profiling_enabled()
    yield
    if not was_on:
        disable_profiling()
